"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run SCRIPT.mpl`` — execute an MPL program and print its output;
* ``check SCRIPT.mpl`` — parse and compile without executing (the
  verification a host performs before admitting MPL-borne code);
* ``inspect PACKAGE.mrom`` — describe a packed object file without
  executing any of its code (safe interrogation of an artifact at rest);
* ``lint PATH... [--object PACKAGE.mrom] [--strict] [--json]`` — static
  analysis: MPL lint over files/trees plus migration admission analysis
  over packed objects (see ``docs/ANALYSIS.md``);
* ``store list / show / verify`` — inspect a persistence store;
* ``chaos --seed N`` — run the deterministic fault-injection scenario
  (see ``docs/FAULTS.md``); identical seeds print identical reports.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.errors import MROMError
from .core.introspection import describe
from .lang import Interpreter, parse
from .lang.compiler import compile_object_methods
from .mobility.package import unpack_bytes
from .persistence import ObjectStore

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    source = Path(args.script).read_text(encoding="utf-8")
    result = Interpreter().run(source)
    for line in result.output:
        print(line)
    if args.show_value and result.value is not None:
        print(f"=> {result.value!r}")
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    from .lang.interp import MplSession

    session = MplSession()
    stream = sys.stdin
    interactive = stream.isatty()
    if interactive:
        print("MPL session — a blank line at depth 0 quits; braces continue.")
    buffer: list[str] = []
    depth = 0
    while True:
        if interactive:
            print("...> " if buffer else "mpl> ", end="", flush=True)
        line = stream.readline()
        if not line:
            return 0
        if not line.strip() and not buffer:
            return 0
        buffer.append(line)
        depth += line.count("{") - line.count("}")
        if depth > 0:
            continue  # inside a declaration/block: keep reading
        depth = 0
        fragment, buffer = "".join(buffer), []
        try:
            value, output = session.feed(fragment)
        except MROMError as exc:
            print(f"error: {type(exc).__name__}: {exc}")
            continue
        for emitted in output:
            print(emitted)
        if value is not None and not output:
            print(f"=> {value!r}")


def _cmd_check(args: argparse.Namespace) -> int:
    source = Path(args.script).read_text(encoding="utf-8")
    program = parse(source)
    compiled_methods = 0
    for decl in program.objects:
        compiled_methods += len(compile_object_methods(decl))
    print(
        f"ok: {len(program.objects)} object(s), {compiled_methods} method(s), "
        f"{len(program.statements)} top-level statement(s)"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    wire = Path(args.package).read_bytes()
    obj = unpack_bytes(wire)  # verification only; no guest code runs
    description = describe(obj, viewer=obj.principal)
    print(f"guid:          {description.guid}")
    print(f"display name:  {description.display_name or '(none)'}")
    print(f"domain:        {description.domain or '(none)'}")
    print(f"owner:         {obj.owner.guid}")
    print(f"meta:          {'extensible' if description.extensible_meta else 'fixed'}")
    print(f"tower depth:   {description.tower_depth}")
    counts = description.counts
    print(
        "items:         "
        f"{counts['fixed_data']}+{counts['extensible_data']} data, "
        f"{counts['fixed_methods']}+{counts['extensible_methods']} methods "
        "(fixed+extensible)"
    )
    for item in description.items:
        if item.metadata.get("meta"):
            continue
        marker = "M" if item.category == "method" else "D"
        wrappers = "".join(
            flag for flag, present in (("p", item.has_pre), ("q", item.has_post)) if present
        )
        suffix = f" [{wrappers}]" if wrappers else ""
        print(f"  {marker} {item.section:<10} {item.name}{suffix}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import fails, render_json, render_text
    from .analysis.sources import lint_paths

    findings = []
    if args.object:
        from .analysis.admission import analyze_package
        from .net.marshal import unmarshal

        for package_path in args.object:
            findings.extend(
                analyze_package(unmarshal(Path(package_path).read_bytes()))
            )
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2
    findings.extend(lint_paths(args.paths))
    if args.json:
        print(render_json(findings))
    else:
        for line in render_text(findings):
            print(line)
        if not findings:
            print("clean: no findings")
    return 1 if fails(findings, strict=args.strict) else 0


def _cmd_store(args: argparse.Namespace) -> int:
    store = ObjectStore(args.root)
    if args.store_command == "list":
        guids = store.guids()
        if not guids:
            print("(empty store)")
            return 0
        for guid in guids:
            versions = store.versions(guid)
            print(f"{guid}  versions: {versions}")
        return 0
    if args.store_command == "show":
        obj = store.load(args.guid, version=args.version)
        print(f"{obj.guid} ({obj.principal.display_name or 'unnamed'})")
        for item, _category, section in obj.containers.iter_with_sections():
            if item.metadata.get("meta"):
                continue
            print(f"  {section:<10} {item.category:<6} {item.name}")
        return 0
    if args.store_command == "verify":
        clean = True
        for guid in store.guids():
            try:
                store.load(guid)
                print(f"ok      {guid}")
            except MROMError as exc:
                clean = False
                print(f"CORRUPT {guid}: {exc}")
        return 0 if clean else 1
    raise AssertionError(f"unhandled store command {args.store_command!r}")


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import run_chaos_scenario

    report = run_chaos_scenario(
        seed=args.seed,
        n_sites=args.sites,
        passes=args.passes,
        drop=args.drop,
        dup=args.dup,
        reorder=args.reorder,
        jitter=args.jitter,
        flap=args.flap,
        crash=args.crash,
        store_root=args.store_root,
    )
    for line in report.to_lines():
        print(line)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MROM / HADAS reproduction command-line tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="execute an MPL script")
    run_parser.add_argument("script")
    run_parser.add_argument(
        "--show-value", action="store_true",
        help="also print the value of the last statement",
    )
    run_parser.set_defaults(handler=_cmd_run)

    repl_parser = commands.add_parser(
        "repl", help="interactive MPL session (reads statements from stdin)"
    )
    repl_parser.set_defaults(handler=_cmd_repl)

    check_parser = commands.add_parser(
        "check", help="parse and compile an MPL script without running it"
    )
    check_parser.add_argument("script")
    check_parser.set_defaults(handler=_cmd_check)

    inspect_parser = commands.add_parser(
        "inspect", help="describe a packed object file (no code executes)"
    )
    inspect_parser.add_argument("package")
    inspect_parser.set_defaults(handler=_cmd_inspect)

    lint_parser = commands.add_parser(
        "lint",
        help="static analysis: lint MPL sources and audit packed objects",
        description=(
            "Lint .mpl files (and MPL programs embedded in .py files) "
            "under the given paths, and/or run the migration admission "
            "analysis over packed .mrom objects. Exit codes: 0 clean, "
            "1 findings, 2 usage error."
        ),
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to lint (.mpl, or .py with embedded MPL)",
    )
    lint_parser.add_argument(
        "--object", action="append", default=[], metavar="PACKAGE.mrom",
        help="also run admission analysis over a packed object file",
    )
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (exit 1)",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    store_parser = commands.add_parser("store", help="inspect an object store")
    store_parser.add_argument("--root", required=True)
    store_commands = store_parser.add_subparsers(
        dest="store_command", required=True
    )
    store_commands.add_parser("list", help="list stored objects")
    show_parser = store_commands.add_parser("show", help="describe one object")
    show_parser.add_argument("guid")
    show_parser.add_argument("--version", type=int, default=None)
    store_commands.add_parser("verify", help="checksum-verify every image")
    store_parser.set_defaults(handler=_cmd_store)

    chaos_parser = commands.add_parser(
        "chaos",
        help="run the seeded fault-injection scenario (deterministic)",
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument("--sites", type=int, default=5)
    chaos_parser.add_argument("--passes", type=int, default=2)
    chaos_parser.add_argument("--drop", type=float, default=0.10,
                              help="per-message drop probability")
    chaos_parser.add_argument("--dup", type=float, default=0.10,
                              help="per-message duplication probability")
    chaos_parser.add_argument("--reorder", type=float, default=0.05,
                              help="per-message reorder probability")
    chaos_parser.add_argument("--jitter", type=float, default=0.005,
                              help="max additive latency noise (seconds)")
    chaos_parser.add_argument("--flap", action=argparse.BooleanOptionalAction,
                              default=True, help="flap one ring link")
    chaos_parser.add_argument("--crash", action=argparse.BooleanOptionalAction,
                              default=True,
                              help="crash-restart one site from checkpoint")
    chaos_parser.add_argument("--store-root", default=None,
                              help="directory for the crash checkpoint store")
    chaos_parser.set_defaults(handler=_cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except MROMError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
