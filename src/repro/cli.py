"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run SCRIPT.mpl`` — execute an MPL program and print its output;
* ``check SCRIPT.mpl`` — parse and compile without executing (the
  verification a host performs before admitting MPL-borne code);
* ``inspect PACKAGE.mrom`` — describe a packed object file without
  executing any of its code (safe interrogation of an artifact at rest);
* ``lint PATH... [--object PACKAGE.mrom] [--strict] [--json]
  [--baseline FILE.json]`` — static analysis: MPL lint over files/trees
  plus migration admission analysis over packed objects (see
  ``docs/ANALYSIS.md``);
* ``analyze PATH... [--races] [--deadlocks] [--migration] [--strict]
  [--json] [--baseline FILE.json]`` / ``analyze --sanitize-smoke
  [--seed N] [--requests N]`` — interprocedural analysis: cross-object
  call graph, race detection (``race.*``), wait-cycle and recursion
  detection (``cycle.*``) and migration-safety dataflow
  (``migration.*``) over MPL programs and host scenario scripts;
  ``--sanitize-smoke`` runs a happens-before-sanitized soak and fails
  unless every dynamically observed race/cycle matches a static
  diagnostic (see ``docs/ANALYSIS.md``);
* ``store list / show / verify`` — inspect a persistence store;
* ``chaos --seed N`` — run the deterministic fault-injection scenario
  (see ``docs/FAULTS.md``); identical seeds print identical reports.
* ``trace --seed N [--tree] [--json FILE|-] [--metrics FILE|-]
  [--smoke]`` — run the traced acceptance scenario with the telemetry
  plane on and export what it captured (see ``docs/TELEMETRY.md``);
  ``--smoke`` validates the export against the span schema and the
  cross-wire trace invariants, exiting non-zero on any violation.
* ``load [--mode closed|open] [--sites N] [--clients N] [--requests N]
  [--rate R] [--window N] [--service-delay S] [--mix SPEC] [--soak]
  [--durable] [--backend memory|file|sqlite] [--wal-root DIR]
  [--crash-cycles N] [--seed N] [--json] [--smoke]`` — drive a mixed
  workload through a multi-site world and report throughput,
  shed/failure accounting and p50/p95/p99 latencies (see
  ``docs/LOAD.md``); ``--durable`` journals every site to a
  write-ahead log and ``--crash-cycles`` kills and WAL-recovers whole
  sites mid-run; ``--smoke`` runs the acceptance pair (sustain +
  overload) and exits non-zero on any violated invariant.
* ``cluster [--sites N] [--clients N] [--requests N] [--keys N]
  [--vnodes N] [--service-delay S] [--seed N] [--soak] [--json]
  [--smoke]`` / ``cluster --procs [--sites N] [--duration S]
  [--service-sleep S] [--client-procs N] [--moves N] [--json]`` —
  drive the sharded multi-site cluster (consistent-hash ring +
  partitioned naming directory with client-cached leases, see
  ``docs/CLUSTER.md``); the default mode runs the deterministic
  simulated scenario (``--soak`` layers the fault plane), ``--procs``
  launches one real OS process per site and drives them over TCP
  gateways, and ``--smoke`` runs the acceptance pair (clean sustain +
  faulty soak) and exits non-zero on any violated invariant.
* ``recover --selftest [--seed N]`` / ``recover --root DIR
  [--backend file|sqlite] [--json]`` — durability tooling (see
  ``docs/DURABILITY.md``): ``--selftest`` runs the seeded
  crash-recovery acceptance soak (repeated site kill/restart under
  faulty load; exactly-once ownership, zero lost replies, zero lost
  updates) and exits non-zero on any violation; offline mode opens
  every write-ahead log under DIR, replays it through recovery, and
  reports what a restart would reinstate, exiting non-zero if any
  log shows unrepaired damage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.errors import MROMError
from .core.introspection import describe
from .lang import Interpreter, parse
from .lang.compiler import compile_object_methods
from .mobility.package import unpack_bytes
from .persistence import ObjectStore

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    source = Path(args.script).read_text(encoding="utf-8")
    result = Interpreter().run(source)
    for line in result.output:
        print(line)
    if args.show_value and result.value is not None:
        print(f"=> {result.value!r}")
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    from .lang.interp import MplSession

    session = MplSession()
    stream = sys.stdin
    interactive = stream.isatty()
    if interactive:
        print("MPL session — a blank line at depth 0 quits; braces continue.")
    buffer: list[str] = []
    depth = 0
    while True:
        if interactive:
            print("...> " if buffer else "mpl> ", end="", flush=True)
        line = stream.readline()
        if not line:
            return 0
        if not line.strip() and not buffer:
            return 0
        buffer.append(line)
        depth += line.count("{") - line.count("}")
        if depth > 0:
            continue  # inside a declaration/block: keep reading
        depth = 0
        fragment, buffer = "".join(buffer), []
        try:
            value, output = session.feed(fragment)
        except MROMError as exc:
            print(f"error: {type(exc).__name__}: {exc}")
            continue
        for emitted in output:
            print(emitted)
        if value is not None and not output:
            print(f"=> {value!r}")


def _cmd_check(args: argparse.Namespace) -> int:
    source = Path(args.script).read_text(encoding="utf-8")
    program = parse(source)
    compiled_methods = 0
    for decl in program.objects:
        compiled_methods += len(compile_object_methods(decl))
    print(
        f"ok: {len(program.objects)} object(s), {compiled_methods} method(s), "
        f"{len(program.statements)} top-level statement(s)"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    wire = Path(args.package).read_bytes()
    obj = unpack_bytes(wire)  # verification only; no guest code runs
    description = describe(obj, viewer=obj.principal)
    print(f"guid:          {description.guid}")
    print(f"display name:  {description.display_name or '(none)'}")
    print(f"domain:        {description.domain or '(none)'}")
    print(f"owner:         {obj.owner.guid}")
    print(f"meta:          {'extensible' if description.extensible_meta else 'fixed'}")
    print(f"tower depth:   {description.tower_depth}")
    counts = description.counts
    print(
        "items:         "
        f"{counts['fixed_data']}+{counts['extensible_data']} data, "
        f"{counts['fixed_methods']}+{counts['extensible_methods']} methods "
        "(fixed+extensible)"
    )
    for item in description.items:
        if item.metadata.get("meta"):
            continue
        marker = "M" if item.category == "method" else "D"
        wrappers = "".join(
            flag for flag, present in (("p", item.has_pre), ("q", item.has_post)) if present
        )
        suffix = f" [{wrappers}]" if wrappers else ""
        print(f"  {marker} {item.section:<10} {item.name}{suffix}")
    return 0


def _apply_baseline(findings: list, baseline_path: str) -> tuple:
    """Shared ``--baseline`` semantics for lint and analyze.

    Returns ``(findings, notes)``: when the baseline file is missing the
    current findings are recorded as accepted debt and the run passes
    clean; when it exists, recorded findings are subtracted and only the
    new ones remain to gate on.
    """
    from .analysis.baseline import load_baseline, suppress, write_baseline

    known = load_baseline(baseline_path)
    if known is None:
        count = write_baseline(baseline_path, findings)
        return [], [f"baseline: recorded {count} finding(s) to {baseline_path}"]
    new, suppressed = suppress(findings, known)
    notes = []
    if suppressed:
        notes.append(
            f"baseline: suppressed {len(suppressed)} known finding(s)"
        )
    return new, notes


def _report_findings(findings: list, notes: list, args: argparse.Namespace) -> int:
    from .analysis import fails, render_json, render_text

    if args.json:
        print(render_json(findings))
    else:
        for line in render_text(findings):
            print(line)
        for note in notes:
            print(note)
        if not findings:
            print("clean: no findings")
    return 1 if fails(findings, strict=args.strict) else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import dedupe
    from .analysis.sources import lint_paths

    findings = []
    if args.object:
        from .analysis.admission import analyze_package
        from .net.marshal import unmarshal

        for package_path in args.object:
            findings.extend(
                analyze_package(unmarshal(Path(package_path).read_bytes()))
            )
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2
    findings.extend(lint_paths(args.paths))
    findings = dedupe(findings)
    notes: list = []
    if args.baseline:
        findings, notes = _apply_baseline(findings, args.baseline)
    return _report_findings(findings, notes, args)


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.sanitize_smoke:
        return _sanitize_smoke(args)
    from .analysis.interproc import analyze_paths

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2
    if not args.paths:
        print("error: no paths given (and --sanitize-smoke not set)",
              file=sys.stderr)
        return 2
    all_passes = not (args.races or args.deadlocks or args.migration)
    findings = analyze_paths(
        args.paths,
        check_races=all_passes or args.races,
        check_deadlocks=all_passes or args.deadlocks,
        check_migration=all_passes or args.migration,
    )
    notes: list = []
    if args.baseline:
        findings, notes = _apply_baseline(findings, args.baseline)
    return _report_findings(findings, notes, args)


def _sanitize_smoke(args: argparse.Namespace) -> int:
    """Run a sanitizer-instrumented soak and cross-check its verdicts.

    The acceptance bar is differential: the run must observe at least
    one dynamic race (the workload's read-modify-write counters make
    that non-vacuous), and every race/cycle the sanitizer saw must be
    matched by a static diagnostic from the same effect summaries.
    """
    from .analysis import sanitizer as hb
    from .load.scenario import LoadConfig, run_soak_scenario

    san = hb.enable()
    try:
        report = run_soak_scenario(
            LoadConfig(
                sites=3,
                clients=3,
                requests=args.requests,
                mode="closed",
                seed=args.seed,
            )
        )
    finally:
        hb.disable()
    verdict = san.crosscheck()
    print(
        f"sanitize-smoke: tasks={verdict['tasks']} "
        f"accesses={verdict['accesses']} sends={verdict['sends']} "
        f"syncs={verdict['syncs']}"
    )
    print(
        f"sanitize-smoke: observed {verdict['observed_races']} race(s), "
        f"{verdict['observed_cycles']} cycle(s); "
        f"{verdict['static_findings']} static finding(s)"
    )
    failures = []
    if report.unresolved:
        failures.append(f"{report.unresolved} unresolved request(s)")
    if not verdict["observed_races"]:
        failures.append("vacuous run: no dynamic races observed")
    for race in verdict["unmatched_races"]:
        failures.append(f"unreported race: {race}")
    for cycle in verdict["unmatched_cycles"]:
        failures.append(f"unreported wait cycle: {cycle}")
    for failure in failures:
        print(f"sanitize-smoke: FAIL: {failure}")
    if not failures:
        print(
            "sanitize-smoke: OK — every observed hazard matched a "
            "static diagnostic"
        )
    return 1 if failures else 0


def _cmd_store(args: argparse.Namespace) -> int:
    store = ObjectStore(args.root)
    if args.store_command == "list":
        guids = store.guids()
        if not guids:
            print("(empty store)")
            return 0
        for guid in guids:
            versions = store.versions(guid)
            print(f"{guid}  versions: {versions}")
        return 0
    if args.store_command == "show":
        obj = store.load(args.guid, version=args.version)
        print(f"{obj.guid} ({obj.principal.display_name or 'unnamed'})")
        for item, _category, section in obj.containers.iter_with_sections():
            if item.metadata.get("meta"):
                continue
            print(f"  {section:<10} {item.category:<6} {item.name}")
        return 0
    if args.store_command == "verify":
        clean = True
        for guid in store.guids():
            try:
                store.load(guid)
                print(f"ok      {guid}")
            except MROMError as exc:
                clean = False
                print(f"CORRUPT {guid}: {exc}")
        return 0 if clean else 1
    raise AssertionError(f"unhandled store command {args.store_command!r}")


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import run_chaos_scenario

    report = run_chaos_scenario(
        seed=args.seed,
        n_sites=args.sites,
        passes=args.passes,
        drop=args.drop,
        dup=args.dup,
        reorder=args.reorder,
        jitter=args.jitter,
        flap=args.flap,
        crash=args.crash,
        store_root=args.store_root,
    )
    for line in report.to_lines():
        print(line)
    return 0 if report.ok else 1


def _emit_text(destination: str, text: str) -> None:
    if destination == "-":
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        Path(destination).write_text(text, encoding="utf-8")


def _trace_smoke(report, spans) -> list[str]:
    """The acceptance invariants; returns human-readable violations."""
    from .telemetry.exporters import span_lines
    from .telemetry.schema import validate_span_lines

    problems = list(validate_span_lines("\n".join(span_lines(spans))))
    trace = [s for s in spans if s.trace_id == report.trace_id]
    names = {s.name for s in trace}
    for needed in ("rmi.invoke", "serve.invoke", "transfer.handoff",
                   "transfer.install", "serve.transfer.prepare"):
        if needed not in names:
            problems.append(f"trace {report.trace_id} has no {needed!r} span")
    handoffs = [s for s in trace if s.name == "transfer.handoff"]
    phase_events = {e.name for s in handoffs for e in s.events}
    for phase in ("PREPARE", "COMMIT"):
        if phase not in phase_events:
            problems.append(f"no {phase} phase event on the handoff span")
    fault_events = [
        e for s in trace for e in s.events if e.name == "fault"
    ]
    if not fault_events:
        problems.append("no injected fault is visible as a span event")
    for event in fault_events:
        if "scenario" not in event.attrs or "seq" not in event.attrs:
            problems.append("a fault event lacks scenario/seq attribution")
    span_ids = {s.span_id for s in spans}
    orphans = [
        s.span_id for s in spans
        if s.parent_id is not None and s.parent_id not in span_ids
    ]
    if orphans:
        problems.append(f"orphaned spans (missing parents): {orphans}")
    if report.telemetry.open_spans:
        problems.append(f"{report.telemetry.open_spans} spans left open")
    counters = report.telemetry.metrics
    for name in ("rmi.retries", "rmi.dedup_hits", "faults.injected",
                 "migrations", "invocations"):
        if counters.counter_value(name) < 1:
            problems.append(f"metric {name!r} never incremented")
    if report.final_count != 41:
        problems.append(f"workload answer drifted: {report.final_count!r}")
    return problems


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .telemetry.exporters import (
        metrics_snapshot,
        render_tree,
        span_lines,
    )
    from .telemetry.scenario import run_traced_scenario

    report = run_traced_scenario(seed=args.seed)
    spans = list(report.telemetry.recorder)
    exported = False
    if args.json:
        _emit_text(args.json, "\n".join(span_lines(spans)) + "\n")
        exported = True
    if args.metrics:
        snapshot = metrics_snapshot(
            report.telemetry.metrics,
            name="trace-scenario",
            extra={"seed": args.seed, "trace_id": report.trace_id},
        )
        _emit_text(args.metrics, json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        exported = True
    if args.smoke:
        problems = _trace_smoke(report, spans)
        summary = report.summary()
        print(f"trace seed {args.seed}: "
              f"{'OK' if not problems else 'VIOLATED'}")
        print(f"trace id:     {summary['trace_id']}")
        print(f"spans:        {summary['spans_in_trace']} in trace, "
              f"{len(spans)} total")
        print(f"span names:   {' '.join(summary['span_names'])}")
        for label in sorted(report.faults):
            print(f"fault {label:<12} {report.faults[label]}")
        for problem in problems:
            print(f"VIOLATION: {problem}")
        return 1 if problems else 0
    if args.tree or not exported:
        for line in render_tree(spans):
            print(line)
    return 0


def _load_config(args) -> "object":
    from .load import LoadConfig, OpProfile
    from .net import RetryPolicy

    profile = OpProfile.parse(args.mix) if args.mix else None
    retry = RetryPolicy() if args.retry else None
    kwargs = dict(
        sites=args.sites, clients=args.clients, requests=args.requests,
        mode=args.mode, rate=args.rate, think_time=args.think_time,
        seed=args.seed, inflight_limit=args.window,
        service_delay=args.service_delay, retry=retry,
        durable=args.durable or bool(args.crash_cycles),
        backend=args.backend, wal_root=args.wal_root,
        crash_cycles=args.crash_cycles,
    )
    if profile is not None:
        kwargs["profile"] = profile
    return LoadConfig(**kwargs)


def _load_smoke(args) -> int:
    """The acceptance pair: a sustain pass (every request settles, no
    lost updates, populated percentiles) and an overload pass (the
    admission window below offered load sheds structured OverloadErrors
    while every non-shed request completes)."""
    from .load import LoadConfig, OpProfile, run_load_scenario

    problems: list[str] = []
    sustain = run_load_scenario(LoadConfig(
        sites=max(4, args.sites), clients=max(4, args.clients),
        requests=max(10_000, args.requests), mode="closed", seed=args.seed,
    ))
    print("--- sustain pass ---")
    for line in sustain.to_lines():
        print(line)
    if sustain.unresolved:
        problems.append(f"sustain: {sustain.unresolved} request(s) never settled")
    if sustain.shed or sustain.failed:
        problems.append(
            f"sustain: unconstrained run shed {sustain.shed} / "
            f"failed {sustain.failed} request(s)"
        )
    if not sustain.consistent:
        problems.append(
            f"sustain: lost updates (counters {sustain.counter_total} != "
            f"ok increments {sustain.invoke_ok})"
        )
    if sustain.latency.get("count", 0) < sustain.ok:
        problems.append("sustain: latency histogram missed samples")
    if not all(sustain.latency.get(p, 0) > 0 for p in ("p50", "p95", "p99")):
        problems.append("sustain: percentiles not populated")
    if sustain.migrations < 1:
        problems.append("sustain: no migration happened under load")

    overload = run_load_scenario(LoadConfig(
        sites=max(4, args.sites), clients=max(4, args.clients),
        requests=max(2_000, args.requests // 5), mode="open", rate=2_000.0,
        inflight_limit=2, service_delay=0.002, seed=args.seed,
        profile=OpProfile(invoke=1.0, get_data=0, describe=0, migrate=0),
    ))
    print("--- overload pass ---")
    for line in overload.to_lines():
        print(line)
    if overload.unresolved:
        problems.append(f"overload: {overload.unresolved} request(s) never settled")
    if not overload.shed:
        problems.append("overload: window below offered load never shed")
    if overload.failed:
        problems.append(
            f"overload: {overload.failed} non-shed request(s) failed "
            f"({overload.errors})"
        )
    if overload.ok + overload.shed != overload.issued:
        problems.append("overload: outcome accounting does not add up")
    if not overload.consistent:
        problems.append("overload: lost updates on the non-shed path")

    print(f"load smoke: {'OK' if not problems else 'VIOLATED'}")
    for problem in problems:
        print(f"VIOLATION: {problem}")
    return 1 if problems else 0


def _cmd_load(args: argparse.Namespace) -> int:
    import json

    from .load import run_load_scenario, run_soak_scenario

    if args.smoke:
        return _load_smoke(args)
    config = _load_config(args)
    runner = run_soak_scenario if args.soak else run_load_scenario
    report = runner(config)
    if args.json:
        print(json.dumps(report.to_mapping(), indent=2, sort_keys=True))
    else:
        for line in report.to_lines():
            print(line)
    clean = (
        report.unresolved == 0 and report.consistent and report.exactly_once
    )
    return 0 if clean else 1


def _cluster_problems(report, label: str, soak: bool) -> list[str]:
    """Closed-form cluster invariants; returns human-readable violations."""
    problems: list[str] = []
    if report.unresolved:
        problems.append(f"{label}: {report.unresolved} request(s) never settled")
    if not report.consistent:
        problems.append(
            f"{label}: lost updates (counters {report.counter_total} != "
            f"ok increments {report.invoke_ok})"
        )
    if not report.single_owner or report.owner_violations:
        problems.append(
            f"{label}: a name had two live owners ({report.owner_violations})"
        )
    if not report.converged:
        problems.append(f"{label}: directory never converged after the run")
    if not soak and report.failed:
        problems.append(
            f"{label}: clean run failed {report.failed} request(s) "
            f"({report.errors})"
        )
    if soak:
        typed = report.errors.get("StaleLeaseError", 0)
        untyped = report.failed - typed
        if untyped:
            problems.append(
                f"{label}: {untyped} failure(s) not typed StaleLeaseError "
                f"({report.errors})"
            )
    return problems


def _cluster_smoke(args) -> int:
    """The acceptance pair: a clean sustain pass (every request settles,
    stale redirects converge, one live owner per name) and a faulty soak
    (drops/dups/jitter on every wire; the only admissible terminal
    failure is a typed stale lease whose redirect budget ran out)."""
    from .load import ClusterConfig, run_cluster_scenario, run_cluster_soak

    problems: list[str] = []
    sustain = run_cluster_scenario(ClusterConfig(
        sites=max(4, args.sites), clients=max(8, args.clients),
        requests=max(1_200, args.requests), seed=args.seed,
        service_delay=0.002,
    ))
    print("--- sustain pass ---")
    for line in sustain.to_lines():
        print(line)
    problems += _cluster_problems(sustain, "sustain", soak=False)
    if sustain.stale_client < 1:
        problems.append("sustain: no stale-lease redirect was exercised")
    if sustain.migrations < 1:
        problems.append("sustain: no ring-mediated migration happened")

    soak = run_cluster_soak(ClusterConfig(
        sites=max(4, args.sites), clients=max(8, args.clients),
        requests=max(800, args.requests // 2), seed=args.seed,
        service_delay=0.002,
    ))
    print("--- soak pass ---")
    for line in soak.to_lines():
        print(line)
    problems += _cluster_problems(soak, "soak", soak=True)

    print(f"cluster smoke: {'OK' if not problems else 'VIOLATED'}")
    for problem in problems:
        print(f"VIOLATION: {problem}")
    return 1 if problems else 0


def _cluster_procs(args) -> int:
    import json

    from .load import ClusterProcsConfig, run_cluster_procs

    report = run_cluster_procs(ClusterProcsConfig(
        sites=args.sites, duration=args.duration,
        keys_per_site=args.keys, vnodes=args.vnodes, seed=args.seed,
        service_sleep=args.service_sleep, client_procs=args.client_procs,
        moves=args.moves,
    ))
    clean = (
        report["consistent"] and report["single_owner"]
        and not report["failed"]
    )
    if args.json:
        # machine-readable mode stays pure JSON; the verdict is in the
        # exit code and the consistent/single_owner/failed fields
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for key in ("sites", "threads", "keys", "moves", "ok", "stale",
                    "shed", "failed", "counter_total", "stale_served",
                    "throughput", "stale_rate"):
            print(f"{key:<15} {report[key]}")
        print(f"cluster procs: {'OK' if clean else 'VIOLATED'}")
    return 0 if clean else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json

    from .load import ClusterConfig, run_cluster_scenario, run_cluster_soak

    if args.smoke:
        return _cluster_smoke(args)
    if args.procs:
        return _cluster_procs(args)
    config = ClusterConfig(
        sites=args.sites, clients=args.clients, requests=args.requests,
        keys_per_site=args.keys, vnodes=args.vnodes, seed=args.seed,
        service_delay=args.service_delay,
    )
    runner = run_cluster_soak if args.soak else run_cluster_scenario
    report = runner(config)
    if args.json:
        print(json.dumps(report.to_mapping(), indent=2, sort_keys=True))
    else:
        for line in report.to_lines():
            print(line)
    problems = _cluster_problems(report, "cluster", soak=args.soak)
    return 0 if not problems else 1


def _recover_selftest(args) -> int:
    """The crash-recovery acceptance round: a durable soak with whole
    sites killed and WAL-recovered mid-run. Every closed-form invariant
    from the non-crashing soak must still hold, plus exactly-once
    ownership after the restarts."""
    from .load import LoadConfig, run_soak_scenario

    cycles = max(3, args.crash_cycles or 0)
    # disk-backed stores only when the caller gave them a directory;
    # the invariants under test are backend-independent
    backend = args.backend if args.wal_root else "memory"
    config = LoadConfig(
        sites=max(4, args.sites), clients=max(4, args.clients),
        requests=max(2_000, args.requests), mode="closed", seed=args.seed,
        durable=True, backend=backend, wal_root=args.wal_root,
        crash_cycles=cycles,
    )
    report = run_soak_scenario(config)
    for line in report.to_lines():
        print(line)
    for recovery in report.durable.get("recoveries", []):
        print(
            "  recovery  site={site_id} records={records_replayed} "
            "objects={objects_restored} served={served_restored} "
            "unresolved={unresolved_restored} damage={damage}".format(
                **recovery
            )
        )
    problems: list[str] = []
    if report.unresolved:
        problems.append(f"{report.unresolved} request(s) never settled")
    if report.ok + report.shed + report.failed != report.issued:
        problems.append("outcome accounting does not add up")
    if report.failed:
        problems.append(
            f"{report.failed} request(s) failed terminally ({report.errors})"
        )
    if not report.consistent:
        problems.append(
            f"lost updates across restarts (counters {report.counter_total} "
            f"!= ok increments {report.invoke_ok})"
        )
    if report.restarts < cycles:
        problems.append(
            f"only {report.restarts}/{cycles} crash-restart cycles completed"
        )
    if not report.exactly_once:
        problems.append(
            f"ownership not exactly-once after recovery: "
            f"{report.durable.get('ownership')}"
        )
    print(f"recover selftest: {'OK' if not problems else 'VIOLATED'}")
    for problem in problems:
        print(f"VIOLATION: {problem}")
    return 1 if problems else 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import json

    from .net.transport import Network
    from .persistence import WriteAheadLog, make_store, recover_site
    from .sim import Simulator

    if args.selftest:
        return _recover_selftest(args)
    if not args.root:
        print("error: recover needs --root DIR (or --selftest)",
              file=sys.stderr)
        return 2
    root = Path(args.root)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    suffix = ".db" if args.backend == "sqlite" else ".wal"
    logs = sorted(root.glob(f"*{suffix}"))
    if not logs:
        print(f"error: no *{suffix} logs under {root}", file=sys.stderr)
        return 2
    # an offline scratch world: replay answers "what would a restart
    # reinstate", it does not join the logs' original internetwork
    network = Network(Simulator())
    damaged = 0
    reports = []
    for path in logs:
        site_id = path.stem
        wal = WriteAheadLog(
            make_store(args.backend, root=str(root), name=site_id)
        )
        _site, manager, report = recover_site(
            network, site_id, wal, domain=f"recover.{site_id}"
        )
        mapping = report.to_mapping()
        mapping["pending_transfers"] = len(manager.unresolved)
        reports.append(mapping)
        if report.damage is not None:
            damaged += 1
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    else:
        for mapping in reports:
            print(
                "{site_id}: records={records_replayed} "
                "objects={objects_restored} (+{objects_failed} failed) "
                "served={served_restored} ledger={ledger_restored} "
                "pending-transfers={pending_transfers} "
                "snapshot={snapshot_used} damage={damage}".format(**mapping)
            )
        print(
            f"recover: {len(reports)} log(s) replayed, "
            f"{damaged} with damage"
        )
    return 1 if damaged else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MROM / HADAS reproduction command-line tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="execute an MPL script")
    run_parser.add_argument("script")
    run_parser.add_argument(
        "--show-value", action="store_true",
        help="also print the value of the last statement",
    )
    run_parser.set_defaults(handler=_cmd_run)

    repl_parser = commands.add_parser(
        "repl", help="interactive MPL session (reads statements from stdin)"
    )
    repl_parser.set_defaults(handler=_cmd_repl)

    check_parser = commands.add_parser(
        "check", help="parse and compile an MPL script without running it"
    )
    check_parser.add_argument("script")
    check_parser.set_defaults(handler=_cmd_check)

    inspect_parser = commands.add_parser(
        "inspect", help="describe a packed object file (no code executes)"
    )
    inspect_parser.add_argument("package")
    inspect_parser.set_defaults(handler=_cmd_inspect)

    lint_parser = commands.add_parser(
        "lint",
        help="static analysis: lint MPL sources and audit packed objects",
        description=(
            "Lint .mpl files (and MPL programs embedded in .py files) "
            "under the given paths, and/or run the migration admission "
            "analysis over packed .mrom objects. Exit codes: 0 clean, "
            "1 findings, 2 usage error."
        ),
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to lint (.mpl, or .py with embedded MPL)",
    )
    lint_parser.add_argument(
        "--object", action="append", default=[], metavar="PACKAGE.mrom",
        help="also run admission analysis over a packed object file",
    )
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (exit 1)",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    lint_parser.add_argument(
        "--baseline", metavar="FILE.json", default=None,
        help="record findings on first run; later runs fail only on "
             "findings the baseline has not seen",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    analyze_parser = commands.add_parser(
        "analyze",
        help="interprocedural race/deadlock/migration-safety analysis",
        description=(
            "Build a cross-object call graph over MPL programs and host "
            "scenario scripts under the given paths and report potential "
            "races (race.*), wait/recursion cycles (cycle.*) and "
            "migration-safety hazards (migration.*). With "
            "--sanitize-smoke, instead run a sanitizer-instrumented soak "
            "and cross-check every dynamically observed hazard against "
            "the static analysis. Exit codes match lint: 0 clean, 1 "
            "findings (warnings only under --strict), 2 usage error."
        ),
    )
    analyze_parser.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to analyze (.mpl, and .py host scripts)",
    )
    analyze_parser.add_argument(
        "--races", action="store_true",
        help="run only the race-detection pass",
    )
    analyze_parser.add_argument(
        "--deadlocks", action="store_true",
        help="run only the wait-cycle/recursion pass",
    )
    analyze_parser.add_argument(
        "--migration", action="store_true",
        help="run only the migration-safety pass",
    )
    analyze_parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (exit 1)",
    )
    analyze_parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    analyze_parser.add_argument(
        "--baseline", metavar="FILE.json", default=None,
        help="record findings on first run; later runs fail only on "
             "findings the baseline has not seen",
    )
    analyze_parser.add_argument(
        "--sanitize-smoke", action="store_true",
        help="run a happens-before-sanitized soak and require every "
             "observed race/cycle to match a static diagnostic",
    )
    analyze_parser.add_argument("--seed", type=int, default=0)
    analyze_parser.add_argument(
        "--requests", type=int, default=1500,
        help="soak request count for --sanitize-smoke",
    )
    analyze_parser.set_defaults(handler=_cmd_analyze)

    store_parser = commands.add_parser("store", help="inspect an object store")
    store_parser.add_argument("--root", required=True)
    store_commands = store_parser.add_subparsers(
        dest="store_command", required=True
    )
    store_commands.add_parser("list", help="list stored objects")
    show_parser = store_commands.add_parser("show", help="describe one object")
    show_parser.add_argument("guid")
    show_parser.add_argument("--version", type=int, default=None)
    store_commands.add_parser("verify", help="checksum-verify every image")
    store_parser.set_defaults(handler=_cmd_store)

    chaos_parser = commands.add_parser(
        "chaos",
        help="run the seeded fault-injection scenario (deterministic)",
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument("--sites", type=int, default=5)
    chaos_parser.add_argument("--passes", type=int, default=2)
    chaos_parser.add_argument("--drop", type=float, default=0.10,
                              help="per-message drop probability")
    chaos_parser.add_argument("--dup", type=float, default=0.10,
                              help="per-message duplication probability")
    chaos_parser.add_argument("--reorder", type=float, default=0.05,
                              help="per-message reorder probability")
    chaos_parser.add_argument("--jitter", type=float, default=0.005,
                              help="max additive latency noise (seconds)")
    chaos_parser.add_argument("--flap", action=argparse.BooleanOptionalAction,
                              default=True, help="flap one ring link")
    chaos_parser.add_argument("--crash", action=argparse.BooleanOptionalAction,
                              default=True,
                              help="crash-restart one site from checkpoint")
    chaos_parser.add_argument("--store-root", default=None,
                              help="directory for the crash checkpoint store")
    chaos_parser.set_defaults(handler=_cmd_chaos)

    trace_parser = commands.add_parser(
        "trace",
        help="run the traced scenario and export telemetry (deterministic)",
        description=(
            "Run the seeded telemetry acceptance scenario — one trace "
            "spanning a remote invocation and a migration hop under "
            "injected faults — and export the capture. With no export "
            "flag the human-readable trace tree is printed."
        ),
    )
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument(
        "--tree", action="store_true",
        help="print the human-readable trace tree (default output)",
    )
    trace_parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the JSON-lines span export to FILE ('-' = stdout)",
    )
    trace_parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write a BENCH_*.json-compatible metrics snapshot ('-' = stdout)",
    )
    trace_parser.add_argument(
        "--smoke", action="store_true",
        help="validate the export against the span schema and the "
             "cross-wire trace invariants; non-zero exit on violation",
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    load_parser = commands.add_parser(
        "load",
        help="drive a mixed workload through a multi-site world "
             "(deterministic)",
        description=(
            "Run an open- or closed-loop workload over the simulated "
            "internetwork and report throughput, shed/failure accounting "
            "and bucketed latency percentiles. Identical seeds produce "
            "identical reports. Exit codes: 0 clean, 1 lost requests or "
            "lost updates (or, with --smoke, any violated invariant)."
        ),
    )
    load_parser.add_argument("--mode", choices=("closed", "open"),
                             default="closed")
    load_parser.add_argument("--sites", type=int, default=4,
                             help="serving sites")
    load_parser.add_argument("--clients", type=int, default=4,
                             help="client sites (one driver each)")
    load_parser.add_argument("--requests", type=int, default=10_000,
                             help="total logical requests")
    load_parser.add_argument("--rate", type=float, default=500.0,
                             help="open loop: per-client arrivals per "
                                  "simulated second")
    load_parser.add_argument("--think-time", type=float, default=0.0,
                             help="closed loop: pause after each completion")
    load_parser.add_argument("--window", type=int, default=None,
                             metavar="N",
                             help="per-site inflight admission window "
                                  "(default: unbounded)")
    load_parser.add_argument("--service-delay", type=float, default=0.0,
                             help="per-request service time at the servers")
    load_parser.add_argument("--mix", default=None, metavar="SPEC",
                             help="op mix, e.g. invoke=70,get_data=20,"
                                  "describe=8,migrate=2")
    load_parser.add_argument("--retry", action="store_true",
                             help="arm the default retry policy on clients")
    load_parser.add_argument("--soak", action="store_true",
                             help="layer the fault plane (drops, duplicates, "
                                  "jitter) with retries armed")
    load_parser.add_argument("--durable", action="store_true",
                             help="journal every serving site to a "
                                  "write-ahead log")
    load_parser.add_argument("--backend",
                             choices=("memory", "file", "sqlite"),
                             default="memory",
                             help="WAL store backend (file/sqlite need "
                                  "--wal-root)")
    load_parser.add_argument("--wal-root", default=None, metavar="DIR",
                             help="directory for file/sqlite WAL stores")
    load_parser.add_argument("--crash-cycles", type=int, default=0,
                             metavar="N",
                             help="kill and WAL-recover whole sites N times "
                                  "mid-run (implies --durable)")
    load_parser.add_argument("--seed", type=int, default=0)
    load_parser.add_argument("--json", action="store_true",
                             help="machine-readable JSON report")
    load_parser.add_argument("--smoke", action="store_true",
                             help="run the sustain+overload acceptance pair; "
                                  "non-zero exit on violation")
    load_parser.set_defaults(handler=_cmd_load)

    cluster_parser = commands.add_parser(
        "cluster",
        help="drive the sharded multi-site cluster (ring + directory "
             "leases)",
        description=(
            "Run a workload over the consistent-hash-sharded cluster: "
            "names resolve through a partitioned directory, clients "
            "cache leases, migrations bump placement generations and "
            "stale leases fail fast with a typed redirect. The default "
            "mode is the deterministic simulated scenario; --soak "
            "layers the fault plane; --procs launches one real OS "
            "process per site and drives them over TCP gateways; "
            "--smoke runs the sustain+soak acceptance pair. Exit "
            "codes: 0 clean, 1 violated invariant, 2 usage error."
        ),
    )
    cluster_parser.add_argument("--sites", type=int, default=4,
                                help="serving sites (ring members)")
    cluster_parser.add_argument("--clients", type=int, default=8,
                                help="sim mode: client sites")
    cluster_parser.add_argument("--requests", type=int, default=1_600,
                                help="sim mode: total logical requests")
    cluster_parser.add_argument("--keys", type=int, default=4,
                                metavar="N",
                                help="published names per site (sites*N "
                                     "total)")
    cluster_parser.add_argument("--vnodes", type=int, default=64,
                                help="virtual nodes per site on the ring")
    cluster_parser.add_argument("--service-delay", type=float, default=0.002,
                                help="sim mode: per-invoke service time")
    cluster_parser.add_argument("--soak", action="store_true",
                                help="sim mode: layer the fault plane "
                                     "(drops, duplicates, jitter)")
    cluster_parser.add_argument("--procs", action="store_true",
                                help="one real OS process per site, driven "
                                     "over TCP gateways")
    cluster_parser.add_argument("--duration", type=float, default=2.0,
                                help="procs mode: seconds of driven load")
    cluster_parser.add_argument("--service-sleep", type=float, default=0.02,
                                help="procs mode: per-invoke dwell at the "
                                     "serving site")
    cluster_parser.add_argument("--client-procs", type=int, default=2,
                                help="procs mode: driver processes")
    cluster_parser.add_argument("--moves", type=int, default=None,
                                metavar="N",
                                help="procs mode: mid-run directory "
                                     "rebalances (default sites//2)")
    cluster_parser.add_argument("--seed", type=int, default=0)
    cluster_parser.add_argument("--json", action="store_true",
                                help="machine-readable JSON report")
    cluster_parser.add_argument("--smoke", action="store_true",
                                help="run the sustain+soak acceptance pair; "
                                     "non-zero exit on violation")
    cluster_parser.set_defaults(handler=_cmd_cluster)

    recover_parser = commands.add_parser(
        "recover",
        help="replay write-ahead logs, or run the crash-recovery "
             "acceptance soak",
        description=(
            "Durability tooling. With --selftest, run the seeded "
            "crash-recovery acceptance round: a durable soak in which "
            "whole sites are repeatedly killed and recovered from their "
            "write-ahead logs; every closed-form invariant (zero lost "
            "replies, zero lost updates, exactly-once ownership) must "
            "hold, else exit 1. Without it, open every WAL under --root "
            "and report what a restart would reinstate; exit 1 if any "
            "log shows damage."
        ),
    )
    recover_parser.add_argument("--selftest", action="store_true",
                                help="run the seeded crash-recovery "
                                     "acceptance soak")
    recover_parser.add_argument("--root", default=None, metavar="DIR",
                                help="directory holding the WALs to replay")
    recover_parser.add_argument("--backend",
                                choices=("memory", "file", "sqlite"),
                                default="file",
                                help="store backend (offline replay: file "
                                     "or sqlite)")
    recover_parser.add_argument("--wal-root", default=None, metavar="DIR",
                                help="selftest: directory for file/sqlite "
                                     "WAL stores")
    recover_parser.add_argument("--sites", type=int, default=4)
    recover_parser.add_argument("--clients", type=int, default=4)
    recover_parser.add_argument("--requests", type=int, default=3_000)
    recover_parser.add_argument("--crash-cycles", type=int, default=3,
                                metavar="N",
                                help="selftest: kill/restart cycles "
                                     "(minimum 3)")
    recover_parser.add_argument("--seed", type=int, default=0)
    recover_parser.add_argument("--json", action="store_true",
                                help="machine-readable JSON report")
    recover_parser.set_defaults(handler=_cmd_recover)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except MROMError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
