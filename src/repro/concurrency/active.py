"""Active objects: a concurrent programming model built on MROM.

The paper's advanced-features list asks for "synchronization mechanisms
to allow implementation of concurrent programming models" — mechanisms
to *build models with*, not one blessed model. :class:`ActiveObject` is
the classic example built from those mechanisms: an object served by its
own worker thread, invoked asynchronously through a mailbox, with results
delivered as futures. Invocations execute strictly one at a time in
mailbox order, so the object itself never needs locks — the actor
discipline.

The mailbox accepts work from any thread; the worker is the only thread
that ever touches the object. ``stop()`` drains cleanly; submitting to a
stopped object fails fast.

When the happens-before sanitizer is active, each submission carries the
submitter's vector clock into the worker, and the worker runs as one
persistent task — mailbox serialization *is* a happens-before edge, which
is exactly the guarantee the wrapper sells.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Any, Sequence

from ..analysis import sanitizer as _sanitizer
from ..core.acl import Principal
from ..core.errors import ConcurrencyError
from ..core.mobject import MROMObject

__all__ = ["ActiveObject"]

_STOP = object()


class ActiveObject:
    """An MROM object served by its own worker thread.

    >>> from repro.core import MROMObject
    >>> obj = MROMObject()
    >>> obj.define_fixed_data("n", 0)
    >>> obj.define_fixed_method(
    ...     "bump", "self.set('n', self.get('n') + 1)\\nreturn self.get('n')")
    >>> obj.seal()
    >>> with ActiveObject(obj) as active:
    ...     futures = [active.invoke_async("bump") for _ in range(3)]
    ...     results = [f.result(timeout=5) for f in futures]
    >>> results
    [1, 2, 3]
    """

    def __init__(self, obj: MROMObject, queue_limit: int = 0):
        self.obj = obj
        self._mailbox: "queue.Queue" = queue.Queue(maxsize=queue_limit)
        self._stopped = threading.Event()
        self._drain_lock = threading.Lock()
        self._hb_task = None  # the worker's persistent sanitizer task
        self.processed = 0
        self.rejected = 0
        self._worker = threading.Thread(
            target=self._serve,
            name=f"active-{obj.principal.display_name or obj.guid}",
            daemon=True,
        )
        self._worker.start()

    # -- submitting work ----------------------------------------------------

    def invoke_async(
        self,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> "Future[Any]":
        """Queue an invocation; returns a future for its result."""
        if self._stopped.is_set():
            raise ConcurrencyError(
                f"active object {self.obj.guid} is stopped"
            )
        future: "Future[Any]" = Future()
        san = _sanitizer.ACTIVE
        clock = san.snapshot() if san is not None else None
        self._mailbox.put((method, list(args), caller, future, clock))
        if self._stopped.is_set() and not self._worker.is_alive():
            # stop() raced this submit: the item may have landed after
            # the _STOP sentinel, with nobody left to serve it. Either
            # stop()'s post-join drain sees it, or this drain does —
            # both fail the stranded future instead of leaving it
            # unresolved forever.
            self._fail_leftovers()
        return future

    def invoke(
        self,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
        timeout: float | None = 10.0,
    ) -> Any:
        """Synchronous convenience: queue and wait."""
        return self.invoke_async(method, args, caller).result(timeout=timeout)

    # -- the worker ----------------------------------------------------------

    def _serve(self) -> None:
        while True:
            work = self._mailbox.get()
            if work is _STOP:
                return
            method, args, caller, future, clock = work
            if not future.set_running_or_notify_cancel():
                continue
            san = _sanitizer.ACTIVE
            if san is not None:
                # one persistent task for the worker: item N's effects
                # happen-before item N+1's, the actor guarantee itself
                if self._hb_task is None:
                    self._hb_task = san.fork(
                        label=f"active:{self.obj.guid}", parent=None
                    )
                san.merge(self._hb_task, clock)
                san.push(self._hb_task)
                san.invoke(self.obj, method)
            try:
                result = self.obj.invoke(method, args, caller=caller)
            except BaseException as exc:  # noqa: BLE001 - delivered via future
                future.set_exception(exc)
            else:
                future.set_result(result)
            finally:
                if san is not None:
                    san.pop()
                self.processed += 1

    # -- lifecycle -------------------------------------------------------------

    def stop(self, timeout: float | None = 10.0) -> None:
        """Drain the mailbox and stop the worker (idempotent).

        A submit racing this call can enqueue *after* the ``_STOP``
        sentinel; the worker exits at the sentinel and would strand that
        future. After the join, any leftovers are drained and their
        futures failed with :class:`ConcurrencyError` — no caller is
        ever left waiting on a future nobody will resolve.
        """
        if self._stopped.is_set():
            # A concurrent stop() may still be between set() and its
            # join: draining now could steal queued work — or the _STOP
            # sentinel itself — out from under the live worker, which
            # would fail accepted invocations spuriously and leave the
            # worker parked on an empty mailbox forever while the first
            # stop() times out. Wait for the worker first; the drain is
            # only safe against a dead worker.
            self._worker.join(timeout=timeout)
            if self._worker.is_alive():
                raise ConcurrencyError(
                    f"active object {self.obj.guid} did not drain in time"
                )
            self._fail_leftovers()
            return
        self._stopped.set()
        self._mailbox.put(_STOP)
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():  # pragma: no cover - pathological
            raise ConcurrencyError(
                f"active object {self.obj.guid} did not drain in time"
            )
        self._fail_leftovers()

    def _fail_leftovers(self) -> None:
        """Fail every work item still in the mailbox (post-stop only)."""
        with self._drain_lock:
            while True:
                try:
                    work = self._mailbox.get_nowait()
                except queue.Empty:
                    return
                if work is _STOP:  # a duplicate sentinel; nothing to fail
                    continue
                _method, _args, _caller, future, _clock = work
                self.rejected += 1
                if future.set_running_or_notify_cancel():
                    future.set_exception(
                        ConcurrencyError(
                            f"active object {self.obj.guid} stopped before "
                            "serving this invocation"
                        )
                    )

    @property
    def pending(self) -> int:
        return self._mailbox.qsize()

    def __enter__(self) -> "ActiveObject":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "stopped" if self._stopped.is_set() else "serving"
        return f"ActiveObject({self.obj.guid}, {state}, processed={self.processed})"
