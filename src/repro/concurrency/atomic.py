"""Atomic mutation: all-or-nothing changes to an object's mutable state.

The paper's "advanced features" call for "atomicity to facilitate
consistent computations". A mobile object adjusting itself to a new host
typically performs *several* meta-operations (add a method, re-point a
data item, swap an ACL); a failure halfway would leave the object in a
state neither the origin nor the host intended. :func:`atomic` wraps such
a sequence: on any exception the extensible containers, data values,
meta-invoke tower and environment are restored to their entry snapshot.

Only the object's *mutable* surface participates — the fixed section
cannot change, so it needs no snapshot (the fixed/extensible split pays
off again: recovery cost is proportional to the mutable part only).
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from typing import Iterator

from ..core.errors import TransactionError
from ..core.items import DataItem
from ..core.mobject import MROMObject

__all__ = ["atomic", "snapshot_mutable_state", "restore_mutable_state"]


def snapshot_mutable_state(obj: MROMObject) -> dict:
    """Capture everything :func:`atomic` may need to roll back."""
    return {
        "ext_data": dict(obj.containers.ext_data._items),
        "ext_methods": dict(obj.containers.ext_methods._items),
        "data_values": {
            item.name: copy.deepcopy(item.peek())
            for item in list(obj.containers.fixed_data)
            + list(obj.containers.ext_data)
            if isinstance(item, DataItem)
        },
        "tower": list(obj.meta_invoke_chain()),
        "environment": copy.deepcopy(obj.environment),
    }


def restore_mutable_state(obj: MROMObject, snapshot: dict) -> None:
    """Wind the object back to a snapshot taken on it earlier."""
    obj.containers.ext_data._items.clear()
    obj.containers.ext_data._items.update(snapshot["ext_data"])
    obj.containers.ext_methods._items.clear()
    obj.containers.ext_methods._items.update(snapshot["ext_methods"])
    for name, value in snapshot["data_values"].items():
        if obj.containers.has_data(name):
            item, _section = obj.containers.lookup_data(name)
            item.poke(value)
    obj._meta_invokes[:] = snapshot["tower"]
    obj.environment.clear()
    obj.environment.update(snapshot["environment"])


@contextmanager
def atomic(obj: MROMObject) -> Iterator[MROMObject]:
    """All-or-nothing mutation block.

    >>> from repro.core import MROMObject
    >>> obj = MROMObject(); obj.define_fixed_data("x", 1); obj.seal()
    >>> try:
    ...     with atomic(obj):
    ...         obj.set_data("x", 99, caller=obj.principal)
    ...         raise RuntimeError("halfway failure")
    ... except RuntimeError:
    ...     pass
    >>> obj.get_data("x")
    1

    The rollback restores structure (extensible items, tower), data
    values, and the environment. It does **not** undo external effects
    (messages already sent, remote invocations already performed) — like
    any local transaction, the atomicity boundary is the object.
    """
    before = snapshot_mutable_state(obj)
    try:
        yield obj
    except Exception as exc:
        try:
            restore_mutable_state(obj, before)
        except Exception as rollback_error:  # pragma: no cover - defensive
            raise TransactionError(
                f"rollback itself failed: {rollback_error}"
            ) from exc
        raise
