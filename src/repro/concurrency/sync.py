"""Synchronization: serialized invocation for objects shared by threads.

The paper's "advanced features" require "synchronization mechanisms to
allow implementation of concurrent programming models". MROM objects are
not thread-safe by construction (the simulated network is deterministic
and single-threaded); when a host *does* share an object across threads,
it wraps it in a :class:`SynchronizedObject`, which serializes
invocations and value access behind one reentrant lock per object.

Reentrancy matters: a method body calling ``self.call(...)`` re-enters
the object on the same thread, which must not deadlock. A *non*-reentrant
guard (:class:`InvocationGate`) is also provided for objects whose
semantics forbid re-entry; it raises
:class:`~repro.core.errors.ReentrancyError` instead of deadlocking.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from ..core.acl import Principal
from ..core.errors import ReentrancyError
from ..core.mobject import MROMObject

__all__ = ["SynchronizedObject", "InvocationGate"]


class SynchronizedObject:
    """A thread-safe facade over an MROM object.

    Exposes the invocation and value-access surface; structure access
    (``containers``...) stays on the underlying object, because holding
    the lock across arbitrary host code would invite deadlock.
    """

    def __init__(self, obj: MROMObject):
        self.obj = obj
        self._lock = threading.RLock()
        self.contended = 0  # times the lock was not immediately available

    @property
    def guid(self) -> str:
        return self.obj.guid

    def invoke(
        self,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> Any:
        if not self._lock.acquire(blocking=False):
            self.contended += 1
            self._lock.acquire()
        try:
            return self.obj.invoke(method, args, caller=caller)
        finally:
            self._lock.release()

    def get_data(self, name: str, caller: Principal | None = None) -> Any:
        with self._lock:
            return self.obj.get_data(name, caller=caller)

    def set_data(self, name: str, value: Any, caller: Principal | None = None) -> None:
        with self._lock:
            self.obj.set_data(name, value, caller=caller)

    def holding(self):
        """Context manager: run a multi-step critical section atomically
        with respect to other threads using this facade."""
        return self._lock

    def __repr__(self) -> str:
        return f"SynchronizedObject({self.obj.guid}, contended={self.contended})"


class InvocationGate:
    """A non-reentrant invocation guard.

    For objects whose invariants are violated by re-entry (e.g. an object
    migrating itself mid-invocation), the gate turns re-entry — from the
    same thread or another — into an immediate
    :class:`~repro.core.errors.ReentrancyError`.
    """

    def __init__(self, obj: MROMObject):
        self.obj = obj
        self._busy = threading.Lock()
        self._holder: int | None = None

    def invoke(
        self,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> Any:
        me = threading.get_ident()
        if self._holder == me:
            raise ReentrancyError(
                f"object {self.obj.guid} re-entered via method {method!r}"
            )
        if not self._busy.acquire(blocking=False):
            raise ReentrancyError(
                f"object {self.obj.guid} is busy (another thread inside)"
            )
        self._holder = me
        try:
            return self.obj.invoke(method, args, caller=caller)
        finally:
            self._holder = None
            self._busy.release()
