"""Synchronization and atomicity (the paper's "advanced features")."""

from .active import ActiveObject
from .atomic import atomic, restore_mutable_state, snapshot_mutable_state
from .sync import InvocationGate, SynchronizedObject

__all__ = [
    "atomic",
    "snapshot_mutable_state",
    "restore_mutable_state",
    "SynchronizedObject",
    "InvocationGate",
    "ActiveObject",
]
