"""Service discovery across linked IOOs (a trading service).

The paper's bottom-up construction story assumes components find each
other: a host "must be able to interrogate the newcomer object, decide
whether to invoke it, and find out how to invoke it" — and before any of
that, somebody must learn the newcomer exists. The trader closes that
loop in the federated style of the rest of HADAS: there is no global
registry; each IOO answers discovery queries about its *own* Home, and a
client asks the sites it has Linked with.

Offers are built from the same visibility-filtered interrogation the
Match phase enforces, and Export ACLs apply: an APO a requester could not
Import is not offered to it either — discovery never reveals more than
invocation would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.acl import Principal
from ..core.errors import MROMError
from ..core.introspection import interrogate
from ..net.transport import Message
from .ioo import IOO

__all__ = ["ServiceOffer", "Trader", "KIND_TRADE"]

KIND_TRADE = "hadas.trade"


@dataclass(frozen=True)
class ServiceOffer:
    """One discoverable operation at one site."""

    site: str
    apo: str
    operation: str
    doc: str = ""
    tags: tuple = ()
    params: tuple = ()

    def to_mapping(self) -> dict:
        return {
            "site": self.site,
            "apo": self.apo,
            "operation": self.operation,
            "doc": self.doc,
            "tags": list(self.tags),
            "params": [dict(p) for p in self.params],
        }

    @classmethod
    def from_mapping(cls, raw: dict) -> "ServiceOffer":
        return cls(
            site=str(raw.get("site", "")),
            apo=str(raw.get("apo", "")),
            operation=str(raw.get("operation", "")),
            doc=str(raw.get("doc", "")),
            tags=tuple(raw.get("tags", [])),
            params=tuple(tuple(sorted(p.items())) for p in raw.get("params", [])),
        )


class Trader:
    """Attaches the discovery protocol to an IOO."""

    def __init__(self, ioo: IOO):
        self.ioo = ioo
        ioo.site.add_handler(KIND_TRADE, self._handle_trade)

    # ------------------------------------------------------------------
    # server side: what do *we* offer this requester?
    # ------------------------------------------------------------------

    def local_offers(
        self, tags: Iterable[str], requester: Principal
    ) -> list[ServiceOffer]:
        wanted = set(tags)
        offers: list[ServiceOffer] = []
        for apo_name, apo in sorted(self.ioo.home.items()):
            # requester.display_name carries the requesting *site id*
            # (set by the trade handler); Export ACLs bound discovery
            if not apo.exportable_to(requester.display_name, requester.domain):
                continue
            protocol = interrogate(apo.facade, viewer=requester)
            for operation, signature in sorted(protocol.items()):
                if signature.get("meta"):
                    continue
                offered_tags = set(signature.get("tags", []))
                if wanted and not wanted <= offered_tags:
                    continue
                offers.append(
                    ServiceOffer(
                        site=self.ioo.site.site_id,
                        apo=apo_name,
                        operation=operation,
                        doc=signature.get("doc", ""),
                        tags=tuple(sorted(offered_tags)),
                        params=tuple(
                            tuple(sorted(p.items()))
                            for p in signature.get("params", [])
                        ),
                    )
                )
        return offers

    def _handle_trade(self, message: Message) -> list:
        body = message.payload
        requester = Principal(
            guid=str(body.get("guid", "mrom:anonymous")),
            domain=str(body.get("from_domain", "")),
            display_name=str(body.get("from_site", message.src)),
        )
        tags = [str(tag) for tag in body.get("tags", [])]
        return [offer.to_mapping() for offer in self.local_offers(tags, requester)]

    # ------------------------------------------------------------------
    # client side: ask the vicinity
    # ------------------------------------------------------------------

    def discover(
        self,
        tags: Iterable[str] = (),
        sites: Sequence[str] | None = None,
    ) -> list[ServiceOffer]:
        """Query linked sites (or an explicit list) for matching services.

        Unreachable sites are skipped, not fatal — discovery over a
        partially partitioned vicinity returns what it can see.
        """
        targets = list(sites) if sites is not None else list(self.ioo.linked_sites())
        offers: list[ServiceOffer] = []
        for target in targets:
            try:
                raw = self.ioo.site.request(
                    target,
                    KIND_TRADE,
                    {
                        "tags": list(tags),
                        "from_site": self.ioo.site.site_id,
                        "from_domain": self.ioo.site.domain,
                        "guid": self.ioo.site.principal.guid,
                    },
                )
            except MROMError:
                continue
            for entry in raw if isinstance(raw, list) else []:
                offers.append(ServiceOffer.from_mapping(dict(entry)))
        return offers

    def import_first(self, tags: Iterable[str]):
        """Discover and Import the first matching service's APO; returns
        (offer, installed Ambassador)."""
        offers = self.discover(tags)
        if not offers:
            raise MROMError(f"no service offers matching tags {sorted(tags)}")
        offer = offers[0]
        local_name = f"{offer.site}:{offer.apo}"
        if local_name in self.ioo.imports:
            return offer, self.ioo.imports[local_name]
        ambassador = self.ioo.import_apo(
            offer.site, offer.apo, local_name=local_name
        )
        return offer, ambassador
