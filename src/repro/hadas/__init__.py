"""HADAS — Heterogeneous, Autonomous, Distributed Abstraction System.

The interoperability framework of Section 5, built on MROM: IOOs with
Home/Vicinity/Interop, APOs wrapping legacy applications, mobile
Ambassadors, the Link and Import/Export protocols, and wrapping helpers.
"""

from .ambassador import build_apo_ambassador, build_ioo_ambassador
from .apo import APO
from .ioo import ExportError, IOO, LinkError, VicinityEntry
from .mediation import (
    attach_argument_mediator,
    attach_result_mediator,
    mediate_import,
)
from .negotiation import InterfaceRequirement, NegotiationReport, negotiate
from .trader import ServiceOffer, Trader
from .update import FleetUpdater, InterfaceRevision, UpdateReport
from .wrapping import attach_assertions, attach_preparation, attach_usage_meter

__all__ = [
    "IOO",
    "APO",
    "VicinityEntry",
    "LinkError",
    "ExportError",
    "InterfaceRequirement",
    "NegotiationReport",
    "negotiate",
    "attach_argument_mediator",
    "attach_result_mediator",
    "mediate_import",
    "FleetUpdater",
    "InterfaceRevision",
    "UpdateReport",
    "Trader",
    "ServiceOffer",
    "build_apo_ambassador",
    "build_ioo_ambassador",
    "attach_assertions",
    "attach_preparation",
    "attach_usage_meter",
]
