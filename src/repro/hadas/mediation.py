"""Mediation: bridging data-format mismatches at the invocation boundary.

HADAS's communication level includes "middleware solutions for bridging
and/or mediating syntactic mismatches in data formats, argument passing,
etc." (Section 5), and the weak-typing requirement demands "generic
coercion to facilitate the high level of abstraction (e.g., to transform
a value that is represented as HTML text into an integer...)" (Section 1).

The mechanism is wrapping: pre-procedures receive the *live* argument
array — the same list the body will see — so a mediator pre can coerce
arguments in place before the body runs, and a post-mediator wraps the
result. Mediators attach at the importing site (they are native code;
they never migrate with the object) through the ordinary ``setMethod``
meta-operation, so only a principal the method's META ACL admits can
install one.

Typical use: a client imports an Ambassador whose operation expects an
integer, but the client's data arrives as scraped HTML. One mediator
later, the client calls the operation with whatever it has.
"""

from __future__ import annotations

from typing import Sequence

from ..core.acl import Principal
from ..core.code import CodeRole, NativeCode
from ..core.errors import CoercionError
from ..core.mobject import MROMObject
from ..core.values import Kind, coerce

__all__ = ["attach_argument_mediator", "attach_result_mediator", "mediate_import"]


def _set_component(
    obj: MROMObject, method: str, role: str, component, updater: Principal
) -> None:
    _description, handle = obj.invoke("getMethod", [method], caller=updater)
    obj.invoke("setMethod", [handle, {role: component}], caller=updater)


def attach_argument_mediator(
    obj: MROMObject,
    method: str,
    param_kinds: Sequence[Kind],
    updater: Principal | None = None,
    pad_missing: bool = False,
) -> None:
    """Coerce *method*'s arguments to *param_kinds* before every call.

    Extra arguments beyond the declared kinds pass through untouched;
    with *pad_missing*, absent trailing arguments become ``None``.
    A value that cannot be coerced vetoes the invocation (the caller sees
    :class:`~repro.core.errors.PreProcedureVeto` rather than a confused
    body).
    """
    updater = updater if updater is not None else obj.owner
    kinds = list(param_kinds)

    def mediate(self_view, args, ctx) -> bool:
        if pad_missing:
            while len(args) < len(kinds):
                args.append(None)
        for index, kind in enumerate(kinds):
            if index >= len(args):
                break
            try:
                args[index] = coerce(args[index], kind)
            except CoercionError:
                return False
        return True

    _set_component(
        obj, method, "pre",
        NativeCode(mediate, role=CodeRole.PRE, label=f"{method}.mediator"),
        updater,
    )


def attach_result_mediator(
    obj: MROMObject,
    method: str,
    result_kind: Kind,
    updater: Principal | None = None,
) -> None:
    """Present *method*'s result as *result_kind* to every caller.

    Post-procedures observe but cannot replace the result, so result
    mediation wraps the *body*: the original body moves under a private
    continuation and a coercing body takes its place.
    """
    updater = updater if updater is not None else obj.owner
    description, handle = obj.invoke("getMethod", [method], caller=updater)
    components = description.get("components")
    inner_name = f"{method}__unmediated"
    if components is not None:
        # portable original: park it under the continuation name
        obj.invoke(
            "addMethod",
            [inner_name, components["body"]["source"],
             {"metadata": {"doc": f"unmediated body of {method}"}}],
            caller=updater,
        )

        def outer(self_view, args, ctx):
            raw = self_view.call(inner_name, *args)
            return coerce(raw, result_kind)

    else:
        raise CoercionError(method, result_kind.value, "method is not portable")
    _set_component(
        obj, method, "body",
        NativeCode(outer, role=CodeRole.BODY, label=f"{method}.result-mediator"),
        updater,
    )


def mediate_import(
    ambassador: MROMObject,
    signatures: dict,
    updater: Principal | None = None,
) -> list[str]:
    """Bulk mediation from declared signatures.

    *signatures* maps method name to ``{"params": [Kind, ...],
    "returns": Kind | None}``. Returns the mediated method names.
    """
    mediated = []
    for method, spec in signatures.items():
        params = list(spec.get("params", []))
        if params:
            attach_argument_mediator(ambassador, method, params, updater=updater)
        returns = spec.get("returns")
        if returns is not None:
            attach_result_mediator(ambassador, method, returns, updater=updater)
        mediated.append(method)
    return mediated
