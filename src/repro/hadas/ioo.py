"""The IOO — InterOperability Object: one logical HADAS site.

"Each logical 'site' in HADAS is represented as an InterOperability
Object (IOO). This object serves as a container of both a collection of
components and of multi-site InterOperability Programs, and as a primary
contact point for other IOOs for components interaction." (Section 5,
Figure 2.)

State, per the paper:

* **Home** — the APOs integrated at this site;
* **Vicinity** — IOO Ambassadors of remote IOOs with which a cooperation
  agreement (Link) has been established;
* **Interop** — coordination-level programs, realized as portable
  methods in the IOO object's extensible section.

Protocol, per the paper:

* **Link** — prerequisite for any cooperation: a successful Link installs
  an Ambassador of the *linked* IOO in the Vicinity of the IOO whose Link
  was invoked;
* **Import/Export** — "An Import operation at the requesting IOO is
  handled by an Export operation at the receiving IOO. Export verifies
  that the requested APO is accessible to the requesting IOO, instantiates
  the proper APO Ambassador object, and sends it to the requesting IOO.
  When the Ambassador arrives (as data) the importing IOO unpacks it,
  passes to it an installation context and invokes the Ambassador, which
  in turn installs itself in the new environment."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..core.acl import allow_all, owner_only
from ..core.errors import MROMError, PolicyViolationError
from ..core.mobject import MROMObject
from ..mobility.package import pack
from ..mobility.transfer import MobilityManager
from ..net.site import Site
from ..net.transport import Message
from .ambassador import build_ioo_ambassador
from .apo import APO

__all__ = ["IOO", "VicinityEntry", "LinkError", "ExportError"]

KIND_LINK = "hadas.link"
KIND_IMPORT = "hadas.import"


class LinkError(MROMError):
    """A Link handshake was refused or malformed."""


class ExportError(MROMError):
    """An Import request could not be served by Export."""


@dataclass
class VicinityEntry:
    """One cooperation agreement: the peer and its installed Ambassador."""

    site: str
    domain: str
    ioo_guid: str
    ambassador: MROMObject  # installed locally, owned by the peer


class IOO:
    """One HADAS site: Home + Vicinity + Interop over an MROM object."""

    def __init__(
        self,
        site: Site,
        mobility: MobilityManager | None = None,
        accept_links_from: Iterable[str] = (),
    ):
        self.site = site
        self.mobility = mobility if mobility is not None else MobilityManager(site)
        #: site ids / domain prefixes we accept Link requests from
        #: (empty = accept anyone).
        self.accept_links_from = tuple(accept_links_from)

        self.obj = site.create_object(
            display_name=f"IOO:{site.site_id}",
            owner=site.principal,
            extensible_meta=True,
            meta_acl=owner_only(site.principal),
        )
        self.obj.define_fixed_data("site", site.site_id)
        self.obj.define_fixed_data("domain", site.domain)
        self.obj.define_fixed_data("imports", {})
        self.obj.seal()
        site.register_object(self.obj, name="ioo")

        self.home: dict[str, APO] = {}
        self.vicinity: dict[str, VicinityEntry] = {}
        self.imports: dict[str, MROMObject] = {}  # local name -> installed amb

        site.add_handler(KIND_LINK, self._handle_link)
        site.add_handler(KIND_IMPORT, self._handle_import)

    @property
    def guid(self) -> str:
        return self.obj.guid

    # ------------------------------------------------------------------
    # (i) Integration: the Home container
    # ------------------------------------------------------------------

    def integrate(
        self,
        name: str,
        app: Any,
        operations: Mapping[str, Any] | None = None,
        doc: str = "",
        allowed_importers: Iterable[str] = (),
    ) -> APO:
        """Integrate a pre-existing component as an APO in Home."""
        if name in self.home:
            raise MROMError(f"APO {name!r} already integrated at {self.site.site_id}")
        apo = APO(
            self.site, name, app, doc=doc, allowed_importers=allowed_importers
        )
        if operations:
            apo.expose_mapping(operations)
        self.home[name] = apo
        return apo

    def apo(self, name: str) -> APO:
        try:
            return self.home[name]
        except KeyError:
            raise MROMError(f"no APO {name!r} at {self.site.site_id}") from None

    # ------------------------------------------------------------------
    # (iii) Configuration: Link and the Vicinity container
    # ------------------------------------------------------------------

    def link(self, remote_site: str) -> VicinityEntry:
        """Establish a cooperation agreement with the IOO at *remote_site*.

        On success, an Ambassador of the remote IOO is installed in *our*
        Vicinity (the paper's direction: Link is invoked here, the peer's
        Ambassador lands here).
        """
        if remote_site in self.vicinity:
            return self.vicinity[remote_site]
        reply = self.site.request(
            remote_site,
            KIND_LINK,
            {"from_site": self.site.site_id, "from_domain": self.site.domain},
        )
        if not isinstance(reply, Mapping) or "ambassador_package" not in reply:
            raise LinkError(f"malformed link reply from {remote_site!r}")
        report = self.mobility.install_package(
            dict(reply["ambassador_package"]), src=remote_site
        )
        ambassador = self.site.local_object(str(report["guid"]))
        entry = VicinityEntry(
            site=remote_site,
            domain=str(reply.get("domain", "")),
            ioo_guid=str(reply.get("ioo_guid", "")),
            ambassador=ambassador,
        )
        self.vicinity[remote_site] = entry
        return entry

    def _handle_link(self, message: Message) -> dict:
        body = message.payload
        from_site = str(body.get("from_site", message.src))
        from_domain = str(body.get("from_domain", ""))
        self._check_link_policy(from_site, from_domain)
        ambassador = build_ioo_ambassador(self.obj, self.site)
        return {
            "ioo_guid": self.obj.guid,
            "domain": self.site.domain,
            "ambassador_package": pack(ambassador),
        }

    def _check_link_policy(self, from_site: str, from_domain: str) -> None:
        if not self.accept_links_from:
            return
        for allowed in self.accept_links_from:
            if from_site == allowed:
                return
            own = from_domain.split(".") if from_domain else []
            if own[: len(allowed.split("."))] == allowed.split("."):
                return
        raise PolicyViolationError(
            f"{self.site.site_id} does not accept links from {from_site!r}"
        )

    def linked_sites(self) -> tuple[str, ...]:
        return tuple(sorted(self.vicinity))

    # ------------------------------------------------------------------
    # Import / Export
    # ------------------------------------------------------------------

    def import_apo(
        self,
        remote_site: str,
        apo_name: str,
        local_name: str | None = None,
        forward: Sequence[str] | None = None,
    ) -> MROMObject:
        """Import an APO Ambassador from a linked remote IOO.

        "This operation is a prerequisite for any further cooperation
        between the two IOOs" — so an Import without a prior Link fails.
        """
        if remote_site not in self.vicinity:
            raise LinkError(
                f"{self.site.site_id} is not linked to {remote_site!r}; "
                "Link first"
            )
        local_name = local_name or apo_name
        if local_name in self.imports:
            raise MROMError(f"import name {local_name!r} already in use")
        reply = self.site.request(
            remote_site,
            KIND_IMPORT,
            {
                "apo": apo_name,
                "from_site": self.site.site_id,
                "from_domain": self.site.domain,
                "forward": list(forward) if forward is not None else None,
            },
        )
        if not isinstance(reply, Mapping) or "package" not in reply:
            raise ExportError(f"malformed export reply from {remote_site!r}")
        # "the importing IOO unpacks it, passes to it an installation
        # context and invokes the Ambassador, which in turn installs
        # itself in the new environment" — install_package does exactly
        # this (admission policy included).
        report = self.mobility.install_package(
            dict(reply["package"]), src=remote_site
        )
        ambassador = self.site.local_object(str(report["guid"]))
        self.imports[local_name] = ambassador
        registry = dict(self.obj.get_data("imports", caller=self.site.principal))
        registry[local_name] = ambassador
        self.obj.set_data("imports", registry, caller=self.site.principal)
        return ambassador

    def _handle_import(self, message: Message) -> dict:
        """The Export side: verify access, instantiate, send as data."""
        body = message.payload
        apo_name = str(body.get("apo", ""))
        from_site = str(body.get("from_site", message.src))
        from_domain = str(body.get("from_domain", ""))
        apo = self.home.get(apo_name)
        if apo is None:
            raise ExportError(
                f"{self.site.site_id} has no APO named {apo_name!r}"
            )
        apo.check_exportable(from_site, from_domain)
        forward = body.get("forward")
        ambassador = apo.make_ambassador(
            forward=list(forward) if isinstance(forward, list) else None
        )
        package = pack(ambassador)
        # the origin remembers its deployed Ambassadors so it can update
        # them later (they settle at the requester's site)
        apo.note_deployed(
            self.site.ref_to(ambassador.guid, site=from_site)
        )
        return {"package": package, "origin_apo": apo.guid}

    def imported(self, local_name: str) -> MROMObject:
        try:
            return self.imports[local_name]
        except KeyError:
            raise MROMError(
                f"nothing imported as {local_name!r} at {self.site.site_id}"
            ) from None

    # ------------------------------------------------------------------
    # (iv) Coordination: interoperability programs
    # ------------------------------------------------------------------

    def add_program(self, name: str, source: str, doc: str = "") -> None:
        """Install a coordination-level program in the Interop container.

        The program is a portable method on the IOO object; it sees the
        imported Ambassadors through the IOO's ``imports`` data item and
        coordinates control- and data-flow across them.
        """
        self.obj.self_view().add_method(
            name,
            source,
            {
                "acl": allow_all().describe(),
                "metadata": {"doc": doc, "tags": ["interop-program"]},
            },
        )

    def add_program_mpl(self, member_source: str, doc: str = "") -> str:
        """Install a coordination program written in MPL.

        *member_source* is one MPL ``method`` declaration, e.g.::

            method avg_salary() {
              let db = imports["employees"]
              return db.payroll_total() / db.headcount()
            }

        Inside the program, ``imports`` is the IOO's import table (a data
        item), and method calls on its entries are MROM invocations on
        the installed Ambassadors. ``requires``/``ensures`` clauses become
        pre-/post-procedures. Returns the installed program's name.
        """
        from ..lang.compiler import compile_member_source

        compiled = compile_member_source(
            member_source, data_names=frozenset({"imports", "site", "domain"})
        )
        properties: dict = {
            "acl": allow_all().describe(),
            "metadata": {"doc": doc, "tags": ["interop-program"], "mpl": True},
        }
        if compiled.pre_source is not None:
            properties["pre"] = compiled.pre_source
        if compiled.post_source is not None:
            properties["post"] = compiled.post_source
        self.obj.self_view().add_method(
            compiled.name, compiled.body_source, properties
        )
        return compiled.name

    def run_program(self, name: str, args: Sequence[Any] = (), caller=None) -> Any:
        return self.obj.invoke(
            name, list(args), caller=caller if caller is not None else self.site.principal
        )

    def programs(self) -> list[str]:
        return [
            item.name
            for item in self.obj.containers.ext_methods
            if "interop-program" in item.metadata.get("tags", [])
        ]

    def __repr__(self) -> str:
        return (
            f"IOO({self.site.site_id!r}: home={sorted(self.home)}, "
            f"vicinity={sorted(self.vicinity)}, imports={sorted(self.imports)})"
        )
