"""Ambassadors: the mobile objects of HADAS.

"An Ambassador is an object that has been instantiated in the origin APO
and has been deployed in a 'foreign (IOO) territory', but is owned and
maintained by its origin APO. Each Ambassador thus has exactly one origin
and is hosted by exactly one IOO." (Section 5.)

An APO Ambassador is a fully portable MROM object:

* fixed section — its identity: the ``origin`` reference (a remote proxy
  back to the APO facade), origin metadata, and the ``install`` method
  ("any behavior and state of the Ambassador that has to remain untouched
  in order to maintain its consistency is defined in the fixed section");
* extensible section — the service interface: *forwarding* methods that
  relay to the origin, *cached* data and *local* methods that answer at
  the hosting site (the dynamic APO/Ambassador functionality split);
* extensible meta-methods with an owner-only ACL — the origin updates the
  Ambassador; the host cannot (the security/encapsulation duality);
* ``extensible_meta=True`` so the origin may push new invocation
  semantics (a meta-invoke level), as in the database-shutdown example.

IOO Ambassadors are the smaller cousins installed in a Vicinity by Link:
they represent a remote IOO and know how to reach it.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence, TYPE_CHECKING

from ..core.acl import allow_all, owner_only
from ..core.mobject import MROMObject
from ..core.values import Kind

if TYPE_CHECKING:  # pragma: no cover
    from .apo import APO

__all__ = ["build_apo_ambassador", "build_ioo_ambassador", "FORWARD_TEMPLATE"]

#: The portable relay body: look up the origin proxy in our own state and
#: re-issue the invocation against it over the network.
FORWARD_TEMPLATE = (
    "origin = self.get('origin')\n"
    "return origin.invoke({operation!r}, list(args))"
)

_INSTALL_SOURCE = """\
context = self.env.get('install_context', {})
self.set('hosted_by', context.get('site', 'unknown'))
return ['installed', self.get('hosted_by')]
"""


def build_apo_ambassador(
    apo: "APO",
    forward: Sequence[str] = (),
    cached_data: Mapping[str, Any] | None = None,
    local_methods: Mapping[str, str] | None = None,
) -> MROMObject:
    """Instantiate an Ambassador at its origin APO (not yet deployed)."""
    site = apo.site
    ambassador = site.create_object(
        display_name=f"amb:{apo.name}",
        owner=apo.principal,
        extensible_meta=True,
        meta_acl=owner_only(apo.principal),
    )
    # -- fixed: identity and consistency-critical behaviour ----------------
    ambassador.define_fixed_data(
        "origin",
        site.ref_to(apo.facade),
        kind=Kind.REFERENCE,
        metadata={"doc": "remote proxy back to the origin APO facade"},
    )
    ambassador.define_fixed_data("origin_apo", apo.name)
    ambassador.define_fixed_data("origin_site", site.site_id)
    ambassador.define_fixed_data("hosted_by", "nowhere")
    ambassador.define_fixed_method(
        "install",
        _INSTALL_SOURCE,
        metadata={"doc": "self-installation: reads the installation context"},
    )
    ambassador.define_fixed_method(
        "whoami",
        "return {'ambassador_of': self.get('origin_apo'),"
        " 'origin_site': self.get('origin_site'),"
        " 'hosted_by': self.get('hosted_by')}",
        metadata={"doc": "identity card", "tags": ["identity"]},
    )
    ambassador.seal()

    # -- extensible: the adjustable service interface -----------------------
    facade_methods = {
        item.name: item
        for item in apo.facade.containers.ext_methods
        if not item.metadata.get("meta")
    }
    for operation in forward:
        metadata = {"doc": f"forwarded to origin {apo.name}", "tags": ["forwarded"]}
        source_method = facade_methods.get(operation)
        if source_method is not None:
            # the Ambassador advertises the same signature and capability
            # tags as the origin operation it relays
            source_tags = list(source_method.metadata.get("tags", []))
            metadata.update(
                {
                    "doc": source_method.metadata.get("doc", metadata["doc"]),
                    "params": list(source_method.metadata.get("params", [])),
                    "returns": source_method.metadata.get("returns", "any"),
                    "tags": sorted({*source_tags, "forwarded"}),
                }
            )
        ambassador.self_view().add_method(
            operation,
            FORWARD_TEMPLATE.format(operation=operation),
            {"acl": allow_all().describe(), "metadata": metadata},
        )
    for name, value in (cached_data or {}).items():
        ambassador.self_view().add_data(
            name, value, {"metadata": {"tags": ["cached"]}}
        )
    for name, source in (local_methods or {}).items():
        ambassador.self_view().add_method(
            name,
            source,
            {
                "acl": allow_all().describe(),
                "metadata": {"doc": "answers locally at the hosting site",
                             "tags": ["local"]},
            },
        )
    return ambassador


def build_ioo_ambassador(ioo_obj: MROMObject, site) -> MROMObject:
    """An IOO Ambassador: installed in a peer's Vicinity by Link.

    Carries who it represents and a live proxy back to the represented
    IOO, so the hosting IOO can reach its peer through the Vicinity
    entry — "a primary contact point for other IOOs".
    """
    ambassador = site.create_object(
        display_name=f"ioo-amb:{site.site_id}",
        owner=ioo_obj.principal,
        extensible_meta=True,
        meta_acl=owner_only(ioo_obj.principal),
    )
    ambassador.define_fixed_data("represents_site", site.site_id)
    ambassador.define_fixed_data("represents_domain", site.domain)
    ambassador.define_fixed_data(
        "origin", site.ref_to(ioo_obj), kind=Kind.REFERENCE
    )
    ambassador.define_fixed_data("hosted_by", "nowhere")
    ambassador.define_fixed_method("install", _INSTALL_SOURCE)
    ambassador.define_fixed_method(
        "info",
        "return {'site': self.get('represents_site'),"
        " 'domain': self.get('represents_domain')}",
    )
    ambassador.seal()
    return ambassador
