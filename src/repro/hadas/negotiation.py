"""Interface negotiation: adjusting a newcomer to the host's expectations.

Two threads of the paper meet here:

* "Mutability is necessary to enable objects to *adjust* to the new
  context under which they are intended to operate ... particularly
  important ... when some negotiation is needed in order to create the
  initial interaction" (Section 1);
* the HADAS methodology of placing "interface-related functionality in
  the extensible section, which then can be adjusted to the interface
  requirements of the object with which it interacts" (Section 3).

The protocol implemented:

1. the host states its expectations as :class:`InterfaceRequirement`
   records (name, arity, tags);
2. the newcomer is **interrogated** (self-representation) — requirements
   matched by name and arity are satisfied as-is;
3. unsatisfied requirements are matched against the newcomer's methods
   by *capability tags*; each tag-match is bridged by adding an **alias
   adapter** (a portable forwarding method) to the newcomer's extensible
   section — the adjustment the paper describes, performed through the
   ordinary meta-methods by a principal the object's ACLs admit;
4. whatever remains is reported unsatisfiable; the host decides whether
   to admit the object anyway.

Adapters are honest extensible items: interrogating the object afterwards
shows them, and the origin can delete them again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.acl import Principal, allow_all
from ..core.errors import PolicyViolationError
from ..core.introspection import interrogate
from ..core.mobject import MROMObject

__all__ = ["InterfaceRequirement", "NegotiationReport", "negotiate"]


@dataclass(frozen=True)
class InterfaceRequirement:
    """One operation the host expects to be able to invoke."""

    name: str
    arity: int | None = None  # None = any arity
    tags: tuple[str, ...] = ()  # capability tags acceptable as substitutes

    def matches_signature(self, signature: dict) -> bool:
        """Does an interrogation signature satisfy this requirement as-is?"""
        if self.arity is None:
            return True
        params = signature.get("params", [])
        # objects that do not declare params are weakly typed: accept
        return not params or len(params) == self.arity

    def matches_tags(self, signature: dict) -> bool:
        if not self.tags:
            return False
        return bool(set(self.tags) & set(signature.get("tags", [])))


@dataclass
class NegotiationReport:
    """The outcome of one negotiation."""

    satisfied: list[str] = field(default_factory=list)
    adapted: dict[str, str] = field(default_factory=dict)  # required -> actual
    unsatisfiable: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.unsatisfiable

    def summary(self) -> str:
        parts = []
        if self.satisfied:
            parts.append(f"satisfied: {', '.join(self.satisfied)}")
        if self.adapted:
            bridges = ", ".join(f"{k}->{v}" for k, v in self.adapted.items())
            parts.append(f"adapted: {bridges}")
        if self.unsatisfiable:
            parts.append(f"unsatisfiable: {', '.join(self.unsatisfiable)}")
        return "; ".join(parts) or "nothing required"


_ALIAS_TEMPLATE = (
    "return self.call({target!r}, *args)"
)


def negotiate(
    newcomer: MROMObject,
    requirements: Sequence[InterfaceRequirement],
    host: Principal,
    updater: Principal | None = None,
    strict: bool = False,
) -> NegotiationReport:
    """Adjust *newcomer* to the host's required interface.

    *host* is the principal that will later invoke the object (used for
    interrogation — only methods it may invoke count). *updater* is the
    principal performing the adaptation (must be admitted by the
    newcomer's ``addMethod`` ACL — typically the object's owner, or the
    object itself when it exposes an adapt-yourself method). Defaults to
    the newcomer's owner.

    With *strict*, an incomplete negotiation raises
    :class:`PolicyViolationError` instead of returning a report.
    """
    updater = updater if updater is not None else newcomer.owner
    report = NegotiationReport()
    protocol = interrogate(newcomer, viewer=host)
    for requirement in requirements:
        signature = protocol.get(requirement.name)
        if signature is not None and requirement.matches_signature(signature):
            report.satisfied.append(requirement.name)
            continue
        substitute = _find_substitute(requirement, protocol)
        if substitute is not None:
            _add_alias(newcomer, requirement.name, substitute, updater)
            report.adapted[requirement.name] = substitute
            continue
        report.unsatisfiable.append(requirement.name)
    if strict and not report.complete:
        raise PolicyViolationError(
            f"negotiation failed for {newcomer.guid}: {report.summary()}"
        )
    return report


def _find_substitute(
    requirement: InterfaceRequirement, protocol: dict
) -> str | None:
    candidates = [
        name
        for name, signature in protocol.items()
        if not signature.get("meta")
        and requirement.matches_tags(signature)
        and requirement.matches_signature(signature)
    ]
    return sorted(candidates)[0] if candidates else None


def _add_alias(
    obj: MROMObject, alias: str, target: str, updater: Principal
) -> None:
    obj.invoke(
        "addMethod",
        [
            alias,
            _ALIAS_TEMPLATE.format(target=target),
            {
                "acl": allow_all().describe(),
                "metadata": {
                    "doc": f"negotiation adapter forwarding to {target!r}",
                    "tags": ["adapter"],
                    "adapts": target,
                },
            },
        ],
        caller=updater,
    )
