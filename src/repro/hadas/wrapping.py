"""Tool integration via wrapping: pre/post procedures in practice.

"Wrapping refers to support for adjusting and/or integrating a
computational object into the (new) environment under which it operates
... To facilitate wrapping, each method can be wrapped with pre- and
post-procedures, which are called before and after the invocation of the
body of the method" (Section 3.1). The paper names software-engineering
environments (Oz, FIELD) and workflow systems as the domains where this
is routine.

These helpers apply the pattern to HADAS components:

* :func:`attach_assertions` — contract-style pre/post on an extensible
  method (the paper cites class assertions in C++ as the model);
* :func:`attach_preparation` — an environment-preparation step that runs
  before the body and can veto it (the paper's example: generating and
  installing a CORBA stub before first use);
* :func:`attach_usage_meter` — a post-procedure counting completed calls
  into a data item (the observable side of the "charging" idea).
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.code import CodeRole, NativeCode
from ..core.mobject import MROMObject

__all__ = ["attach_assertions", "attach_preparation", "attach_usage_meter"]


def _set_wrapper(obj: MROMObject, method: str, role: str, component: Any) -> None:
    """Attach one wrapper through the meta-machinery (owner-privileged)."""
    view = obj.self_view()
    _description, handle = view.call("getMethod", method)
    view.call("setMethod", handle, {role: component})


def attach_assertions(
    obj: MROMObject,
    method: str,
    pre_source: str | None = None,
    post_source: str | None = None,
) -> None:
    """Contract-style assertions on an extensible method.

    *pre_source*/*post_source* are portable procedure bodies (``self,
    args, ctx`` / ``self, args, result, ctx``) returning a boolean.
    """
    if pre_source is not None:
        _set_wrapper(obj, method, "pre", pre_source)
    if post_source is not None:
        _set_wrapper(obj, method, "post", post_source)


def attach_preparation(
    obj: MROMObject,
    method: str,
    prepare: Callable[[], bool],
    once: bool = True,
) -> None:
    """Run a host-side preparation step before the method body.

    *prepare* is a native callable (it touches the host environment —
    compiling a stub, spawning a tool); returning False vetoes the call.
    With *once* set, the preparation runs on the first invocation only.
    """
    state = {"done": False}

    def pre(self_view, args, ctx) -> bool:
        if once and state["done"]:
            return True
        approved = bool(prepare())
        state["done"] = approved
        return approved

    _set_wrapper(obj, method, "pre", NativeCode(pre, role=CodeRole.PRE, label=f"{method}.prepare"))


def attach_usage_meter(
    obj: MROMObject, method: str, counter_item: str = "usage"
) -> None:
    """Count completed invocations of *method* in a data item.

    The counter is created (extensible) if missing; the post-procedure
    increments it and never fails the call.
    """
    if not obj.containers.has_data(counter_item):
        obj.self_view().add_data(counter_item, 0)
    post_source = (
        f"self.set({counter_item!r}, self.get({counter_item!r}) + 1)\n"
        "return True"
    )
    _set_wrapper(obj, method, "post", post_source)
