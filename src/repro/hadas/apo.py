"""APOs — APplication Objects: legacy applications as MROM citizens.

"*Home*: A container whose data-items are APplication Objects (APOs)
that encapsulate real applications, both legacy and native-HADAS."
(Section 5.) An :class:`APO` wraps a plain Python application behind an
MROM facade:

* the facade's *fixed* section carries identity and administrative core;
* every exported operation lives in the *extensible* section — the
  paper's stated methodology ("place interface-related functionality in
  the extensible section, which then can be adjusted to the interface
  requirements of the object with which it interacts");
* the facade's methods are native code (APOs do not migrate — their
  *Ambassadors* do, see :mod:`repro.hadas.ambassador`).

The APO is also the **origin** of its Ambassadors: it mints them, deploys
them, remembers them, and is the only principal their meta-methods admit.
Dynamic updates — pushing methods, data, or a new invocation semantics to
every deployed Ambassador — go through :meth:`APO.broadcast`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.acl import AccessControlList, Principal, allow_all, owner_only
from ..core.errors import PolicyViolationError
from ..core.items import MROMMethod
from ..core.mobject import MROMObject
from ..net.rmi import RemoteRef
from ..net.site import Site

__all__ = ["APO"]


class APO:
    """One integrated application at one site."""

    def __init__(
        self,
        site: Site,
        name: str,
        app: Any,
        doc: str = "",
        allowed_importers: Iterable[str] = (),
    ):
        self.site = site
        self.name = name
        self.app = app
        #: site ids / trust-domain prefixes allowed to Import this APO's
        #: Ambassadors; empty means anyone.
        self.allowed_importers = tuple(allowed_importers)
        self.deployed: dict[str, RemoteRef] = {}  # ambassador guid -> ref
        self.facade = site.create_object(
            display_name=f"apo:{name}",
            owner=site.principal,
            extensible_meta=True,
            meta_acl=owner_only(site.principal),
        )
        self.facade.define_fixed_data(
            "application", name, metadata={"doc": doc or f"APO for {name}"}
        )
        self.facade.seal()
        site.register_object(self.facade, name=f"apos/{name}")

    @property
    def principal(self) -> Principal:
        """The APO's identity — the owner of all its Ambassadors."""
        return self.facade.principal

    @property
    def guid(self) -> str:
        return self.facade.guid

    # ------------------------------------------------------------------
    # integration: exposing application operations
    # ------------------------------------------------------------------

    def expose(
        self,
        operation: str,
        implementation: Callable[..., Any],
        doc: str = "",
        params: Sequence[Mapping] = (),
        returns: str = "any",
        tags: Sequence[str] = (),
        acl: AccessControlList | None = None,
    ) -> None:
        """Export one application operation through the facade.

        *implementation* receives the unpacked argument list; the facade
        method adapts the MROM calling convention to it.
        """

        def body(self_view, args, ctx):
            return implementation(*args)

        method = MROMMethod(
            operation,
            body,
            acl=acl if acl is not None else allow_all(),
            metadata={
                "doc": doc,
                "params": list(params),
                "returns": returns,
                "tags": list(tags) or ["service"],
                "apo": self.name,
            },
        )
        self.facade.containers.add_extensible(method)

    def expose_mapping(self, operations: Mapping[str, Callable]) -> None:
        """Bulk :meth:`expose` for simple cases."""
        for operation, implementation in operations.items():
            self.expose(operation, implementation)

    def invoke(self, operation: str, args: Sequence[Any] = (), caller=None) -> Any:
        """Local invocation of an exported operation."""
        return self.facade.invoke(operation, list(args), caller=caller)

    def operations(self) -> list[str]:
        return [
            item.name
            for item in self.facade.containers.ext_methods
            if not item.metadata.get("meta")
        ]

    # ------------------------------------------------------------------
    # export policy (checked by the owning IOO on Import requests)
    # ------------------------------------------------------------------

    def exportable_to(self, requester_site: str, requester_domain: str = "") -> bool:
        if not self.allowed_importers:
            return True
        for allowed in self.allowed_importers:
            if requester_site == allowed:
                return True
            if requester_domain:
                own = requester_domain.split(".")
                target = allowed.split(".")
                if own[: len(target)] == target:
                    return True
        return False

    def check_exportable(self, requester_site: str, requester_domain: str = "") -> None:
        if not self.exportable_to(requester_site, requester_domain):
            raise PolicyViolationError(
                f"APO {self.name!r} is not exportable to {requester_site!r}"
            )

    # ------------------------------------------------------------------
    # ambassadors: minting
    # ------------------------------------------------------------------

    def make_ambassador(
        self,
        forward: Sequence[str] | None = None,
        cached_data: Mapping[str, Any] | None = None,
        local_methods: Mapping[str, str] | None = None,
    ) -> MROMObject:
        """Instantiate an Ambassador of this APO (a portable object).

        *forward* — exported operations the Ambassador relays to the
        origin over the network (default: all of them);
        *cached_data* — data items replicated into the Ambassador so it
        can answer locally (the APO→Ambassador functionality split);
        *local_methods* — portable method sources that run entirely at
        the hosting site (the other half of the split).

        The Ambassador's meta-methods admit only this APO: "its
        meta-methods should be invisible to the host IOO ... and should
        not be invoked by that IOO".
        """
        from .ambassador import build_apo_ambassador  # local import: cycle

        ambassador = build_apo_ambassador(
            self,
            forward=list(forward) if forward is not None else self.operations(),
            cached_data=dict(cached_data or {}),
            local_methods=dict(local_methods or {}),
        )
        return ambassador

    def note_deployed(self, ref: RemoteRef) -> None:
        self.deployed[ref.guid] = ref

    # ------------------------------------------------------------------
    # dynamic update of deployed ambassadors (the Section 5 scenario)
    # ------------------------------------------------------------------

    def broadcast(self, action: Callable[[RemoteRef], Any]) -> list[Any]:
        """Apply *action* to every deployed Ambassador; returns results."""
        return [action(ref) for ref in self.deployed.values()]

    def broadcast_add_method(self, name: str, source: str, acl=None) -> int:
        """Push a new (portable) method to every deployed Ambassador —
        "updates in APO's functionality can be done dynamically without
        interference with ongoing computations"."""
        properties = {"acl": (acl or allow_all()).describe()}
        self.broadcast(
            lambda ref: ref.invoke(
                "addMethod", [name, source, properties], caller=self.principal
            )
        )
        return len(self.deployed)

    def broadcast_add_data(self, name: str, value: Any) -> int:
        self.broadcast(
            lambda ref: ref.invoke(
                "addDataItem", [name, value], caller=self.principal
            )
        )
        return len(self.deployed)

    def broadcast_maintenance(self, notice: str) -> int:
        """The paper's database-shutdown example: swap every deployed
        Ambassador's invocation semantics so that all queries are answered
        with *notice* — while the origin (owner) still passes through and
        can later lift the notice."""
        body = (
            "if ctx.caller.guid == self.owner_guid:\n"
            "    return ctx.proceed()\n"
            f"return {notice!r}"
        )
        properties = {"acl": allow_all().describe()}
        self.broadcast(
            lambda ref: ref.invoke(
                "addMethod", ["invoke", body, properties], caller=self.principal
            )
        )
        return len(self.deployed)

    def broadcast_lift_maintenance(self) -> int:
        """Pop the maintenance level from every deployed Ambassador."""
        self.broadcast(
            lambda ref: ref.invoke("deleteMethod", ["invoke"], caller=self.principal)
        )
        return len(self.deployed)

    def __repr__(self) -> str:
        return (
            f"APO({self.name!r} @ {self.site.site_id}, "
            f"{len(self.operations())} ops, {len(self.deployed)} ambassadors)"
        )
