"""Rolling interface updates for deployed Ambassador fleets.

"updates in APO's functionality can be done dynamically without
interference with ongoing computations that need the APO, by adding
methods and data items to the APO and its Ambassador on the fly. Such
dynamic update is possible, of course, only in the extensible sections."
(Section 5.)

:class:`InterfaceRevision` is a declarative update plan — methods and
data to add, replace, or remove in an Ambassador's extensible section —
with a monotonically increasing revision number. :class:`FleetUpdater`
applies revisions to every deployed Ambassador of an APO:

* changes travel through the ordinary meta-methods, as the origin
  principal (the only one the Ambassadors admit);
* per Ambassador, a revision is **all-or-nothing**: if any change fails
  midway, the already-applied changes are compensated with inverse
  operations (the sources needed for undo come from the META-privileged
  ``getMethod`` description), and the Ambassador stays at its previous
  revision;
* the fleet rollout is **per-Ambassador isolated**: one failing
  Ambassador (e.g. unreachable behind a partition) does not stop the
  rest; the report records who ended up at which revision;
* revisions apply **in order**: an Ambassador at revision *n* only
  accepts revision *n+1*, so a rollout retried after a partial failure
  converges instead of skipping steps.

The Ambassador's current revision lives in its own extensible data item
``interface_revision`` — self-describing, like everything else about it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.acl import allow_all
from ..core.errors import MROMError
from ..net.rmi import RemoteRef
from .apo import APO

__all__ = ["InterfaceRevision", "UpdateReport", "FleetUpdater", "REVISION_ITEM"]

REVISION_ITEM = "interface_revision"


@dataclass(frozen=True)
class InterfaceRevision:
    """One declarative update to an Ambassador's extensible interface."""

    number: int
    add_methods: Mapping[str, str] = field(default_factory=dict)  # name -> source
    replace_methods: Mapping[str, str] = field(default_factory=dict)
    remove_methods: tuple = ()
    add_data: Mapping[str, Any] = field(default_factory=dict)
    remove_data: tuple = ()

    def __post_init__(self):
        if self.number < 1:
            raise MROMError("revision numbers start at 1")
        overlap = set(self.add_methods) & set(self.replace_methods)
        if overlap:
            raise MROMError(f"methods both added and replaced: {sorted(overlap)}")


@dataclass
class UpdateReport:
    """Fleet-wide outcome of one revision rollout."""

    revision: int
    updated: list[str] = field(default_factory=list)  # ambassador guids
    skipped: list[tuple[str, str]] = field(default_factory=list)  # (guid, why)
    failed: list[tuple[str, str]] = field(default_factory=list)  # (guid, error)

    @property
    def clean(self) -> bool:
        return not self.failed


class FleetUpdater:
    """Applies revisions to every deployed Ambassador of one APO."""

    def __init__(self, apo: APO):
        self.apo = apo

    # ------------------------------------------------------------------
    # fleet level
    # ------------------------------------------------------------------

    def rollout(self, revision: InterfaceRevision) -> UpdateReport:
        report = UpdateReport(revision=revision.number)
        for guid, ref in self.apo.deployed.items():
            try:
                current = self.revision_of(ref)
            except MROMError as exc:
                report.failed.append((guid, f"unreachable: {exc}"))
                continue
            if current >= revision.number:
                report.skipped.append((guid, f"already at r{current}"))
                continue
            if current != revision.number - 1:
                report.skipped.append(
                    (guid, f"at r{current}, needs r{revision.number - 1} first")
                )
                continue
            try:
                self.apply_one(ref, revision)
            except MROMError as exc:
                report.failed.append((guid, str(exc)))
                continue
            report.updated.append(guid)
        return report

    def revision_of(self, ref: RemoteRef) -> int:
        """The Ambassador's current revision (0 = never updated)."""
        caller = self.apo.principal
        try:
            return int(ref.get_data(REVISION_ITEM, caller=caller))
        except MROMError as exc:
            if _is_missing_item(exc):
                return 0
            raise

    # ------------------------------------------------------------------
    # single ambassador, all-or-nothing
    # ------------------------------------------------------------------

    def apply_one(self, ref: RemoteRef, revision: InterfaceRevision) -> None:
        """Apply one revision to one Ambassador, compensating on failure."""
        caller = self.apo.principal
        undo: list[tuple] = []  # inverse operations, applied in reverse
        try:
            for name, source in revision.add_methods.items():
                ref.invoke(
                    "addMethod",
                    [name, source, {"acl": allow_all().describe(),
                                    "metadata": {"revision": revision.number}}],
                    caller=caller,
                )
                undo.append(("deleteMethod", [name]))
            for name, source in revision.replace_methods.items():
                description, handle = ref.invoke("getMethod", [name], caller=caller)
                old_source = _body_source(description, name)
                ref.invoke("setMethod", [handle, {"body": source}], caller=caller)
                undo.append(("restore-body", [name, old_source]))
            for name in revision.remove_methods:
                description, _handle = ref.invoke("getMethod", [name], caller=caller)
                old_source = _body_source(description, name)
                ref.invoke("deleteMethod", [name], caller=caller)
                undo.append(
                    ("addMethod",
                     [name, old_source, {"acl": dict(description.get("acl", {}))}])
                )
            for name, value in revision.add_data.items():
                ref.invoke("addDataItem", [name, value], caller=caller)
                undo.append(("deleteDataItem", [name]))
            for name in revision.remove_data:
                old_value = ref.get_data(name, caller=caller)
                ref.invoke("deleteDataItem", [name], caller=caller)
                undo.append(("addDataItem", [name, old_value]))
            self._set_revision(ref, revision.number, undo)
        except MROMError as failure:
            self._compensate(ref, undo)
            raise MROMError(
                f"revision r{revision.number} failed on {ref.guid}: {failure}"
            ) from failure

    def _set_revision(self, ref: RemoteRef, number: int, undo: list) -> None:
        caller = self.apo.principal
        if self.revision_of(ref) == 0 and number == 1:
            ref.invoke("addDataItem", [REVISION_ITEM, number], caller=caller)
            undo.append(("deleteDataItem", [REVISION_ITEM]))
            return
        # value change via delete+add (both owner-only meta operations)
        previous = self.revision_of(ref)
        ref.invoke("deleteDataItem", [REVISION_ITEM], caller=caller)
        ref.invoke("addDataItem", [REVISION_ITEM, number], caller=caller)
        undo.append(("reset-revision", [previous]))

    def _compensate(self, ref: RemoteRef, undo: list) -> None:
        caller = self.apo.principal
        for operation, args in reversed(undo):
            try:
                if operation == "restore-body":
                    name, old_source = args
                    _description, handle = ref.invoke(
                        "getMethod", [name], caller=caller
                    )
                    ref.invoke(
                        "setMethod", [handle, {"body": old_source}], caller=caller
                    )
                elif operation == "reset-revision":
                    (previous,) = args
                    ref.invoke("deleteDataItem", [REVISION_ITEM], caller=caller)
                    ref.invoke(
                        "addDataItem", [REVISION_ITEM, previous], caller=caller
                    )
                else:
                    ref.invoke(operation, args, caller=caller)
            except MROMError:  # pragma: no cover - best effort
                continue


def _body_source(description: Mapping, name: str) -> str:
    """The portable body source from a META-privileged description."""
    components = description.get("components")
    if not isinstance(components, Mapping) or "body" not in components:
        raise MROMError(
            f"method {name!r} carries no portable source; cannot plan undo"
        )
    return str(components["body"]["source"])


def _is_missing_item(exc: MROMError) -> bool:
    remote_type = getattr(exc, "remote_type", "")
    return "NotFound" in remote_type or "NotFound" in type(exc).__name__
