"""The site journal: what a host writes ahead so a restart loses nothing.

A :class:`SiteJournal` binds one :class:`~repro.net.site.Site` to one
:class:`~.wal.WriteAheadLog` and translates the site's observable
transitions into WAL records *before* their effects reach the wire:

* ``object.image`` on registration (and inside every served mutating
  invoke — the post-execution image rides in the same frame as the
  recorded reply, so a replayed reply and the state that produced it
  are durable together: zero lost updates);
* ``object.remove`` on unregistration (a move's commit);
* ``served.reply`` from the request-dedup ledger, upholding the
  record-before-reply discipline across restarts: a retry that lands on
  the next incarnation replays the recorded outcome instead of
  re-executing the handler (zero lost replies);
* ``transfer.intent`` *before* a PREPARE leaves the sender, and
  ``transfer.resolved`` once its verdict is known — the write-ahead
  half of crash-safe exactly-once migration (a dangling intent is
  re-resolved via ``transfer.query`` after restart);
* ``transfer.ledger`` for every receiver-side settle/abort, so a
  restarted receiver still suppresses duplicate PREPAREs and still
  vetoes late ones.

Failure policy is **fail-safe, not fail-stop**: if the store refuses a
write (full, closed, broken), the journal marks itself ``failed``,
emits a ``wal.failed`` telemetry event, and goes quiet — the site keeps
serving without durability rather than taking the service down with the
disk. ``close()`` models the crash instant itself: a fail-stopped
incarnation writes nothing more, ever.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.errors import MROMError
from ..mobility.package import pack
from ..net.site import Site
from ..telemetry import state as _telemetry
from .wal import WriteAheadLog

__all__ = ["SiteJournal", "attach_journal"]


class SiteJournal:
    """The durability plane of one site incarnation (see module doc)."""

    def __init__(self, site: Site, wal: WriteAheadLog):
        self.site = site
        self.wal = wal
        self.failed = False
        self.closed = False
        self.writes = 0
        self.skipped_unportable = 0
        site.journal = self

    # -- plumbing ----------------------------------------------------------

    def _write(self, kind: str, attrs: Mapping[str, Any]) -> None:
        if self.closed or self.failed:
            return
        try:
            self.wal.append(
                kind, attrs, site=self.site.site_id,
                time=self.site.network.now,
            )
        except MROMError as exc:
            # fail-safe: losing the disk must not lose the service
            self.failed = True
            tel = _telemetry.ACTIVE
            if tel is not None:
                tel.metrics.counter("wal.failures").inc()
                tel.events.emit(
                    "wal.failed", time=self.site.network.now,
                    site=self.site.site_id, kind=kind,
                    error=type(exc).__name__,
                )
        else:
            self.writes += 1

    def _image(self, obj) -> dict | None:
        try:
            return pack(obj, strip_native_wrappers=True)
        except MROMError:
            self.skipped_unportable += 1
            return None

    def close(self) -> None:
        """The crash instant: nothing after this reaches the log."""
        self.closed = True
        if self.site.journal is self:
            self.site.journal = None

    # -- site-side notes ---------------------------------------------------

    def note_register(self, obj) -> None:
        image = self._image(obj)
        if image is None:
            return  # native-code guests cannot be imaged; host rebuilds them
        self._write("object.image", {"guid": obj.guid, "package": image})

    def note_unregister(self, guid: str) -> None:
        self._write("object.remove", {"guid": guid})

    def note_served(
        self,
        kind: str,
        request_id: str,
        reply: Any,
        request_payload: Any,
    ) -> None:
        attrs: dict[str, Any] = {
            "kind": kind, "request_id": request_id, "reply": reply,
        }
        if kind == "invoke" and isinstance(request_payload, Mapping):
            # the reply and the state it produced, durable in one frame
            guid = str(request_payload.get("target", ""))
            if guid and self.site.has_object(guid):
                image = self._image(self.site.local_object(guid))
                if image is not None:
                    attrs["guid"] = guid
                    attrs["image"] = image
        if not request_id:
            # a legacy request (no retry policy, no dedup id): nothing to
            # replay to a retry, but the mutated state is still durable
            if "image" in attrs:
                self._write(
                    "object.image",
                    {"guid": attrs["guid"], "package": attrs["image"]},
                )
            return
        self._write("served.reply", attrs)

    # -- transfer-side notes -----------------------------------------------

    def note_intent(self, transfer_id: str, entry: Mapping[str, Any]) -> None:
        self._write(
            "transfer.intent",
            {"transfer_id": transfer_id, "entry": dict(entry)},
        )

    def note_resolved(self, transfer_id: str, outcome: str) -> None:
        self._write(
            "transfer.resolved",
            {"transfer_id": transfer_id, "outcome": outcome},
        )

    def note_ledger(
        self, transfer_id: str, state: str, report: Mapping | None
    ) -> None:
        attrs: dict[str, Any] = {
            "transfer_id": transfer_id,
            "state": state,
            "report": dict(report) if report is not None else None,
        }
        if state == "settled" and isinstance(report, Mapping):
            guid = str(report.get("guid", ""))
            if guid and self.site.has_object(guid):
                image = self._image(self.site.local_object(guid))
                if image is not None:
                    attrs["image"] = image
        self._write("transfer.ledger", attrs)

    # -- snapshots ---------------------------------------------------------

    def checkpoint(self, compact: bool = True):
        """Fold current observable state into one ``snapshot`` record.

        With ``compact=True`` (the default) the whole log is rewritten
        to that single record — recovery then replays one snapshot plus
        whatever the site journals afterwards.
        """
        site = self.site
        if self.closed or self.failed:
            return None
        objects: dict[str, dict] = {}
        for obj in site.objects():
            image = self._image(obj)
            if image is not None:
                objects[obj.guid] = image
        manager = site.mobility
        attrs: dict[str, Any] = {
            "objects": objects,
            "served": [
                [request_id, reply]
                for request_id, reply in site._served.items()
            ],
            "ledger": (
                [
                    [transfer_id, dict(entry)]
                    for transfer_id, entry in manager._ledger.items()
                ]
                if manager is not None else []
            ),
            "unresolved": (
                {
                    transfer_id: dict(entry)
                    for transfer_id, entry in manager.unresolved.items()
                }
                if manager is not None else {}
            ),
        }
        tel = _telemetry.ACTIVE
        span = None
        if tel is not None:
            span = tel.begin_span(
                "wal.checkpoint",
                attrs={"site": site.site_id, "objects": len(objects),
                       "compact": compact, "sim_time": site.network.now},
            )
        try:
            if compact:
                record = self.wal.compact(
                    attrs, site=site.site_id, time=site.network.now
                )
            else:
                record = self.wal.append(
                    "snapshot", attrs, site=site.site_id,
                    time=site.network.now,
                )
        except MROMError as exc:
            self.failed = True
            if tel is not None:
                tel.metrics.counter("wal.failures").inc()
                if span is not None:
                    span.set(error=type(exc).__name__)
                    tel.end_span(span, status="error")
            return None
        if span is not None:
            tel.end_span(span)
        self.writes += 1
        return record

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("failed" if self.failed else "live")
        return (
            f"SiteJournal({self.site.site_id!r}, {state}, "
            f"writes={self.writes})"
        )


def attach_journal(site: Site, wal: WriteAheadLog) -> SiteJournal:
    """Bind *wal* to *site* and journal the current registrations, so a
    freshly-attached journal starts from a complete picture."""
    journal = SiteJournal(site, wal)
    for obj in site.objects():
        journal.note_register(obj)
    return journal
