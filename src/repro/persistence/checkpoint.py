"""Site checkpointing: a host persists its guests and survives restarts.

The paper's bootstrap story made operational: the host allocates space
(the :class:`~repro.persistence.store.ObjectStore`), each portable object
writes itself, and after a restart the host's "bootstrap procedure"
restores every guest with identity, structure, behaviour, tower and
environment intact — the long-lived-persistent-mobile-object requirement
of Section 1.

Non-portable objects (host infrastructure built on native code) cannot be
imaged; :func:`checkpoint_site` records them as skipped rather than
failing the checkpoint — infrastructure is reconstructed by the host
program, guests are restored from disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import NotPortableError, PersistenceError
from ..core.items import DataItem
from ..mobility.package import portability_report
from ..net.site import Site
from ..telemetry import state as _telemetry
from .store import ObjectStore

__all__ = [
    "CheckpointReport",
    "checkpoint_site",
    "restore_site",
    "schedule_checkpoints",
]


@dataclass
class CheckpointReport:
    """What a checkpoint or restore actually covered."""

    saved: list[str] = field(default_factory=list)
    skipped_native: list[str] = field(default_factory=list)
    restored: list[str] = field(default_factory=list)
    failed: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failed


def checkpoint_site(site: Site, store: ObjectStore, keep: int = 3) -> CheckpointReport:
    """Persist every portable object registered at *site*."""
    tel = _telemetry.ACTIVE
    span = None
    if tel is not None:
        span = tel.begin_span(
            "checkpoint",
            attrs={"site": site.site_id, "sim_time": site.network.now},
        )
        tel.metrics.counter("checkpoints").inc()
    report = CheckpointReport()
    try:
        for obj in site.objects():
            if portability_report(obj, ignore_wrappers=True):
                report.skipped_native.append(obj.guid)
                if span is not None:
                    span.event("checkpoint.skip", guid=obj.guid,
                               reason="native")
                continue
            try:
                store.save(obj, keep=keep)
            except (PersistenceError, NotPortableError) as exc:
                report.failed.append((obj.guid, str(exc)))
                if span is not None:
                    span.event("checkpoint.fail", guid=obj.guid,
                               error=type(exc).__name__)
                continue
            report.saved.append(obj.guid)
            if span is not None:
                span.event("checkpoint.write", guid=obj.guid)
                tel.metrics.counter("checkpoint.objects").inc()
    finally:
        if span is not None:
            span.set(saved=len(report.saved), skipped=len(report.skipped_native),
                     failed=len(report.failed))
            tel.end_span(span, status="ok" if report.clean else "error")
    return report


def schedule_checkpoints(
    site: Site, store: ObjectStore, period: float, keep: int = 3
):
    """Checkpoint *site* every *period* simulated seconds, forever.

    The recurring event reschedules itself, so the site always has an
    image at most one period old — the standing posture a host needs for
    the crash-restart story (see :mod:`repro.faults`). Returns a zero-
    argument cancel function that stops future checkpoints.

    Two subtleties this schedule must survive:

    * a tick landing inside a crash window must *skip* the checkpoint
      but keep the period alive — an early version returned without
      rescheduling, permanently stranding the persistence plane the
      first time its site went down;
    * the pending event is cancelled through
      :meth:`~repro.sim.kernel.Simulator.cancel`, not just flagged, so
      ``Simulator.pending`` stays exact and ``run_until`` never stalls
      on a zombie checkpoint at the head of the queue (the same family
      as the cancelled-head deadline fix in the kernel).

    Each tick also re-resolves the site's *current* endpoint, so after
    a crash-restart the new incarnation gets checkpointed rather than
    the dead object the closure originally captured.
    """
    if period <= 0:
        raise PersistenceError(f"checkpoint period must be > 0, got {period}")
    network = site.network
    site_id = site.site_id
    simulator = network.simulator
    state: dict = {"live": True, "reports": [], "event": None}

    def tick() -> None:
        state["event"] = None
        if not state["live"]:
            return
        if network.is_live(site_id):
            target = network.endpoint(site_id)
            state["reports"].append(checkpoint_site(target, store, keep=keep))
        state["event"] = simulator.schedule(
            period, tick, label=f"checkpoint {site_id}"
        )

    state["event"] = simulator.schedule(
        period, tick, label=f"checkpoint {site_id}"
    )

    def cancel() -> None:
        state["live"] = False
        if state["event"] is not None:
            simulator.cancel(state["event"])
            state["event"] = None

    cancel.reports = state["reports"]  # type: ignore[attr-defined]
    return cancel


def _rebind_references(site: Site, obj) -> None:
    """Persisted images hold inert wire references; a restoring site
    turns them back into live proxies (or local objects), exactly as the
    transport does on message receipt."""
    for item, category, _section in obj.containers.iter_with_sections():
        if category == "data" and isinstance(item, DataItem):
            item.poke(site.import_value(item.peek()))
    obj.environment.update(site.import_value(dict(obj.environment)))


def restore_site(site: Site, store: ObjectStore) -> CheckpointReport:
    """The bootstrap procedure: restore every stored object into *site*.

    Objects already registered (the host re-created them before calling
    restore) are left alone; corrupt images are reported, not fatal.
    """
    report = CheckpointReport()
    for guid in store.guids():
        if site.has_object(guid):
            continue
        try:
            obj = store.load(guid)
        except PersistenceError as exc:
            report.failed.append((guid, str(exc)))
            continue
        _rebind_references(site, obj)
        site.register_object(obj)
        obj.environment["install_context"] = {
            "site": site.site_id,
            "domain": site.domain,
            "restored": True,
        }
        if obj.containers.has_method("install"):
            obj.invoke("install", [], caller=site.principal)
        report.restored.append(guid)
    return report
