"""Crash recovery: rebuild a site incarnation from its write-ahead log.

Replay is a fold over the record stream (snapshot first if one
survived compaction, then everything after it): the latest durable
image per object wins, removes erase, the served-reply ledger and the
receiver-side transfer ledger are reconstructed in order, and every
``transfer.intent`` without a matching ``transfer.resolved`` comes back
as an *unresolved* transfer on the new
:class:`~repro.mobility.transfer.MobilityManager` — the sender crashed
between PREPARE and COMMIT, and :meth:`~repro.mobility.transfer.
MobilityManager.reconcile` re-resolves it via ``transfer.query`` so the
object settles to exactly one owner.

Restoring an image deliberately does **not** re-invoke ``install``
(unlike :func:`~.checkpoint.restore_site`): WAL images are taken after
the install already ran, so running it again would double-apply its
effects. The environment gets a fresh ``install_context`` marked
``recovered`` instead.
"""

from __future__ import annotations

import time as _time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import MROMError
from ..mobility.package import unpack
from ..mobility.transfer import MobilityManager
from ..net.rmi import RetryPolicy
from ..net.site import Site
from ..net.transport import Network
from ..telemetry import state as _telemetry
from .wal import WalRecord, WriteAheadLog

__all__ = ["ReplayState", "RecoveryReport", "replay_records", "recover_site"]


@dataclass
class ReplayState:
    """The fold of a record stream: everything recovery reinstates."""

    images: "OrderedDict[str, dict]" = field(default_factory=OrderedDict)
    served: "OrderedDict[str, Any]" = field(default_factory=OrderedDict)
    ledger: "OrderedDict[str, dict]" = field(default_factory=OrderedDict)
    unresolved: dict[str, dict] = field(default_factory=dict)
    snapshot_used: bool = False
    records_replayed: int = 0
    unknown_kinds: int = 0


def replay_records(records: list[WalRecord]) -> ReplayState:
    """Fold *records* (in LSN order) into a :class:`ReplayState`."""
    state = ReplayState()
    for record in records:
        attrs = record.attrs
        kind = record.kind
        if kind == "snapshot":
            state.images = OrderedDict(attrs.get("objects") or {})
            state.served = OrderedDict(
                (str(request_id), reply)
                for request_id, reply in (attrs.get("served") or [])
            )
            state.ledger = OrderedDict(
                (str(transfer_id), dict(entry))
                for transfer_id, entry in (attrs.get("ledger") or [])
            )
            state.unresolved = {
                str(transfer_id): dict(entry)
                for transfer_id, entry in (attrs.get("unresolved") or {}).items()
            }
            state.snapshot_used = True
        elif kind == "object.image":
            state.images[str(attrs["guid"])] = attrs["package"]
        elif kind == "object.remove":
            state.images.pop(str(attrs["guid"]), None)
        elif kind == "served.reply":
            state.served[str(attrs["request_id"])] = attrs["reply"]
            image = attrs.get("image")
            if image is not None:
                state.images[str(attrs["guid"])] = image
        elif kind == "transfer.intent":
            state.unresolved[str(attrs["transfer_id"])] = dict(attrs["entry"])
        elif kind == "transfer.resolved":
            state.unresolved.pop(str(attrs["transfer_id"]), None)
        elif kind == "transfer.ledger":
            state.ledger[str(attrs["transfer_id"])] = {
                "state": str(attrs["state"]),
                "report": attrs.get("report"),
            }
            image = attrs.get("image")
            if image is not None:
                report = attrs.get("report") or {}
                guid = str(report.get("guid", ""))
                if guid:
                    state.images[guid] = image
        else:
            state.unknown_kinds += 1  # forward compatibility: skip, don't die
        state.records_replayed += 1
    return state


@dataclass
class RecoveryReport:
    """What one recovery actually reinstated (deterministic fields only
    in :meth:`to_mapping`; wall-clock timing stays an attribute)."""

    site_id: str
    records_replayed: int = 0
    objects_restored: int = 0
    objects_failed: int = 0
    served_restored: int = 0
    ledger_restored: int = 0
    unresolved_restored: int = 0
    snapshot_used: bool = False
    damage: str | None = None
    replay_seconds: float = 0.0

    def to_mapping(self) -> dict:
        return {
            "site_id": self.site_id,
            "records_replayed": self.records_replayed,
            "objects_restored": self.objects_restored,
            "objects_failed": self.objects_failed,
            "served_restored": self.served_restored,
            "ledger_restored": self.ledger_restored,
            "unresolved_restored": self.unresolved_restored,
            "snapshot_used": self.snapshot_used,
            "damage": self.damage,
        }


def recover_site(
    network: Network,
    site_id: str,
    wal: WriteAheadLog,
    domain: str = "",
    policy=None,
    retry_policy: RetryPolicy | None = None,
) -> tuple[Site, MobilityManager, RecoveryReport]:
    """Bring up a fresh incarnation of *site_id* from its WAL.

    Returns the new site, its mobility manager (pre-loaded with the
    durable transfer ledger and every dangling intent as an unresolved
    transfer), and a :class:`RecoveryReport`. The caller re-applies
    host configuration (admission limits, service delay, name bindings)
    and attaches a new journal — recovery itself journals nothing.
    """
    started = _time.perf_counter()
    records, damage = wal.replay()
    state = replay_records(records)

    site = Site(network, site_id, domain)
    manager = MobilityManager(site, policy=policy, retry_policy=retry_policy)
    report = RecoveryReport(
        site_id=site_id,
        records_replayed=state.records_replayed,
        snapshot_used=state.snapshot_used,
        damage=wal.repaired if wal.repaired is not None else damage,
    )

    tel = _telemetry.ACTIVE
    span = None
    if tel is not None:
        span = tel.begin_span(
            "recovery",
            attrs={"site": site_id, "records": state.records_replayed,
                   "sim_time": network.now},
        )
        tel.metrics.counter("recoveries").inc()

    try:
        for guid, package in state.images.items():
            try:
                obj = unpack(site.import_value(package))
                obj.fastpath_reset()  # caches never survive a restart
                site.register_object(obj)
                obj.environment["install_context"] = {
                    "site": site.site_id,
                    "domain": site.domain,
                    "recovered": True,
                }
            except MROMError:
                report.objects_failed += 1
                if span is not None:
                    span.event("recovery.image_failed", guid=guid)
                continue
            report.objects_restored += 1

        for request_id, reply in state.served.items():
            site._served[request_id] = reply
        while len(site._served) > site._served_cap:
            site._served.popitem(last=False)
        report.served_restored = len(site._served)

        for transfer_id, entry in state.ledger.items():
            manager._record(transfer_id, entry["state"], entry.get("report"))
        report.ledger_restored = len(manager._ledger)

        manager.unresolved.update(state.unresolved)
        report.unresolved_restored = len(manager.unresolved)
    finally:
        report.replay_seconds = _time.perf_counter() - started
        if span is not None:
            span.set(
                objects=report.objects_restored,
                served=report.served_restored,
                unresolved=report.unresolved_restored,
            )
            tel.end_span(span)
    return site, manager, report
