"""Pluggable frame stores: where the write-ahead log keeps its bytes.

One small interface — :class:`Store` — behind which the WAL neither
knows nor cares whether frames live in memory, in a length-prefixed
file, or in a sqlite table. A *frame* is an opaque byte string the WAL
hands down (checksum + marshalled record); the store's only contract is
ordered, append-only retention plus one atomic :meth:`Store.rewrite`
used by log compaction.

Three backends:

* :class:`MemoryStore` — a list; the default for simulated hosts and
  the property harnesses (fast, and "durable" across simulated crashes
  because the process survives them).
* :class:`FileStore` — ``MROMWAL1`` header then ``u32 length | frame``
  records, appended with flush-on-write and rewritten through a
  temporary file + ``os.replace`` (the same atomic-publish discipline
  as :class:`~repro.persistence.store.ObjectStore`). A tail whose
  declared length overruns the file marks the store ``truncated`` —
  the torn-tail case recovery must tolerate.
* :class:`SqliteStore` — stdlib :mod:`sqlite3`, one ``frames`` table
  ordered by an integer primary key.

Every backend takes an optional ``capacity_bytes``; an append past it
raises :class:`StoreFullError` so the journal's fail-safe path (disable
durability, keep serving) is exercisable in tests.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

from ..core.errors import PersistenceError

__all__ = [
    "Store",
    "StoreFullError",
    "MemoryStore",
    "FileStore",
    "SqliteStore",
    "make_store",
    "BACKENDS",
]

_FILE_HEADER = b"MROMWAL1\n"
_LEN = struct.Struct(">I")


class StoreFullError(PersistenceError):
    """The backend refused an append: its capacity is exhausted."""


class Store:
    """Ordered, append-only frame storage (see module docstring).

    ``truncated`` is set by :meth:`frames` when the backend detected a
    physically incomplete tail (only :class:`FileStore` can); the WAL
    reports it as replay damage.
    """

    truncated = False

    def __init__(self, capacity_bytes: int | None = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise PersistenceError(
                f"store capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.appends = 0

    def _admit(self, frame: bytes) -> None:
        if (
            self.capacity_bytes is not None
            and self.size_bytes() + len(frame) > self.capacity_bytes
        ):
            raise StoreFullError(
                f"{type(self).__name__} is full "
                f"({self.size_bytes()}B + {len(frame)}B > "
                f"{self.capacity_bytes}B)"
            )

    def append(self, frame: bytes) -> int:
        """Durably append one frame; returns its ordinal."""
        raise NotImplementedError

    def frames(self) -> list[bytes]:
        """Every stored frame, in append order."""
        raise NotImplementedError

    def rewrite(self, frames: list[bytes]) -> None:
        """Atomically replace the whole store's contents (compaction)."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        raise NotImplementedError

    def sync(self) -> None:
        """Force written frames to stable storage (no-op by default)."""

    def close(self) -> None:
        """Release backend resources; further appends may fail."""


class MemoryStore(Store):
    """Frames in a process-local list (survives *simulated* crashes)."""

    def __init__(self, capacity_bytes: int | None = None):
        super().__init__(capacity_bytes)
        self._frames: list[bytes] = []

    def append(self, frame: bytes) -> int:
        self._admit(frame)
        self._frames.append(bytes(frame))
        self.appends += 1
        return len(self._frames) - 1

    def frames(self) -> list[bytes]:
        return list(self._frames)

    def rewrite(self, frames: list[bytes]) -> None:
        self._frames = [bytes(frame) for frame in frames]
        self.truncated = False

    def size_bytes(self) -> int:
        return sum(len(frame) for frame in self._frames)


class FileStore(Store):
    """Length-prefixed frames in one append-only file."""

    def __init__(self, path: "Path | str", capacity_bytes: int | None = None):
        super().__init__(capacity_bytes)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            self.path.write_bytes(_FILE_HEADER)
        self._handle = None
        self._closed = False

    def _writer(self):
        if self._closed:
            raise PersistenceError(f"store {self.path} is closed")
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, frame: bytes) -> int:
        self._admit(frame)
        ordinal = self.appends
        writer = self._writer()
        writer.write(_LEN.pack(len(frame)) + frame)
        writer.flush()
        self.appends += 1
        return ordinal

    def frames(self) -> list[bytes]:
        if self._handle is not None:
            self._handle.flush()
        raw = self.path.read_bytes()
        if not raw.startswith(_FILE_HEADER):
            raise PersistenceError(f"{self.path}: bad WAL file header")
        body = raw[len(_FILE_HEADER):]
        frames: list[bytes] = []
        offset = 0
        self.truncated = False
        while offset < len(body):
            if offset + _LEN.size > len(body):
                self.truncated = True  # torn length word
                break
            (length,) = _LEN.unpack_from(body, offset)
            offset += _LEN.size
            if offset + length > len(body):
                self.truncated = True  # frame cut short mid-write
                break
            frames.append(body[offset:offset + length])
            offset += length
        return frames

    def rewrite(self, frames: list[bytes]) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        image = bytearray(_FILE_HEADER)
        for frame in frames:
            image += _LEN.pack(len(frame)) + frame
        temporary = self.path.with_suffix(self.path.suffix + ".partial")
        temporary.write_bytes(bytes(image))
        os.replace(temporary, self.path)  # atomic publish
        self.truncated = False

    def size_bytes(self) -> int:
        if self._handle is not None:
            self._handle.flush()
        return max(0, self.path.stat().st_size - len(_FILE_HEADER))

    def sync(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True


class SqliteStore(Store):
    """Frames in a stdlib-sqlite table, ordered by integer primary key."""

    def __init__(self, path: "Path | str", capacity_bytes: int | None = None):
        import sqlite3

        super().__init__(capacity_bytes)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS frames ("
            " ordinal INTEGER PRIMARY KEY AUTOINCREMENT,"
            " body BLOB NOT NULL)"
        )
        self._conn.commit()

    def _cursor(self):
        if self._conn is None:
            raise PersistenceError(f"store {self.path} is closed")
        return self._conn

    def append(self, frame: bytes) -> int:
        self._admit(frame)
        conn = self._cursor()
        cursor = conn.execute(
            "INSERT INTO frames (body) VALUES (?)", (bytes(frame),)
        )
        conn.commit()
        self.appends += 1
        return int(cursor.lastrowid) - 1

    def frames(self) -> list[bytes]:
        rows = self._cursor().execute(
            "SELECT body FROM frames ORDER BY ordinal"
        )
        return [bytes(row[0]) for row in rows]

    def rewrite(self, frames: list[bytes]) -> None:
        conn = self._cursor()
        with conn:  # one transaction: compaction is all-or-nothing
            conn.execute("DELETE FROM frames")
            conn.executemany(
                "INSERT INTO frames (body) VALUES (?)",
                [(bytes(frame),) for frame in frames],
            )
        self.truncated = False

    def size_bytes(self) -> int:
        row = self._cursor().execute(
            "SELECT COALESCE(SUM(LENGTH(body)), 0) FROM frames"
        ).fetchone()
        return int(row[0])

    def sync(self) -> None:
        self._cursor().commit()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


#: backend name -> constructor expectations (documented in DURABILITY.md)
BACKENDS = ("memory", "file", "sqlite")


def make_store(
    backend: str,
    root: "Path | str | None" = None,
    name: str = "site",
    capacity_bytes: int | None = None,
) -> Store:
    """Build a backend by name; file-backed stores live under *root*
    as ``<name>.wal`` (file) or ``<name>.db`` (sqlite)."""
    if backend == "memory":
        return MemoryStore(capacity_bytes=capacity_bytes)
    if root is None:
        raise PersistenceError(f"backend {backend!r} needs a root directory")
    if backend == "file":
        return FileStore(Path(root) / f"{name}.wal", capacity_bytes=capacity_bytes)
    if backend == "sqlite":
        return SqliteStore(Path(root) / f"{name}.db", capacity_bytes=capacity_bytes)
    raise PersistenceError(
        f"unknown WAL backend {backend!r} (expected one of {BACKENDS})"
    )
