"""Durable objects: a write-ahead log in front of a versioned image store.

Two planes, layered:

* the **WAL plane** (:mod:`.backends`, :mod:`.wal`, :mod:`.journal`,
  :mod:`.recovery`) — the primary durability path: every observable
  site transition is journaled before its effects reach the wire, and
  :func:`~.recovery.recover_site` rebuilds a crashed site's incarnation
  from the log with exactly-once semantics intact;
* the **image plane** (:mod:`.store`, :mod:`.checkpoint`) — versioned
  whole-object images with checksums and bootstrap, kept as the
  snapshot/archive layer and for the legacy checkpoint/restore flow.
"""

from .backends import (
    BACKENDS,
    FileStore,
    MemoryStore,
    SqliteStore,
    Store,
    StoreFullError,
    make_store,
)
from .checkpoint import (
    CheckpointReport,
    checkpoint_site,
    restore_site,
    schedule_checkpoints,
)
from .journal import SiteJournal, attach_journal
from .recovery import RecoveryReport, ReplayState, recover_site, replay_records
from .store import ObjectStore, persist, restore
from .wal import RECORD_KINDS, WalRecord, WriteAheadLog, decode_frames

__all__ = [
    # image plane
    "ObjectStore",
    "persist",
    "restore",
    "checkpoint_site",
    "restore_site",
    "schedule_checkpoints",
    "CheckpointReport",
    # WAL plane
    "Store",
    "StoreFullError",
    "MemoryStore",
    "FileStore",
    "SqliteStore",
    "make_store",
    "BACKENDS",
    "WalRecord",
    "WriteAheadLog",
    "RECORD_KINDS",
    "decode_frames",
    "SiteJournal",
    "attach_journal",
    "RecoveryReport",
    "ReplayState",
    "replay_records",
    "recover_site",
]
