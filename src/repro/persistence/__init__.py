"""Self-contained object persistence (host-allocated space, versioned)."""

from .checkpoint import (
    CheckpointReport,
    checkpoint_site,
    restore_site,
    schedule_checkpoints,
)
from .store import ObjectStore, persist, restore

__all__ = [
    "ObjectStore",
    "persist",
    "restore",
    "checkpoint_site",
    "restore_site",
    "schedule_checkpoints",
    "CheckpointReport",
]
