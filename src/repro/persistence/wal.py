"""The write-ahead log: span-stamped records, replay, and compaction.

The record schema is the telemetry plane's, made durable. A
:class:`WalRecord` carries the same shape as a
:class:`~repro.telemetry.events.TelemetryEvent` — a name (``kind``),
a simulated timestamp, and a flat attribute mapping — plus the two
things a durable log needs that an in-memory event log does not: a
monotone sequence number (the LSN) and, when telemetry is active, the
``trace_id``/``span_id`` of the span that caused the write, so a
recovered site's history can be joined back to the traces that
produced it.

On disk a record is one *frame* in a :class:`~.backends.Store`::

    frame := sha256(body)[:8] | body
    body  := marshal({seq, kind, time, site, attrs[, trace]})

using the MRM1 tagged marshal — the WAL speaks the repository's own
wire format, not pickle, for exactly the reasons the network does.

Replay is strict-prefix: records are decoded in order until the first
damaged frame (checksum mismatch or undecodable body → ``"torn"``;
store-reported incomplete tail → ``"truncated"``), and everything
before the damage is trusted. Opening a log *repairs* such a tail by
atomically rewriting the store to the intact prefix, so new appends
never land beyond a hole.

Compaction (:meth:`WriteAheadLog.compact`) folds the whole log into a
single ``snapshot`` record; sequence numbers keep counting so the LSN
order is preserved across compactions.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from ..telemetry import state as _telemetry
from ..core.errors import MarshalError, PersistenceError
from ..net.marshal import marshal, unmarshal
from .backends import Store

__all__ = ["WalRecord", "WriteAheadLog", "RECORD_KINDS", "decode_frames"]

#: Every record kind the recovery state machine understands. Unknown
#: kinds are skipped on replay (forward compatibility), never fatal.
RECORD_KINDS = (
    "object.image",         # latest durable image of one object
    "object.remove",        # the object left this site (move commit)
    "served.reply",         # request-id -> reply, + post-execution image
    "transfer.intent",      # sender-side write-ahead: PREPARE is about to go out
    "transfer.ledger",      # receiver-side settle/abort ledger entry
    "transfer.resolved",    # a pending intent settled (commit/abort known)
    "snapshot",             # full-state fold written by compaction
)

_CHECKSUM_BYTES = 8


class WalRecord:
    """One durable event: the EventLog schema plus LSN and trace stamp."""

    __slots__ = ("seq", "kind", "time", "site", "attrs", "trace")

    def __init__(
        self,
        seq: int,
        kind: str,
        time: float,
        site: str,
        attrs: Mapping[str, Any],
        trace: Mapping[str, str] | None = None,
    ):
        self.seq = seq
        self.kind = kind
        self.time = time
        self.site = site
        self.attrs = dict(attrs)
        self.trace = dict(trace) if trace else None

    def to_mapping(self) -> dict:
        mapping: dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "time": self.time,
            "site": self.site,
            "attrs": self.attrs,
        }
        if self.trace is not None:
            mapping["trace"] = self.trace
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "WalRecord":
        try:
            return cls(
                seq=int(mapping["seq"]),
                kind=str(mapping["kind"]),
                time=float(mapping["time"]),
                site=str(mapping["site"]),
                attrs=dict(mapping["attrs"]),
                trace=mapping.get("trace"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise MarshalError(f"malformed WAL record: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"WalRecord(seq={self.seq}, kind={self.kind!r}, "
            f"site={self.site!r}, t={self.time:.6g})"
        )


def _frame(record: WalRecord) -> bytes:
    body = marshal(record.to_mapping())
    return hashlib.sha256(body).digest()[:_CHECKSUM_BYTES] + body


def decode_frames(
    frames: list[bytes], truncated: bool = False
) -> tuple[list[WalRecord], str | None]:
    """Strict-prefix decode: records up to the first damage.

    Returns ``(records, damage)`` where damage is ``None`` for a clean
    log, ``"torn"`` when a frame fails its checksum or decode, and
    ``"truncated"`` when the store reported a physically cut tail.
    """
    records: list[WalRecord] = []
    for frame in frames:
        if len(frame) <= _CHECKSUM_BYTES:
            return records, "torn"
        stamp, body = frame[:_CHECKSUM_BYTES], frame[_CHECKSUM_BYTES:]
        if hashlib.sha256(body).digest()[:_CHECKSUM_BYTES] != stamp:
            return records, "torn"
        try:
            mapping = unmarshal(body)
            record = WalRecord.from_mapping(mapping)
        except MarshalError:
            return records, "torn"
        records.append(record)
    return records, ("truncated" if truncated else None)


class WriteAheadLog:
    """An append-only, replayable log of :class:`WalRecord` frames.

    Opening the log replays the store once: the next sequence number
    continues after the last intact record, and a damaged tail (torn or
    truncated) is repaired in place — the store is rewritten to the
    intact prefix — so the damage is tolerated exactly once and new
    appends land on firm ground. ``repaired`` remembers what was cut.
    """

    def __init__(self, store: Store, repair: bool = True):
        self.store = store
        records, damage = decode_frames(store.frames(), store.truncated)
        self.repaired: str | None = None
        if damage is not None and repair:
            store.rewrite([_frame(record) for record in records])
            self.repaired = damage
        self._next_seq = (records[-1].seq + 1) if records else 1

    # -- writing -----------------------------------------------------------

    def append(
        self,
        kind: str,
        attrs: Mapping[str, Any],
        site: str = "",
        time: float = 0.0,
    ) -> WalRecord:
        """Durably append one record; stamps the active span, if any."""
        trace = None
        tel = _telemetry.ACTIVE
        if tel is not None:
            span = tel.current_span
            if span is not None:
                trace = {"trace_id": span.trace_id, "span_id": span.span_id}
        record = WalRecord(
            seq=self._next_seq, kind=kind, time=time, site=site,
            attrs=attrs, trace=trace,
        )
        self.store.append(_frame(record))
        self._next_seq += 1
        if tel is not None:
            tel.metrics.counter("wal.appends").inc()
        return record

    # -- reading -----------------------------------------------------------

    def replay(self) -> tuple[list[WalRecord], str | None]:
        """Decode every intact record; see :func:`decode_frames`."""
        return decode_frames(self.store.frames(), self.store.truncated)

    def records(self) -> list[WalRecord]:
        records, _damage = self.replay()
        return records

    # -- compaction --------------------------------------------------------

    def compact(
        self,
        snapshot_attrs: Mapping[str, Any],
        site: str = "",
        time: float = 0.0,
    ) -> WalRecord:
        """Fold the log into one ``snapshot`` record (LSN continues)."""
        record = WalRecord(
            seq=self._next_seq, kind="snapshot", time=time, site=site,
            attrs=snapshot_attrs,
        )
        try:
            self.store.rewrite([_frame(record)])
        except PersistenceError:
            raise
        self._next_seq += 1
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("wal.compactions").inc()
        return record

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(store={type(self.store).__name__}, "
            f"next_seq={self._next_seq})"
        )
