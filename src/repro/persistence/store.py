"""Self-contained persistence: the object writes itself to host space.

"a long-lived persistent mobile object should contain its own persistence
scheme and be able to write itself to disk on a space allocated for it by
the host environment, as well as read itself into memory following some
bootstrap procedure initiated by the host environment." (Section 1.)

The division of labour is exactly that sentence:

* the **host** provides an :class:`ObjectStore` — it allocates a
  directory per object and runs :meth:`ObjectStore.bootstrap` at startup;
* the **object** provides its own image: the persisted bytes are its
  mobility package (:mod:`repro.mobility.package`) — the same self-
  contained representation it migrates with — framed with a header and a
  SHA-256 checksum so corruption is detected, never silently restored.

Images are versioned: every save appends a new version; restore defaults
to the latest intact one, so a torn write falls back to the previous
snapshot.
"""

from __future__ import annotations

import hashlib
import os
import re
from pathlib import Path

from ..core.errors import PersistenceError
from ..core.mobject import MROMObject
from ..mobility.package import pack_bytes, unpack_bytes

__all__ = ["ObjectStore", "persist", "restore"]

_HEADER = b"MROMPERS1\n"
_SAFE_RE = re.compile(r"[^A-Za-z0-9._-]")


def _safe_dirname(guid: str) -> str:
    """A filesystem-safe, collision-free directory name for a guid."""
    digest = hashlib.sha256(guid.encode("utf-8")).hexdigest()[:12]
    readable = _SAFE_RE.sub("_", guid)[:60]
    return f"{readable}.{digest}"


class ObjectStore:
    """Host-allocated space for persistent objects, with versioned images."""

    def __init__(self, root: "Path | str"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- host side: space allocation ---------------------------------------

    def allocate(self, guid: str) -> Path:
        """The space the host grants one object (idempotent)."""
        home = self.root / _safe_dirname(guid)
        home.mkdir(exist_ok=True)
        marker = home / "GUID"
        if marker.exists():
            recorded = marker.read_text(encoding="utf-8")
            if recorded != guid:
                raise PersistenceError(
                    f"allocation collision: {home} belongs to {recorded!r}"
                )
        else:
            marker.write_text(guid, encoding="utf-8")
        return home

    def guids(self) -> list[str]:
        """Every object with allocated space (for bootstrap)."""
        found = []
        for entry in sorted(self.root.iterdir()):
            marker = entry / "GUID"
            if entry.is_dir() and marker.exists():
                found.append(marker.read_text(encoding="utf-8"))
        return found

    # -- versioned images -----------------------------------------------------

    def versions(self, guid: str) -> list[int]:
        home = self.root / _safe_dirname(guid)
        if not home.is_dir():
            return []
        versions = []
        for entry in home.glob("v*.mrom"):
            try:
                versions.append(int(entry.stem[1:]))
            except ValueError:
                continue
        return sorted(versions)

    def _image_path(self, guid: str, version: int) -> Path:
        return self.root / _safe_dirname(guid) / f"v{version}.mrom"

    def save(self, obj: MROMObject, keep: int = 3) -> int:
        """Write a new image of *obj*; returns its version number.

        *keep* bounds how many old versions survive (0 keeps everything).
        Host-attached native wrappers (mediators, hooks) are not part of
        the image — the host reattaches its own infrastructure after a
        restore; a native *body* still refuses to persist.
        """
        home = self.allocate(obj.guid)
        existing = self.versions(obj.guid)
        version = (existing[-1] + 1) if existing else 1
        body = pack_bytes(obj, strip_native_wrappers=True)
        digest = hashlib.sha256(body).hexdigest().encode("ascii")
        image = _HEADER + digest + b"\n" + body
        target = self._image_path(obj.guid, version)
        temporary = home / f".v{version}.partial"
        temporary.write_bytes(image)
        os.replace(temporary, target)  # atomic publish
        if keep > 0:
            for old in existing[: max(0, len(existing) + 1 - keep)]:
                self._image_path(obj.guid, old).unlink(missing_ok=True)
        return version

    def load(self, guid: str, version: int | None = None) -> MROMObject:
        """Restore one object (latest intact image by default)."""
        available = self.versions(guid)
        if not available:
            raise PersistenceError(f"no persisted image for {guid}")
        candidates = [version] if version is not None else list(reversed(available))
        last_error: Exception | None = None
        for candidate in candidates:
            if candidate not in available:
                raise PersistenceError(f"no version {candidate} for {guid}")
            try:
                return self._load_one(guid, candidate)
            except PersistenceError as exc:
                last_error = exc
                if version is not None:
                    raise
        raise PersistenceError(
            f"every image of {guid} is corrupt (last: {last_error})"
        )

    def _load_one(self, guid: str, version: int) -> MROMObject:
        raw = self._image_path(guid, version).read_bytes()
        if not raw.startswith(_HEADER):
            raise PersistenceError(f"{guid} v{version}: bad header")
        rest = raw[len(_HEADER):]
        newline = rest.find(b"\n")
        if newline != 64:
            raise PersistenceError(f"{guid} v{version}: malformed checksum line")
        digest, body = rest[:newline], rest[newline + 1:]
        if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
            raise PersistenceError(f"{guid} v{version}: checksum mismatch")
        obj = unpack_bytes(body)
        if obj.guid != guid:
            raise PersistenceError(
                f"image identity mismatch: expected {guid}, found {obj.guid}"
            )
        return obj

    def delete(self, guid: str) -> None:
        """Release an object's space entirely."""
        home = self.root / _safe_dirname(guid)
        if not home.is_dir():
            return
        for entry in home.iterdir():
            entry.unlink()
        home.rmdir()

    # -- bootstrap ----------------------------------------------------------

    def bootstrap(self) -> list[MROMObject]:
        """The host's startup procedure: read every stored object back.

        Objects whose every image is corrupt are skipped (and reported by
        :meth:`bootstrap_report`), not fatal — one broken guest must not
        prevent the host from starting.
        """
        return [obj for obj, _err in self._bootstrap_all() if obj is not None]

    def bootstrap_report(self) -> list[tuple[str, str]]:
        """(guid, error) for every object that failed to restore."""
        return [
            (guid, str(err))
            for (obj, err), guid in zip(self._bootstrap_all(), self.guids())
            if obj is None
        ]

    def _bootstrap_all(self):
        results = []
        for guid in self.guids():
            try:
                results.append((self.load(guid), None))
            except PersistenceError as exc:
                results.append((None, exc))
        return results

    def __repr__(self) -> str:
        return f"ObjectStore({str(self.root)!r}, {len(self.guids())} objects)"


def persist(obj: MROMObject, store: ObjectStore, keep: int = 3) -> int:
    """The object-side verb: write yourself into host-allocated space."""
    return store.save(obj, keep=keep)


def restore(store: ObjectStore, guid: str, version: int | None = None) -> MROMObject:
    """The object-side verb: read yourself back into memory."""
    return store.load(guid, version=version)
