"""Method invocation: the level-0 primitive and the meta-invoke tower.

"Altogether, the basic method invocation mechanism consists of three
phases: 1. Lookup — locate and fetch a method's handle. 2. Match — match
security information. 3. Apply — invoke the operation on the method,
consisting of the following phases: 3.1 Pre-proc, 3.2 Body, 3.3
Post-proc." (Section 3.1.)

Level 0 is deliberately *non-reflective*: its representation "is not
visible ... is not accommodated for change, and can be implemented in a
more efficient way" — here, plain Python control flow with no dynamic
dispatch through the model itself. Reflective modification of invocation
happens by stacking *meta-invoke levels* above it (Figure 1): each level
is an ordinary MROM method (with its own ACL and pre/post procedures)
whose body receives the pending target invocation through an
:class:`InvocationContext` and forwards it downward with
:meth:`InvocationContext.proceed`. Level 0 is "the stopping condition of
the recursive invocation mechanism".

Tracing: every invocation can produce an :class:`InvocationRecord`, a
structured trace of (level, phase) events. The records are what the
FIG-1 reproduction prints, and what the audit machinery in
:mod:`repro.security` consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from ..telemetry import state as _telemetry
from .acl import Permission, Principal, note_match
from .errors import (
    InvocationDepthError,
    PostProcedureError,
    PreProcedureVeto,
)
from .fastpath import COMPILED_STALE
from .items import MROMMethod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .mobject import MROMObject

__all__ = [
    "Phase",
    "TraceEvent",
    "InvocationRecord",
    "InvocationContext",
    "Invoker",
    "MAX_META_LEVELS",
]

#: Upper bound on the meta-invoke tower. The paper: "nothing in the model
#: prevents the creation of arbitrary levels of invocation, although we
#: have not encountered yet practical situations that demanded more than
#: two". We allow plenty, but bound it to fail fast on accidental cycles.
MAX_META_LEVELS = 32


class Phase(enum.Enum):
    """The phases of the level-0 invocation mechanism."""

    LOOKUP = "lookup"
    MATCH = "match"
    PRE = "pre"
    BODY = "body"
    POST = "post"


@dataclass(frozen=True)
class TraceEvent:
    """One step of an invocation: which phase ran at which level."""

    level: int
    phase: Phase
    method: str
    note: str = ""

    def __str__(self) -> str:
        note = f" ({self.note})" if self.note else ""
        return f"L{self.level} {self.phase.value:<6} {self.method}{note}"


@dataclass
class InvocationRecord:
    """A structured trace of one top-level invocation."""

    method: str
    caller: str
    events: list[TraceEvent] = field(default_factory=list)
    outcome: str = "pending"  # "ok" | "veto" | "error" | "pending"

    def log(self, level: int, phase: Phase, method: str, note: str = "") -> None:
        self.events.append(TraceEvent(level, phase, method, note))

    def phases_at_level(self, level: int) -> list[Phase]:
        return [event.phase for event in self.events if event.level == level]

    def levels(self) -> list[int]:
        seen: list[int] = []
        for event in self.events:
            if event.level not in seen:
                seen.append(event.level)
        return seen

    def render(self) -> str:
        """Human-readable trace, one event per line (used by examples)."""
        header = f"invoke {self.method!r} by {self.caller} -> {self.outcome}"
        return "\n".join([header] + [f"  {event}" for event in self.events])


class InvocationContext:
    """What a method body (or meta-invoke body) sees about the invocation.

    For an ordinary body, the context is descriptive: target name, caller,
    level (always 0), the trace record, and the host-provided environment
    bindings (the *installation context* a migrating object received).

    For a meta-invoke body at level *k*, the context is also operative:
    :meth:`proceed` continues the invocation at level *k-1*, ultimately
    reaching the level-0 primitive. A meta level that never calls
    ``proceed`` has absorbed the invocation (e.g. the database-shutdown
    Ambassadors of Section 5 answer every query with a maintenance notice
    without ever reaching the original bodies).
    """

    __slots__ = ("invoker", "caller", "method_name", "args", "level", "record")

    def __init__(
        self,
        invoker: "Invoker",
        caller: Principal,
        method_name: str,
        args: Sequence[Any],
        level: int,
        record: InvocationRecord,
    ):
        self.invoker = invoker
        self.caller = caller
        self.method_name = method_name
        self.args = list(args)
        self.level = level
        self.record = record

    @property
    def target(self) -> str:
        """Alias: the name of the method ultimately being invoked."""
        return self.method_name

    @property
    def env(self) -> dict:
        """Host-supplied installation-context bindings."""
        return self.invoker.obj.environment

    def proceed(self) -> Any:
        """Continue the invocation one level down (meta levels only)."""
        return self.invoker.descend(self)

    def __repr__(self) -> str:
        return (
            f"InvocationContext(method={self.method_name!r}, "
            f"level={self.level}, caller={self.caller.guid})"
        )


class Invoker:
    """The invocation engine bound to one MROM object.

    Owns no state beyond its object reference; all structure lives in the
    object's containers and meta-invoke chain, so replacing/augmenting the
    chain at run time (meta-mutability) immediately affects dispatch.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: "MROMObject"):
        self.obj = obj

    # -- public entry -----------------------------------------------------

    def invoke(
        self,
        caller: Principal,
        method_name: str,
        args: Sequence[Any] = (),
    ) -> Any:
        """Invoke *method_name* with MROM semantics, entering the tower at
        its top level (or directly at level 0 when no tower exists)."""
        obj = self.obj
        # Compiled tier: a warm (caller, method) pair may have been
        # specialized into a closure that inlines the whole pipeline.
        # Dispatch is gated on an empty meta tower — installing a
        # meta-invoke level does not move the mutation clock, so the
        # generation pin alone could not keep a closure from bypassing a
        # freshly stacked level — and the closure re-checks its own pins,
        # answering COMPILED_STALE when any moved.
        cache = obj._fastpath
        if cache is not None and not obj._meta_invokes:
            table = cache.compiled
            if table:
                key = (caller.guid, caller.domain, method_name)
                fn = table.get(key)
                if fn is not None:
                    result = fn(caller, args)
                    if result is not COMPILED_STALE:
                        return result
                    cache.discard_compiled(key)
                    tel = _telemetry.ACTIVE
                    if tel is not None:
                        tel.metrics.counter("fastpath.compiled.discards").inc()
        chain = obj.meta_invoke_chain()
        if len(chain) > MAX_META_LEVELS:
            raise InvocationDepthError(
                f"meta-invoke tower of depth {len(chain)} exceeds "
                f"MAX_META_LEVELS={MAX_META_LEVELS}"
            )
        record = InvocationRecord(method=method_name, caller=caller.guid)
        tel = _telemetry.ACTIVE
        span = None
        if tel is not None:
            span = tel.begin_span(
                "invoke",
                attrs={
                    "method": method_name,
                    "object": self.obj.guid,
                    "caller": caller.guid,
                    "tower_depth": len(chain),
                },
            )
            span.event("invocation.enter", tower_depth=len(chain))
            tel.metrics.counter("invocations").inc()
        try:
            if chain:
                result = self._run_meta_level(
                    len(chain), caller, method_name, args, record
                )
            else:
                result = self.invoke_primitive(caller, method_name, args, record)
        except PreProcedureVeto:
            record.outcome = "veto"
            self.obj.note_invocation(record)
            if span is not None:
                span.event("invocation.exit", outcome="veto")
                tel.end_span(span, status="veto")
                tel.metrics.counter("invocations.vetoed").inc()
            raise
        except Exception as exc:
            record.outcome = "error"
            self.obj.note_invocation(record)
            if span is not None:
                span.event("invocation.exit", outcome="error",
                           error=type(exc).__name__)
                tel.end_span(span, status="error")
                tel.metrics.counter("invocations.failed").inc()
            raise
        record.outcome = "ok"
        self.obj.note_invocation(record)
        if span is not None:
            span.event("invocation.exit", outcome="ok")
            tel.end_span(span)
        return result

    # -- the meta tower -----------------------------------------------------

    def descend(self, ctx: InvocationContext) -> Any:
        """``ctx.proceed()``: continue at the next level down."""
        next_level = ctx.level - 1
        if next_level < 0:
            raise InvocationDepthError("cannot proceed below level 0")
        if next_level == 0:
            return self.invoke_primitive(
                ctx.caller, ctx.method_name, ctx.args, ctx.record
            )
        return self._run_meta_level(
            next_level, ctx.caller, ctx.method_name, ctx.args, ctx.record
        )

    def _run_meta_level(
        self,
        level: int,
        caller: Principal,
        method_name: str,
        args: Sequence[Any],
        record: InvocationRecord,
    ) -> Any:
        """Run the meta-invoke method at *level* under level-0 mechanics.

        The meta-invoke method is itself an MROM method: it is security-
        matched against the original caller and wrapped by its own pre-
        and post-procedures — "the method Mfoo is sent as a parameter to
        meta_invoke, and is later invoked by it (following level 0
        invocation)" (Figure 1).
        """
        meta_method = self.obj.meta_invoke_at(level)
        ctx = InvocationContext(self, caller, method_name, args, level, record)
        return self._apply_with_match(meta_method, caller, list(args), ctx, level)

    # -- level 0: the primitive ------------------------------------------------

    def invoke_primitive(
        self,
        caller: Principal,
        method_name: str,
        args: Sequence[Any],
        record: InvocationRecord | None = None,
    ) -> Any:
        """The level-0 invocation mechanism: Lookup -> Match -> Apply.

        With the object's invocation cache enabled (the default), the
        Lookup phase is served from the cache when the containers'
        mutation generation has not moved; the trace record, telemetry
        and error behaviour are identical either way — the cache changes
        *cost*, never observables (tests/core/test_fastpath_differential
        holds it to that).
        """
        if record is None:
            record = InvocationRecord(method=method_name, caller=caller.guid)
        obj = self.obj
        cache = obj._fastpath
        warm = False
        # Phase 1: Lookup — locate and fetch the method's handle.
        if cache is None:
            method, section = obj.containers.lookup_method(method_name)
        else:
            invalidated = cache.sync(obj.containers.generation)
            entry = cache.lookup_table.get(method_name)
            if entry is None:
                cache.lookup_misses += 1
                # failures are not cached: an unknown name raises the
                # same typed error on every call, cached or not
                method, section = obj.containers.lookup_method(method_name)
                cache.lookup_table[method_name] = (method, section)
            else:
                cache.lookup_hits += 1
                method, section = entry
                warm = True
            tel = _telemetry.ACTIVE
            if tel is not None:
                metrics = tel.metrics
                if invalidated:
                    metrics.counter("fastpath.invalidations").inc()
                metrics.counter(
                    "fastpath.lookup.misses" if entry is None
                    else "fastpath.lookup.hits"
                ).inc()
        record.log(0, Phase.LOOKUP, method_name, section)
        ctx = InvocationContext(self, caller, method_name, args, 0, record)
        return self._apply_with_match(
            method, caller, list(args), ctx, 0, cache,
            section=section, warm=warm,
        )

    def _apply_with_match(
        self,
        method: MROMMethod,
        caller: Principal,
        args: list,
        ctx: InvocationContext,
        level: int,
        cache=None,
        section: str = "",
        warm: bool = False,
    ) -> Any:
        record = ctx.record
        # Phase 2: Match — match security information. An object always
        # trusts itself with itself (self-containment): its own principal
        # bypasses the ACL, everyone else is checked. A cached ALLOW
        # verdict is honoured only while its pins (method identity and
        # version, ACL identity and edit version) all still hold, so ACL
        # replacement *and* in-place ACL edits re-evaluate; denials are
        # never cached.
        if caller.guid != self.obj.guid:
            if cache is None:
                method.check(caller, Permission.INVOKE)
            else:
                acl = method.acl
                key = (caller.guid, caller.domain, ctx.method_name)
                entry = cache.match_table.get(key)
                if (
                    entry is not None
                    and entry[0] is method
                    and entry[1] == method.version
                    and entry[2] is acl
                    and entry[3] == acl.version
                ):
                    cache.match_hits += 1
                    hit = True
                    note_match(caller, method.name, Permission.INVOKE, True)
                    # a repeated, pinned-valid ALLOW is the promotion
                    # signal: this (caller, method) pair is warm enough
                    # to be worth a specialized closure
                    if cache.compile_enabled:
                        self._maybe_compile(method, section, caller, ctx, cache)
                else:
                    cache.match_misses += 1
                    hit = False
                    method.check(caller, Permission.INVOKE)
                    cache.match_table[key] = (
                        method, method.version, acl, acl.version,
                    )
                tel = _telemetry.ACTIVE
                if tel is not None:
                    tel.metrics.counter(
                        "fastpath.match.hits" if hit else "fastpath.match.misses"
                    ).inc()
            record.log(level, Phase.MATCH, method.name, "checked")
        else:
            # self-calls bypass Match; a warm Lookup plays the same
            # promotion role the match hit plays for foreign callers
            if cache is not None and warm and cache.compile_enabled:
                self._maybe_compile(method, section, caller, ctx, cache)
            record.log(level, Phase.MATCH, method.name, "self")

        self_view = self.obj.self_view()

        # Phases 3.1-3.3 must stay in lockstep with the compiled mirror
        # in repro.lang.compiler.compile_invocation: any change to the
        # events, errors or telemetry here is an observable and must be
        # replicated there (the differential harness will catch a drift).

        # Phase 3.1: Pre-proc.
        if method.pre is not None:
            approved = method.pre.call_boolean(self_view, args, ctx)
            record.log(level, Phase.PRE, method.name, "ok" if approved else "veto")
            if not approved:
                raise PreProcedureVeto(method.name)

        # Phase 3.2: Body — transfer control to the body of the method.
        result = method.body.call(self_view, args, ctx)
        record.log(level, Phase.BODY, method.name)

        # Phase 3.3: Post-proc.
        if method.post is not None:
            accepted = method.post.call_boolean(self_view, args, result, ctx)
            record.log(level, Phase.POST, method.name, "ok" if accepted else "failed")
            if not accepted:
                raise PostProcedureError(method.name, result=result)

        return result

    # -- the compile tier ---------------------------------------------------

    def _maybe_compile(
        self,
        method: MROMMethod,
        section: str,
        caller: Principal,
        ctx: InvocationContext,
        cache,
    ) -> None:
        """Promote a warm (caller, method) pair to a compiled closure.

        Compilation happens at the Match phase, *after* the verdict is
        known to be ALLOW under pins that currently hold — a closure can
        therefore pin the verdict without ever being able to convert a
        denial into access. Meta-methods are declined (the emitter
        returns None): their bodies are the reflective machinery itself
        and must stay interpreted.
        """
        key = (caller.guid, caller.domain, ctx.method_name)
        if key in cache.compiled:
            return
        # local import: lang.compiler imports this module for the trace
        # vocabulary, so the dependency must stay one-way at import time
        from ..lang.compiler import compile_invocation

        fn = compile_invocation(self, method, section, caller, cache)
        if fn is None:
            return
        cache.store_compiled(key, fn)
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("fastpath.compiled.compiles").inc()
