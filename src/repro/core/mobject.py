"""The MROM object: four containers, bundled meta-methods, invoke tower.

An :class:`MROMObject` is the paper's central artifact:

* its structure lives in four item containers (fixed/extensible x
  data/methods, :mod:`repro.core.containers`);
* its *meta-methods* — ``getDataItem``/``setDataItem``/``addDataItem``/
  ``deleteDataItem``, the four ``*Method`` analogues, and ``invoke`` — are
  bundled **inside** the object ("Self containment implies that we refrain
  from separating the meta-methods in a distinct meta-object", Section 3);
* invocation is performed by the level-0 primitive
  (:class:`repro.core.invocation.Invoker`), optionally beneath a tower of
  extensible meta-invoke levels (*meta-mutability*).

Construction protocol
---------------------

The fixed section can only be populated between construction and
:meth:`seal` — the Python analog of the paper's "copying the containers of
the super-class to the sub-class, as well as adding items ... are done in
the sub-class constructor". After sealing, only the extensible section
can change, and only through the meta-methods.

>>> from repro.core import MROMObject
>>> counter = MROMObject(display_name="counter")
>>> counter.define_fixed_data("count", 0)
>>> counter.define_fixed_method("increment",
...     "n = self.get('count') + (args[0] if args else 1)\\n"
...     "self.set('count', n)\\n"
...     "return n")
>>> counter.seal()
>>> counter.invoke("increment", [5])
5
"""

from __future__ import annotations

import uuid
from typing import Any, Mapping, Sequence

from .acl import (
    AccessControlList,
    ANONYMOUS,
    Permission,
    Principal,
    allow_all,
    owner_only,
)
from .containers import ContainerSet, EXTENSIBLE, FIXED
from . import fastpath as _fastpath
from .fastpath import InvocationCache
from .errors import (
    FixedSectionError,
    MethodNotFoundError,
    StaleHandleError,
    StructureError,
)
from .code import CodeRole, as_code
from .invocation import InvocationRecord, Invoker
from .items import (
    DataItem,
    HANDLE_TOKEN_KEY,
    ItemDescription,
    ItemHandle,
    MROMMethod,
)
from .values import Kind, coerce

__all__ = ["MROMObject", "SelfView", "META_METHOD_NAMES"]

#: The bundled meta-method names, as listed in Section 3 of the paper.
META_METHOD_NAMES = (
    "getDataItem",
    "setDataItem",
    "addDataItem",
    "deleteDataItem",
    "getMethod",
    "setMethod",
    "addMethod",
    "deleteMethod",
    "invoke",
)


def _fresh_guid() -> str:
    return f"mrom:obj:{uuid.uuid4().hex[:20]}"


class MROMObject:
    """A mutable reflective object per the MROM model.

    Parameters
    ----------
    guid:
        Globally unique identity; generated when omitted. Richer,
        decentralized identities come from :mod:`repro.naming`.
    domain:
        The trust domain of the object's birth site (used as its
        principal's domain in ACL evaluation).
    display_name:
        Human-facing label for traces and errors.
    owner:
        The principal that *owns* the object. For an Ambassador this is
        its origin APO — the only principal its meta-methods admit by
        default. Defaults to the object's own principal.
    extensible_meta:
        When True, the bundled meta-methods are placed in the
        *extensible* section, enabling meta-mutability: they may be
        replaced, deleted, and — for ``invoke`` — stacked into a tower of
        meta-invoke levels. When False (the default) the meta-methods are
        fixed for the object's lifetime.
    meta_acl:
        ACL guarding the meta-methods. Defaults to owner-only: the paper's
        Ambassadors demand that "its meta-methods should be invisible to
        the host IOO ... and should not be invoked by that IOO".
    environment:
        Initial host-provided bindings (the installation context).
    fastpath:
        Whether the object carries an invocation cache memoizing level-0
        Lookup and Match (see :mod:`repro.core.fastpath`). ``None`` (the
        default) follows :data:`repro.core.fastpath.CACHING_DEFAULT`,
        read at construction time.
    """

    def __init__(
        self,
        guid: str | None = None,
        domain: str = "",
        display_name: str = "",
        owner: Principal | None = None,
        extensible_meta: bool = False,
        meta_acl: AccessControlList | None = None,
        environment: Mapping[str, Any] | None = None,
        fastpath: bool | None = None,
    ):
        self.guid = guid or _fresh_guid()
        self.principal = Principal(
            guid=self.guid, domain=domain, display_name=display_name
        )
        self.owner = owner if owner is not None else self.principal
        self.extensible_meta = bool(extensible_meta)
        self.containers = ContainerSet()
        self.environment: dict[str, Any] = dict(environment) if environment else {}
        self._invoker = Invoker(self)
        self._meta_invokes: list[MROMMethod] = []
        self._self_view: SelfView | None = None
        self._tracing = False
        self._records: list[InvocationRecord] = []
        self.last_record: InvocationRecord | None = None
        self._meta_acl = meta_acl if meta_acl is not None else owner_only(self.owner)
        if fastpath is None:
            fastpath = _fastpath.CACHING_DEFAULT
        self._fastpath: InvocationCache | None = (
            InvocationCache() if fastpath else None
        )
        self._install_meta_methods()

    # ------------------------------------------------------------------
    # construction-time definition of the fixed section
    # ------------------------------------------------------------------

    def define_fixed_data(
        self,
        name: str,
        value: Any = None,
        kind: Kind = Kind.ANY,
        acl: AccessControlList | None = None,
        metadata: Mapping[str, Any] | None = None,
    ) -> None:
        """Add a data item to the fixed section (before :meth:`seal`)."""
        item = DataItem(name, value, kind=kind, acl=acl, metadata=metadata)
        self.containers.add_fixed(item)

    def define_fixed_method(
        self,
        name: str,
        body: Any,
        pre: Any = None,
        post: Any = None,
        acl: AccessControlList | None = None,
        metadata: Mapping[str, Any] | None = None,
    ) -> None:
        """Add a method to the fixed section (before :meth:`seal`)."""
        method = MROMMethod(name, body, pre=pre, post=post, acl=acl, metadata=metadata)
        self.containers.add_fixed(method)

    def seal(self) -> "MROMObject":
        """End construction: the fixed section becomes immutable."""
        self.containers.seal_fixed()
        return self

    @property
    def sealed(self) -> bool:
        return self.containers.construction_finished

    # ------------------------------------------------------------------
    # ordinary value access ("values ... are accessed using ordinary get
    # and set") — checked against the item's own ACL
    # ------------------------------------------------------------------

    def get_data(
        self,
        name: str,
        caller: Principal | None = None,
        kind: Kind | None = None,
    ) -> Any:
        """Read a data item's value, optionally coercing it to *kind*."""
        caller = self._resolve_caller(caller)
        item, _section = self.containers.lookup_data(name)
        if caller.guid == self.guid:
            value = item.peek()
        else:
            value = item.get_value(caller)
        return value if kind is None else coerce(value, kind)

    def set_data(self, name: str, value: Any, caller: Principal | None = None) -> None:
        """Write a data item's value (coerced to its declared kind)."""
        caller = self._resolve_caller(caller)
        item, _section = self.containers.lookup_data(name)
        if caller.guid == self.guid:
            item.poke(value)
        else:
            item.set_value(caller, value)

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------

    def invoke(
        self,
        method_name: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> Any:
        """Invoke a method (including meta-methods) with MROM semantics."""
        return self._invoker.invoke(self._resolve_caller(caller), method_name, args)

    def invoke_primitive(
        self,
        method_name: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> Any:
        """Bypass the meta tower and call level 0 directly.

        Exposed for benchmarking (PERF-2) and for meta-level bodies that
        must reach the stopping condition explicitly; ordinary callers
        should use :meth:`invoke`.
        """
        return self._invoker.invoke_primitive(
            self._resolve_caller(caller), method_name, args
        )

    def _resolve_caller(self, caller: Principal | None) -> Principal:
        return caller if caller is not None else ANONYMOUS

    # ------------------------------------------------------------------
    # the invocation cache (hot-path memoization of Lookup + Match)
    # ------------------------------------------------------------------

    @property
    def fastpath(self) -> InvocationCache | None:
        """The object's invocation cache, or None when caching is off."""
        return self._fastpath

    def enable_fastpath(
        self, enabled: bool = True, *, compiled: bool | None = None
    ) -> None:
        """Attach or detach the invocation cache at run time.

        Re-enabling always starts cold; disabling drops the cache — and
        with it every compiled closure — and its counters. *compiled*
        pins the compile tier explicitly (None follows
        :data:`repro.core.fastpath.COMPILE_DEFAULT` for a new cache, or
        leaves an existing cache's setting alone); the differential
        harness uses it to run a cached-but-interpreted tier.
        """
        if enabled:
            if self._fastpath is None:
                self._fastpath = InvocationCache(compile_enabled=compiled)
            elif compiled is not None:
                self._fastpath.set_compiled(compiled)
        else:
            self._fastpath = None

    def fastpath_reset(self) -> None:
        """Drop cached entries on every tier, compiled closures included
        (e.g. after a migration install — caches always arrive cold)."""
        if self._fastpath is not None:
            self._fastpath.reset()

    # ------------------------------------------------------------------
    # the meta-invoke tower (meta-mutability, Figure 1)
    # ------------------------------------------------------------------

    def meta_invoke_chain(self) -> tuple[MROMMethod, ...]:
        """The tower, bottom (level 1) to top (level N)."""
        return tuple(self._meta_invokes)

    def meta_invoke_at(self, level: int) -> MROMMethod:
        """The meta-invoke method at 1-based *level*."""
        try:
            return self._meta_invokes[level - 1]
        except IndexError:
            raise MethodNotFoundError(f"invoke@level{level}", "meta-tower") from None

    def _push_meta_invoke(self, method: MROMMethod) -> None:
        if not self.extensible_meta:
            raise FixedSectionError(
                f"object {self.guid} was created with fixed meta-methods; "
                "cannot add a meta-invoke level"
            )
        self._meta_invokes.append(method)

    def _pop_meta_invoke(self) -> MROMMethod:
        if not self._meta_invokes:
            raise FixedSectionError(
                "the base 'invoke' meta-method is part of the fixed behaviour "
                "and cannot be deleted"
            )
        return self._meta_invokes.pop()

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------

    def enable_tracing(self, enabled: bool = True) -> None:
        """Keep full invocation records (for audit / figure reproduction)."""
        self._tracing = enabled
        if not enabled:
            self._records.clear()

    def note_invocation(self, record: InvocationRecord) -> None:
        self.last_record = record
        if self._tracing:
            self._records.append(record)

    def invocation_records(self) -> tuple[InvocationRecord, ...]:
        return tuple(self._records)

    # ------------------------------------------------------------------
    # the self facade handed to method bodies
    # ------------------------------------------------------------------

    def self_view(self) -> "SelfView":
        if self._self_view is None:
            self._self_view = SelfView(self)
        return self._self_view

    # ------------------------------------------------------------------
    # meta-method implementations (native, privileged)
    # ------------------------------------------------------------------

    def _install_meta_methods(self) -> None:
        """Bundle the meta-methods inside the object.

        They are ordinary :class:`MROMMethod` instances with native
        bodies; placement (fixed vs extensible section) follows the
        ``extensible_meta`` switch, and their default ACL is owner-only.
        """
        specs = {
            "getDataItem": self._meta_get_data_item,
            "setDataItem": self._meta_set_data_item,
            "addDataItem": self._meta_add_data_item,
            "deleteDataItem": self._meta_delete_data_item,
            "getMethod": self._meta_get_method,
            "setMethod": self._meta_set_method,
            "addMethod": self._meta_add_method,
            "deleteMethod": self._meta_delete_method,
            "invoke": self._meta_reflective_invoke,
        }
        for name, implementation in specs.items():
            # The reflective 'invoke' copy is not self-changing: invoking a
            # method through it is exactly as dangerous as invoking it
            # directly (the target's own Match still applies), so it is as
            # public as direct invocation. The mutating meta-methods get
            # the guarded meta ACL — "access to self-changing operations"
            # is what a mobile object withholds from its host.
            acl = allow_all() if name == "invoke" else self._meta_acl.copy()
            method = MROMMethod(
                name,
                _meta_body(implementation),
                acl=acl,
                metadata={"meta": True, "doc": implementation.__doc__ or ""},
            )
            if self.extensible_meta:
                self.containers.add_extensible(method)
            else:
                self.containers.add_fixed(method)

    # Each implementation receives (caller, args) where args is the
    # untyped parameter array of the meta-method invocation.

    def _meta_get_data_item(self, caller: Principal, args: list) -> tuple:
        """getDataItem(name) -> (description, handle).

        The manipulation meta-methods "are only applicable on items which
        are defined as extensible" (Section 3): a fixed item yields its
        description but no handle, so no ``setDataItem`` can target it.
        """
        (name,) = _expect(args, 1, "getDataItem")
        item, section = self.containers.lookup_data(name)
        if caller.guid != self.guid:
            item.check(caller, Permission.META)
        if section == FIXED:
            return item.describe(section).to_mapping(), None
        container = self.containers.container_of("data", name)
        return item.describe(section).to_mapping(), ItemHandle(item, container)

    def _resolve_handle(self, handle: Any, category: str):
        """Accept a live :class:`ItemHandle` or its wire token."""
        if isinstance(handle, ItemHandle):
            handle.ensure_valid()
            return handle.item
        if isinstance(handle, Mapping) and handle.get(HANDLE_TOKEN_KEY):
            name = str(handle.get("name", ""))
            nonce = handle.get("nonce")
            if category == "method" and name == "invoke" and self._meta_invokes:
                for level in self._meta_invokes:
                    if level.nonce == nonce:
                        return level
                raise StaleHandleError(f"tower handle for {name!r} is stale")
            if category == "data":
                found = self.containers.fixed_data.find(name) or \
                    self.containers.ext_data.find(name)
            else:
                found = self.containers.fixed_methods.find(name) or \
                    self.containers.ext_methods.find(name)
            if found is None or found.nonce != nonce:
                raise StaleHandleError(f"remote handle for {name!r} is stale")
            return found
        raise StructureError(
            f"set{'DataItem' if category == 'data' else 'Method'} requires "
            "the handle from the matching get meta-method"
        )

    def _meta_set_data_item(self, caller: Principal, args: list) -> dict:
        """setDataItem(handle, properties) — change item properties:
        'name', 'kind', 'acl', 'metadata' (not the value)."""
        handle, properties = _expect(args, 2, "setDataItem")
        item = self._resolve_handle(handle, "data")
        if caller.guid != self.guid:
            item.check(caller, Permission.META)
        section = self.containers.section_of("data", item.name)
        if section == FIXED:
            raise FixedSectionError(
                f"data item {item.name!r} is in the fixed section; "
                "setDataItem applies only to extensible items"
            )
        self._apply_data_properties(item, properties)
        return item.describe(section).to_mapping()

    def _apply_data_properties(self, item: DataItem, properties: Mapping) -> None:
        if "name" in properties:
            container = self.containers.container_of("data", item.name)
            container.rename(item.name, properties["name"])
        if "kind" in properties:
            kind = properties["kind"]
            item.set_kind(kind if isinstance(kind, Kind) else Kind(kind))
        if "acl" in properties:
            acl = properties["acl"]
            if isinstance(acl, Mapping):
                acl = AccessControlList.from_description(dict(acl))
            item.set_acl(acl)
        if "metadata" in properties:
            item.update_metadata(properties["metadata"])

    def _meta_add_data_item(self, caller: Principal, args: list) -> dict:
        """addDataItem(name, value[, properties]) — extensible section."""
        name, value, properties = _expect_between(args, 2, 3, "addDataItem")
        properties = properties or {}
        kind = properties.get("kind", Kind.ANY)
        if not isinstance(kind, Kind):
            kind = Kind(kind)
        acl = properties.get("acl")
        if isinstance(acl, Mapping):
            acl = AccessControlList.from_description(dict(acl))
        item = DataItem(
            name,
            value,
            kind=kind,
            acl=acl,
            metadata=properties.get("metadata"),
        )
        self.containers.add_extensible(item)
        return item.describe(EXTENSIBLE).to_mapping()

    def _meta_delete_data_item(self, caller: Principal, args: list) -> dict:
        """deleteDataItem(name) — extensible section only."""
        (name,) = _expect(args, 1, "deleteDataItem")
        item, _section = self.containers.lookup_data(name)
        if caller.guid != self.guid:
            item.check(caller, Permission.META)
        removed = self.containers.remove_extensible("data", name)
        return removed.describe(EXTENSIBLE).to_mapping()

    def _meta_get_method(self, caller: Principal, args: list) -> tuple:
        """getMethod(name) -> (description, handle)."""
        (name,) = _expect(args, 1, "getMethod")
        method, section = self._lookup_method_or_tower(name)
        if caller.guid != self.guid:
            method.check(caller, Permission.META)
        if section == "meta-tower":
            description = method.describe(EXTENSIBLE).to_mapping()
            self._attach_components(description, method)
            return description, ItemHandle(method, _TowerContainer(self))
        description = method.describe(section).to_mapping()
        self._attach_components(description, method)
        if section == FIXED:
            return description, None
        container = self.containers.container_of("method", name)
        return description, ItemHandle(method, container)

    @staticmethod
    def _attach_components(description: dict, method: MROMMethod) -> None:
        """META-privileged self-representation includes the portable
        source of the method's components — the owner can read back what
        it previously installed (needed e.g. for update rollback)."""
        if method.portable:
            description["components"] = method.pack_components()

    def _lookup_method_or_tower(self, name: str) -> tuple[MROMMethod, str]:
        if name == "invoke" and self._meta_invokes:
            return self._meta_invokes[-1], "meta-tower"
        return self.containers.lookup_method(name)

    def _meta_set_method(self, caller: Principal, args: list) -> dict:
        """setMethod(handle, properties) — change method properties:
        'name', 'acl', 'metadata', 'pre', 'post', 'body'."""
        handle, properties = _expect(args, 2, "setMethod")
        method = self._resolve_handle(handle, "method")
        if not isinstance(method, MROMMethod):
            raise StructureError("setMethod handle does not refer to a method")
        if caller.guid != self.guid:
            method.check(caller, Permission.META)
        in_tower = any(method is level for level in self._meta_invokes)
        if not in_tower:
            section = self.containers.section_of("method", method.name)
            if section == FIXED:
                raise FixedSectionError(
                    f"method {method.name!r} is in the fixed section; "
                    "setMethod applies only to extensible items"
                )
        self._apply_method_properties(method, properties, in_tower)
        section = EXTENSIBLE if in_tower else self.containers.section_of(
            "method", method.name
        )
        return method.describe(section).to_mapping()

    def _apply_method_properties(
        self, method: MROMMethod, properties: Mapping, in_tower: bool
    ) -> None:
        if "name" in properties and not in_tower:
            container = self.containers.container_of("method", method.name)
            container.rename(method.name, properties["name"])
        if "acl" in properties:
            acl = properties["acl"]
            if isinstance(acl, Mapping):
                acl = AccessControlList.from_description(dict(acl))
            method.set_acl(acl)
        if "metadata" in properties:
            method.update_metadata(properties["metadata"])
        # verify replacement components *before* touching the method, so a
        # rejected setMethod leaves it exactly as it was
        staged: dict[str, Any] = {}
        for role_name, role in (("pre", CodeRole.PRE), ("post", CodeRole.POST),
                                ("body", CodeRole.BODY)):
            if role_name in properties:
                carrier = as_code(
                    properties[role_name], role, label=f"{method.name}.{role_name}"
                )
                if carrier is not None and carrier.portable:
                    carrier.compile_now()  # type: ignore[attr-defined]
                staged[role_name] = carrier
        if "pre" in staged:
            method.pre = staged["pre"]
            method.touch()
        if "post" in staged:
            method.post = staged["post"]
            method.touch()
        if "body" in staged:
            if staged["body"] is None:
                raise StructureError(f"method {method.name!r} requires a body")
            method.body = staged["body"]
            method.touch()

    def _meta_add_method(self, caller: Principal, args: list) -> dict:
        """addMethod(name, body[, properties]) — extensible section.

        ``addMethod("invoke", ...)`` pushes a new meta-invoke level onto
        the tower (meta-mutability; requires ``extensible_meta``).
        """
        name, body, properties = _expect_between(args, 2, 3, "addMethod")
        properties = properties or {}
        acl = properties.get("acl")
        if isinstance(acl, Mapping):
            acl = AccessControlList.from_description(dict(acl))
        method = MROMMethod(
            name,
            body,
            pre=properties.get("pre"),
            post=properties.get("post"),
            acl=acl,
            metadata=properties.get("metadata"),
        ).verify()  # reject hostile code at install time, not first call
        if name == "invoke":
            self._push_meta_invoke(method)
            return method.describe(EXTENSIBLE).to_mapping()
        self.containers.add_extensible(method)
        return method.describe(EXTENSIBLE).to_mapping()

    def _meta_delete_method(self, caller: Principal, args: list) -> dict:
        """deleteMethod(name) — extensible section only; for 'invoke',
        pops the top meta-invoke level."""
        (name,) = _expect(args, 1, "deleteMethod")
        if name == "invoke" and self._meta_invokes:
            method = self._meta_invokes[-1]
            if caller.guid != self.guid:
                method.check(caller, Permission.META)
            return self._pop_meta_invoke().describe(EXTENSIBLE).to_mapping()
        method, _section = self.containers.lookup_method(name)
        if caller.guid != self.guid:
            method.check(caller, Permission.META)
        removed = self.containers.remove_extensible("method", name)
        return removed.describe(EXTENSIBLE).to_mapping()

    def _meta_reflective_invoke(self, caller: Principal, args: list) -> Any:
        """invoke(name, args) — the reflective copy of the invocation
        mechanism; "used to invoke any method of the object, including
        meta-methods"."""
        name, call_args = _expect_between(args, 1, 2, "invoke")
        return self._invoker.invoke(caller, name, call_args or [])

    # ------------------------------------------------------------------
    # description
    # ------------------------------------------------------------------

    def describe_items(self) -> list[ItemDescription]:
        descriptions = self.containers.describe_all()
        for level, method in enumerate(self._meta_invokes, start=1):
            description = method.describe(EXTENSIBLE)
            descriptions.append(
                ItemDescription(
                    name=f"invoke@level{level}",
                    category="method",
                    section=EXTENSIBLE,
                    portable=description.portable,
                    has_pre=description.has_pre,
                    has_post=description.has_post,
                    version=description.version,
                    acl=description.acl,
                    metadata=dict(description.metadata, meta_level=level),
                )
            )
        return descriptions

    def __repr__(self) -> str:
        label = self.principal.display_name or self.guid
        tower = f", tower={len(self._meta_invokes)}" if self._meta_invokes else ""
        return f"MROMObject({label!r}, {self.containers!r}{tower})"


class _TowerContainer:
    """Adapter so :class:`ItemHandle` validity works for tower levels."""

    __slots__ = ("_obj",)

    def __init__(self, obj: MROMObject):
        self._obj = obj

    def holds(self, item: Any) -> bool:
        return any(item is level for level in self._obj.meta_invoke_chain())


def _meta_body(implementation):
    """Adapt a privileged implementation to the method-body convention."""

    def body(self_view: "SelfView", args: list, ctx) -> Any:
        return implementation(ctx.caller, list(args))

    body.__name__ = implementation.__name__.lstrip("_")
    return body


def _expect(args: Sequence, count: int, operation: str) -> Sequence:
    if len(args) != count:
        raise StructureError(
            f"{operation} expects {count} argument(s), got {len(args)}"
        )
    return args


def _expect_between(args: Sequence, low: int, high: int, operation: str) -> list:
    if not (low <= len(args) <= high):
        raise StructureError(
            f"{operation} expects {low}..{high} arguments, got {len(args)}"
        )
    padded = list(args) + [None] * (high - len(args))
    return padded


class SelfView:
    """The facade a method body receives as ``self``.

    Operations run with the *object's own principal* as caller, which the
    Match phase treats as trusted — an object is always allowed to operate
    on itself (self-containment). The facade deliberately exposes no
    underscore attributes so it is safe to hand to sandboxed portable
    code.
    """

    def __init__(self, obj: MROMObject):
        # stored under a name the sandbox cannot reach (dunder-mangled
        # access is rejected by the verifier)
        object.__setattr__(self, "_SelfView__obj", obj)

    # read-only identity ---------------------------------------------------

    @property
    def guid(self) -> str:
        return self.__obj.guid

    @property
    def owner_guid(self) -> str:
        return self.__obj.owner.guid

    @property
    def env(self) -> dict:
        return self.__obj.environment

    # value access ----------------------------------------------------------

    def get(self, name: str) -> Any:
        return self.__obj.get_data(name, caller=self.__obj.principal)

    def set(self, name: str, value: Any) -> None:
        self.__obj.set_data(name, value, caller=self.__obj.principal)

    def has_data(self, name: str) -> bool:
        return self.__obj.containers.has_data(name)

    def has_method(self, name: str) -> bool:
        return self.__obj.containers.has_method(name)

    # sibling invocation ------------------------------------------------------

    def call(self, name: str, *args: Any) -> Any:
        return self.__obj.invoke(name, list(args), caller=self.__obj.principal)

    def call_primitive(self, name: str, *args: Any) -> Any:
        return self.__obj.invoke_primitive(
            name, list(args), caller=self.__obj.principal
        )

    # reflective conveniences (routed through the meta-methods) ---------------

    def add_data(self, name: str, value: Any, properties: Mapping | None = None):
        return self.call("addDataItem", name, value, dict(properties or {}))

    def delete_data(self, name: str):
        return self.call("deleteDataItem", name)

    def add_method(self, name: str, body: Any, properties: Mapping | None = None):
        return self.call("addMethod", name, body, dict(properties or {}))

    def delete_method(self, name: str):
        return self.call("deleteMethod", name)

    def data_names(self) -> list[str]:
        containers = self.__obj.containers
        return list(containers.fixed_data.names() + containers.ext_data.names())

    def method_names(self) -> list[str]:
        containers = self.__obj.containers
        return list(
            containers.fixed_methods.names() + containers.ext_methods.names()
        )

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("SelfView is read-only; use set()/add_data()")

    def __repr__(self) -> str:
        return f"SelfView({self.__obj.guid})"
