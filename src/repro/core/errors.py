"""Exception hierarchy for the MROM reproduction.

Every error raised by this library derives from :class:`MROMError`, so that
host environments embedding mobile objects can contain *all* model-level
failures with a single ``except MROMError`` — an aspect of the paper's
self-containment requirement: a misbehaving guest object must never take
its host down with an unanticipated exception type.

The hierarchy mirrors the phases of the paper's level-0 invocation
mechanism (Lookup -> Match -> Apply) and the surrounding substrates
(naming, marshaling, mobility, persistence, network).
"""

from __future__ import annotations

import re


class MROMError(Exception):
    """Base class of every error raised by the MROM library."""


# ---------------------------------------------------------------------------
# Structure errors (containers, items, sections)
# ---------------------------------------------------------------------------


class StructureError(MROMError):
    """Base class for errors concerning an object's structure."""


class ItemNotFoundError(StructureError, KeyError):
    """Lookup phase failed: no item with the requested name exists.

    Subclasses ``KeyError`` so container code can participate in ordinary
    Python mapping idioms.
    """

    def __init__(self, name: str, section: str = "any"):
        super().__init__(name)
        self.name = name
        self.section = section

    def __str__(self) -> str:  # KeyError.__str__ would repr() the name
        return f"no item named {self.name!r} (searched section: {self.section})"


class MethodNotFoundError(ItemNotFoundError):
    """Lookup phase failed for a method specifically."""


class DataItemNotFoundError(ItemNotFoundError):
    """Lookup phase failed for a data item specifically."""


class DuplicateItemError(StructureError):
    """An item with the requested name already exists in the object.

    MROM forbids an extensible item shadowing a fixed one: the fixed
    section is the portion of the object "whose structure and behavior is
    always guaranteed to exist" (paper, Section 3), and shadowing would
    silently change guaranteed semantics.
    """

    def __init__(self, name: str, section: str = "unknown"):
        super().__init__(f"item {name!r} already exists in section {section!r}")
        self.name = name
        self.section = section


class FixedSectionError(StructureError):
    """Attempted run-time mutation of the fixed section of an object.

    Items "defined in the fixed section of the object ... may not be
    changed during the object's lifetime" (paper, Section 3).
    """


class SealedContainerError(FixedSectionError):
    """A sealed container rejected an add/remove/replace operation."""


class StaleHandleError(StructureError):
    """An item handle outlived the item it referred to.

    ``getDataItem``/``getMethod`` return handles; if the underlying item is
    deleted or replaced, previously issued handles become stale and any
    ``set*`` through them fails with this error rather than silently
    resurrecting or corrupting the item.
    """


# ---------------------------------------------------------------------------
# Security errors (the Match phase)
# ---------------------------------------------------------------------------


class SecurityError(MROMError):
    """Base class for security failures."""


class AccessDeniedError(SecurityError):
    """Match phase failed: the caller is not on the item's ACL.

    Carries enough context for audit trails without leaking the item's
    internals to the denied caller.
    """

    def __init__(self, caller: str, item: str, permission: str):
        super().__init__(
            f"principal {caller!r} denied {permission!r} on item {item!r}"
        )
        self.caller = caller
        self.item = item
        self.permission = permission


class PolicyViolationError(SecurityError):
    """A host- or guest-level policy refused an operation outright."""


# ---------------------------------------------------------------------------
# Apply-phase errors (pre/body/post)
# ---------------------------------------------------------------------------


class InvocationError(MROMError):
    """Base class for errors raised while applying a method."""


class PreProcedureVeto(InvocationError):
    """The pre-procedure returned False, vetoing the method body.

    "A False return value from pre-procedure prevents from invoking the
    body of the method" (paper, Section 3.1). The veto is surfaced as an
    exception so callers can distinguish a veto from a None-returning body.
    """

    def __init__(self, method: str, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(f"pre-procedure vetoed invocation of {method!r}{detail}")
        self.method = method
        self.reason = reason


class PostProcedureError(InvocationError):
    """The post-procedure returned False.

    "a False from a post-procedure raises an exception" (paper, Section
    3.1). The body already ran; this signals a violated post-assertion.
    """

    def __init__(self, method: str, result: object = None, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(f"post-procedure failed for {method!r}{detail}")
        self.method = method
        self.result = result
        self.reason = reason


class InvocationDepthError(InvocationError):
    """The meta-invoke chain exceeded the configured maximum depth."""


class ProcedureSignatureError(InvocationError):
    """A pre-/post-procedure returned something other than a boolean.

    The paper requires both wrapping procedures to "always return a
    boolean value"; anything else is a programming error we refuse to
    coerce silently.
    """


# ---------------------------------------------------------------------------
# Weak-typing errors
# ---------------------------------------------------------------------------


class TypingError(MROMError):
    """Base class for weak-typing failures."""


class CoercionError(TypingError):
    """Generic coercion between kinds failed for a concrete value."""

    def __init__(self, value: object, target: str, reason: str = ""):
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"cannot coerce {value!r} to kind {target}{detail}"
        )
        self.value = value
        self.target = target


class KindError(TypingError):
    """A value did not conform to its item's declared dynamic kind."""


# ---------------------------------------------------------------------------
# Substrate errors
# ---------------------------------------------------------------------------


class NamingError(MROMError):
    """Decentralized naming failure (unknown name, malformed address...)."""


_GENERATION = re.compile(r"generation=(\d+)")


class StaleLeaseError(NamingError):
    """A client acted on a directory lease the cluster has moved past.

    The serving site compares the lease's placement *generation* against
    its own before touching the object — the MutationClock idiom from
    the invocation cache applied to placement. A mismatch fails fast:
    nothing ran, so the request is safe to re-issue once the client has
    re-resolved. The error carries the refusing side's current
    generation so the client knows how far behind it was; ``generation``
    is embedded in the message text (``generation=N``) because wire
    rebuilds (:func:`error_for_name`) only preserve the message.
    """

    def __init__(
        self,
        message: str = "",
        *,
        name: str = "",
        generation: int | None = None,
    ):
        if not message:
            message = (
                f"stale lease for {name!r}: "
                f"current generation={max(generation or 0, 0)}"
            )
        super().__init__(message)
        self.name = name
        if generation is None:
            match = _GENERATION.search(message)
            generation = int(match.group(1)) if match else 0
        self.generation = generation


class MarshalError(MROMError):
    """The wire format could not encode or decode a value."""


class MobilityError(MROMError):
    """An object could not be packed, transferred or installed."""


class NotPortableError(MobilityError):
    """The object contains native (non-mobile) code and cannot migrate."""

    def __init__(self, obj: str, offenders: tuple[str, ...] = ()):
        names = ", ".join(offenders) if offenders else "<unknown>"
        super().__init__(
            f"object {obj!r} is not portable; native-code items: {names}"
        )
        self.offenders = tuple(offenders)


class TransferUnresolvedError(MobilityError):
    """A two-phase transfer timed out in an ambiguous state.

    The PREPARE may or may not have settled at the destination; the
    local original is still registered (nothing was unregistered without
    a confirmed ACK). :meth:`~repro.mobility.transfer.MobilityManager.reconcile`
    queries the destination and resolves the transfer either way.
    """

    def __init__(self, transfer_id: str, guid: str, dst: str):
        super().__init__(
            f"transfer {transfer_id} of {guid} to {dst!r} is unresolved "
            "(no ACK; reconcile once the destination is reachable)"
        )
        self.transfer_id = transfer_id
        self.guid = guid
        self.dst = dst


class SandboxViolation(MobilityError, SecurityError):
    """Portable code used a construct outside the mobile-code whitelist.

    When raised by the verifier, ``diagnostic`` carries the structured
    :class:`~repro.analysis.diagnostics.Diagnostic` form of the finding
    (rule id, severity, source span) for analysis tooling; ad-hoc raisers
    may leave it None.
    """

    def __init__(self, construct: str, detail: str = "", diagnostic=None):
        extra = f": {detail}" if detail else ""
        super().__init__(f"forbidden construct {construct!r}{extra}")
        self.construct = construct
        self.diagnostic = diagnostic


class PersistenceError(MROMError):
    """The self-contained persistence scheme failed to write or restore."""


class NetworkError(MROMError):
    """Simulated-network failure (unreachable node, partition, timeout)."""


class PartitionError(NetworkError):
    """The destination is unreachable due to a network partition."""


class OverloadError(NetworkError):
    """A site's admission window is full; the request was shed.

    Structured backpressure: the serving site refused the request
    *before* executing it (nothing ran, nothing needs undoing), so a
    caller may safely retry later or route elsewhere. Counted as
    ``site.shed`` in the metrics registry and visible as ``site.shed``
    events in the telemetry stream.
    """


class RequestTimeoutError(NetworkError):
    """A request exhausted its retry budget without a reply.

    Crucially *ambiguous*: at least one attempt reached the wire, so the
    remote side may or may not have executed the request. Callers that
    need exactly-once semantics must resolve the ambiguity out of band
    (the mobility layer does, via ``transfer.query`` reconciliation).
    """


class RemoteInvocationError(NetworkError):
    """A remote invocation failed; wraps the remote error description."""

    def __init__(self, message: str, remote_type: str = ""):
        super().__init__(message)
        self.remote_type = remote_type


# ---------------------------------------------------------------------------
# Concurrency errors
# ---------------------------------------------------------------------------


class ConcurrencyError(MROMError):
    """Base class for synchronization/atomicity failures."""


class TransactionError(ConcurrencyError):
    """An atomic mutation block could not commit and was rolled back."""


class ReentrancyError(ConcurrencyError):
    """An invocation re-entered a non-reentrant object."""


# ---------------------------------------------------------------------------
# Language (MPL) errors
# ---------------------------------------------------------------------------


class MPLError(MROMError):
    """Base class for the MPL mobile-programming-language front end."""


class MPLSyntaxError(MPLError):
    """The MPL source text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class MPLRuntimeError(MPLError):
    """An MPL program failed while executing."""


# ---------------------------------------------------------------------------
# rebuilding remote failures by wire name
# ---------------------------------------------------------------------------


def _registry() -> dict:
    """Every MROMError subclass, keyed by class name."""
    mapping: dict[str, type] = {}
    stack: list[type] = [MROMError]
    while stack:
        cls = stack.pop()
        mapping[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return mapping


def error_for_name(name: str, message: str = "") -> MROMError:
    """Rebuild a remote failure from its wire ``error`` name.

    The reply convention carries failures as ``{error: <type name>,
    message: <text>}``; collapsing them all into one local type loses
    the distinction callers need (denial vs absence vs overload). Known
    names come back as an instance of the matching class; unknown names
    degrade to :class:`NetworkError` with the name preserved in the
    message. Classes whose constructors demand structured context
    (e.g. :class:`AccessDeniedError`) are rebuilt with only the wire
    message — the type and text survive the trip, the context fields do
    not.
    """
    cls = _registry().get(name)
    if cls is None:
        return NetworkError(f"{name or 'NetworkError'}: {message}")
    try:
        return cls(message)
    except TypeError:
        error = cls.__new__(cls)
        Exception.__init__(error, message)
        return error
