"""Weak typing for MROM: value kinds and generic coercion.

The paper's *weak typing* requirement (Section 1) has two halves:

1. No long-term structural guarantees — items are untyped by default and a
   declared kind, if any, is a *dynamic* property that can change at run
   time via ``setDataItem``.
2. Generic coercion — "to transform a value that is represented as HTML
   text into an integer, when arithmetic operation should be performed on
   that value".

This module provides the kind taxonomy (:class:`Kind`), classification of
arbitrary Python values (:func:`kind_of`), and the generic coercion matrix
(:func:`coerce`). Everything here is pure and deterministic; it is the
foundation the marshaling wire format and the item machinery build on.
"""

from __future__ import annotations

import enum
import html as _html
import math
import re
from typing import Any, Callable, Iterable

from ..telemetry import state as _telemetry
from .errors import CoercionError, KindError

__all__ = [
    "Kind",
    "kind_of",
    "coerce",
    "conforms",
    "strip_html",
    "HtmlText",
    "LazyCell",
]


class LazyCell:
    """A deferred value: decoded from its wire bytes on first touch.

    The zero-copy unmarshal path (:func:`repro.net.marshal.
    unmarshal_lazy`) hands untouched payload items around as cells
    backed by slices of the original message; a
    :class:`~repro.core.items.DataItem` stores the cell as-is and
    materializes it the first time anything reads the value. The base
    class lives here, below both :mod:`repro.net` and
    :mod:`repro.core.items`, so the item layer can recognize cells
    without depending on the wire format.
    """

    __slots__ = ()

    def materialize(self):
        """Decode and return the value (idempotent)."""
        raise NotImplementedError


class Kind(enum.Enum):
    """The dynamic-kind taxonomy of MROM values.

    MROM methods "receive an arbitrary number of untyped objects as
    parameters"; kinds exist only as optional dynamic annotations on data
    items and as tags in the wire format.
    """

    NULL = "null"
    BOOLEAN = "boolean"
    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    HTML = "html"
    BINARY = "binary"
    LIST = "list"
    MAPPING = "mapping"
    REFERENCE = "reference"
    ANY = "any"

    def __repr__(self) -> str:
        return f"Kind.{self.name}"


class HtmlText(str):
    """A string tagged as HTML markup.

    Weak typing needs to distinguish "the text ``<b>42</b>``" from "the
    HTML document whose visible content is ``42``": coercion of the former
    to :data:`Kind.INTEGER` fails, of the latter succeeds. Instances are
    ordinary strings in every other respect.
    """

    __slots__ = ()

    def visible_text(self) -> str:
        """Return the rendered (tag-free, entity-decoded) text content."""
        return strip_html(str(self))


_TAG_RE = re.compile(r"<[^>]*>")
_WS_RE = re.compile(r"\s+")


def strip_html(markup: str) -> str:
    """Strip tags and decode entities, normalising internal whitespace."""
    without_tags = _TAG_RE.sub(" ", markup)
    decoded = _html.unescape(without_tags)
    return _WS_RE.sub(" ", decoded).strip()


def kind_of(value: Any) -> Kind:
    """Classify an arbitrary Python value into the MROM kind taxonomy.

    Classification is structural: any mapping is :data:`Kind.MAPPING`, any
    non-string sequence is :data:`Kind.LIST`. Objects exposing a ``guid``
    attribute (MROM objects, remote references, ambassadors) classify as
    :data:`Kind.REFERENCE`.
    """
    if value is None:
        return Kind.NULL
    if isinstance(value, bool):
        return Kind.BOOLEAN
    if isinstance(value, int):
        return Kind.INTEGER
    if isinstance(value, float):
        return Kind.REAL
    if isinstance(value, HtmlText):
        return Kind.HTML
    if isinstance(value, str):
        return Kind.TEXT
    if isinstance(value, (bytes, bytearray, memoryview)):
        return Kind.BINARY
    if isinstance(value, dict):
        return Kind.MAPPING
    if isinstance(value, (list, tuple)):
        return Kind.LIST
    if hasattr(value, "guid"):
        return Kind.REFERENCE
    raise KindError(f"value of Python type {type(value).__name__} has no MROM kind")


def conforms(value: Any, kind: Kind) -> bool:
    """Return True when *value* already has kind *kind* (or kind is ANY)."""
    if kind is Kind.ANY:
        return True
    try:
        actual = kind_of(value)
    except KindError:
        return False
    if kind is Kind.TEXT and actual is Kind.HTML:
        # every HTML document is text; the converse is not true
        return True
    return actual is kind


# ---------------------------------------------------------------------------
# Coercion
# ---------------------------------------------------------------------------

_TRUE_WORDS = frozenset({"true", "yes", "on", "1", "t", "y"})
_FALSE_WORDS = frozenset({"false", "no", "off", "0", "f", "n", ""})

_NUMBER_RE = re.compile(r"[-+]?(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?")


def _text_of(value: Any) -> str:
    """The textual essence of a value, rendering HTML to visible text."""
    if isinstance(value, HtmlText):
        return value.visible_text()
    if isinstance(value, str):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        try:
            return bytes(value).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CoercionError(value, Kind.TEXT.value, str(exc)) from exc
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return ""
    return str(value)


def _extract_number(text: str) -> str:
    """Find the first numeric literal embedded in *text*.

    Generic coercion is deliberately permissive: the motivating example
    coerces an HTML fragment whose visible content is a number. We accept
    surrounding prose ("salary: 1200 NIS" -> "1200") but reject text with
    no numeric content at all.
    """
    match = _NUMBER_RE.search(text)
    if match is None:
        raise ValueError(f"no numeric content in {text!r}")
    return match.group(0)


def _to_boolean(value: Any) -> bool:
    actual = kind_of(value)
    if actual is Kind.BOOLEAN:
        return bool(value)
    if actual in (Kind.INTEGER, Kind.REAL):
        return value != 0
    if actual in (Kind.TEXT, Kind.HTML, Kind.BINARY):
        word = _text_of(value).strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        raise CoercionError(value, Kind.BOOLEAN.value, "not a boolean word")
    if actual is Kind.NULL:
        return False
    raise CoercionError(value, Kind.BOOLEAN.value)


def _to_integer(value: Any) -> int:
    actual = kind_of(value)
    if actual is Kind.BOOLEAN:
        return int(value)
    if actual is Kind.INTEGER:
        return int(value)
    if actual is Kind.REAL:
        if math.isnan(value) or math.isinf(value):
            raise CoercionError(value, Kind.INTEGER.value, "not finite")
        if value != int(value):
            raise CoercionError(value, Kind.INTEGER.value, "fractional part")
        return int(value)
    if actual in (Kind.TEXT, Kind.HTML, Kind.BINARY):
        text = _text_of(value)
        try:
            literal = _extract_number(text)
        except ValueError as exc:
            raise CoercionError(value, Kind.INTEGER.value, str(exc)) from exc
        number = float(literal)
        if number != int(number):
            raise CoercionError(value, Kind.INTEGER.value, "fractional part")
        return int(number)
    raise CoercionError(value, Kind.INTEGER.value)


def _to_real(value: Any) -> float:
    actual = kind_of(value)
    if actual in (Kind.BOOLEAN, Kind.INTEGER, Kind.REAL):
        return float(value)
    if actual in (Kind.TEXT, Kind.HTML, Kind.BINARY):
        text = _text_of(value)
        try:
            return float(_extract_number(text))
        except ValueError as exc:
            raise CoercionError(value, Kind.REAL.value, str(exc)) from exc
    raise CoercionError(value, Kind.REAL.value)


def _to_text(value: Any) -> str:
    actual = kind_of(value)
    if actual in (Kind.LIST, Kind.MAPPING, Kind.REFERENCE):
        raise CoercionError(value, Kind.TEXT.value, "no canonical text form")
    return _text_of(value)


def _to_html(value: Any) -> HtmlText:
    if isinstance(value, HtmlText):
        return value
    text = _to_text(value)
    return HtmlText(_html.escape(text))


def _to_binary(value: Any) -> bytes:
    actual = kind_of(value)
    if actual is Kind.BINARY:
        return bytes(value)
    if actual in (Kind.TEXT, Kind.HTML):
        return str(value).encode("utf-8")
    raise CoercionError(value, Kind.BINARY.value)


def _to_list(value: Any) -> list:
    actual = kind_of(value)
    if actual is Kind.LIST:
        return list(value)
    if actual is Kind.MAPPING:
        return [[key, val] for key, val in value.items()]
    if actual is Kind.NULL:
        return []
    return [value]


def _to_mapping(value: Any) -> dict:
    actual = kind_of(value)
    if actual is Kind.MAPPING:
        return dict(value)
    if actual is Kind.LIST:
        result = {}
        for element in value:
            if not isinstance(element, (list, tuple)) or len(element) != 2:
                raise CoercionError(
                    value, Kind.MAPPING.value, "list elements are not pairs"
                )
            key, val = element
            result[key] = val
        return result
    if actual is Kind.NULL:
        return {}
    raise CoercionError(value, Kind.MAPPING.value)


def _to_null(value: Any) -> None:
    if value is None:
        return None
    raise CoercionError(value, Kind.NULL.value)


def _to_reference(value: Any) -> Any:
    if kind_of(value) is Kind.REFERENCE:
        return value
    raise CoercionError(value, Kind.REFERENCE.value)


_COERCERS: dict[Kind, Callable[[Any], Any]] = {
    Kind.NULL: _to_null,
    Kind.BOOLEAN: _to_boolean,
    Kind.INTEGER: _to_integer,
    Kind.REAL: _to_real,
    Kind.TEXT: _to_text,
    Kind.HTML: _to_html,
    Kind.BINARY: _to_binary,
    Kind.LIST: _to_list,
    Kind.MAPPING: _to_mapping,
    Kind.REFERENCE: _to_reference,
}


def coerce(value: Any, kind: Kind) -> Any:
    """Coerce *value* to *kind* using MROM's generic coercion matrix.

    Raises :class:`CoercionError` when no meaningful conversion exists.
    ``coerce(x, Kind.ANY)`` is the identity.

    >>> coerce(HtmlText("<td><b>1200</b> NIS</td>"), Kind.INTEGER)
    1200
    """
    if kind is Kind.ANY:
        return value
    coercer = _COERCERS.get(kind)
    if coercer is None:
        raise CoercionError(value, str(kind), "unknown target kind")
    tel = _telemetry.ACTIVE
    if tel is not None:
        tel.metrics.counter("coercions").inc()
    return coercer(value)


def coerce_all(values: Iterable[Any], kinds: Iterable[Kind]) -> list:
    """Coerce a parameter array element-wise; lengths must match."""
    values = list(values)
    kinds = list(kinds)
    if len(values) != len(kinds):
        raise CoercionError(values, "parameter-array", "arity mismatch")
    return [coerce(value, kind) for value, kind in zip(values, kinds)]
