"""Self-representation: how a host interrogates a newcomer object.

"This capability is important when the host environment is not intimately
familiar with the arriving object or even with its interface, in which
case it must be able to interrogate the newcomer object, decide whether
to invoke it, and find out how to invoke it." (Section 1.)

Interrogation is *visibility-filtered*: because security is coupled with
encapsulation, an item the viewer may neither read nor invoke nor
meta-manipulate simply does not appear in the description. A host IOO
interrogating a guest Ambassador sees its service methods, not its
owner-only meta-machinery.

Method *signature hints* ride in item metadata under conventional keys:

* ``"doc"`` — human-readable description;
* ``"params"`` — a list of parameter descriptors (name, kind, doc);
* ``"returns"`` — kind of the result;
* ``"tags"`` — free-form capability tags (used by :func:`find_methods`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .acl import ANONYMOUS, Permission, Principal
from .items import ItemDescription
from .mobject import META_METHOD_NAMES, MROMObject

__all__ = [
    "ObjectDescription",
    "describe",
    "interrogate",
    "can_invoke",
    "find_methods",
    "signature_of",
]


@dataclass(frozen=True)
class ObjectDescription:
    """Everything an object reveals about itself to a given viewer."""

    guid: str
    display_name: str
    domain: str
    extensible_meta: bool
    tower_depth: int
    items: tuple[ItemDescription, ...] = ()
    counts: dict = field(default_factory=dict)

    def data_items(self) -> list[ItemDescription]:
        return [item for item in self.items if item.category == "data"]

    def methods(self) -> list[ItemDescription]:
        return [item for item in self.items if item.category == "method"]

    def names(self) -> list[str]:
        return [item.name for item in self.items]

    def to_mapping(self) -> dict:
        """Marshal-friendly form, shippable to a remote interrogator."""
        return {
            "guid": self.guid,
            "display_name": self.display_name,
            "domain": self.domain,
            "extensible_meta": self.extensible_meta,
            "tower_depth": self.tower_depth,
            "items": [item.to_mapping() for item in self.items],
            "counts": dict(self.counts),
        }


def describe(obj: MROMObject, viewer: Principal = ANONYMOUS) -> ObjectDescription:
    """The object as *viewer* is entitled to see it.

    :data:`~repro.core.acl.SYSTEM` and the object itself see everything;
    any other viewer sees only items visible to it under the
    encapsulation-as-security rule.
    """
    privileged = viewer.guid in (obj.guid, "mrom:system")
    visible: list[ItemDescription] = []
    for item, _category, section in obj.containers.iter_with_sections():
        if privileged or item.visible_to(viewer):
            visible.append(item.describe(section))
    for level, method in enumerate(obj.meta_invoke_chain(), start=1):
        if privileged or method.visible_to(viewer):
            description = method.describe("extensible")
            visible.append(
                ItemDescription(
                    name=f"invoke@level{level}",
                    category="method",
                    section="extensible",
                    portable=description.portable,
                    has_pre=description.has_pre,
                    has_post=description.has_post,
                    version=description.version,
                    acl=description.acl,
                    metadata=dict(description.metadata, meta_level=level),
                )
            )
    return ObjectDescription(
        guid=obj.guid,
        display_name=obj.principal.display_name,
        domain=obj.principal.domain,
        extensible_meta=obj.extensible_meta,
        tower_depth=len(obj.meta_invoke_chain()),
        items=tuple(visible),
        counts=obj.containers.counts(),
    )


def interrogate(obj: MROMObject, viewer: Principal = ANONYMOUS) -> dict:
    """The newcomer-object protocol: what can *viewer* actually call?

    Returns a mapping of invocable method name to its signature hints —
    the "find out how to invoke it" step. Meta-methods are included only
    when the viewer may invoke them (normally only the owner).
    """
    result: dict[str, dict] = {}
    privileged = viewer.guid in (obj.guid, "mrom:system")
    for item, category, _section in obj.containers.iter_with_sections():
        if category != "method":
            continue
        if privileged or item.acl.permits(viewer, Permission.INVOKE):
            result[item.name] = signature_of(item.metadata)
    return result


def can_invoke(obj: MROMObject, viewer: Principal, name: str) -> bool:
    """Would the Match phase admit *viewer* calling *name*? (No side
    effects — the decision procedure hosts use before invoking.)"""
    if viewer.guid in (obj.guid, "mrom:system"):
        return obj.containers.has_method(name)
    if not obj.containers.has_method(name):
        return False
    method, _section = obj.containers.lookup_method(name)
    return method.acl.permits(viewer, Permission.INVOKE)


def find_methods(
    obj: MROMObject,
    viewer: Principal = ANONYMOUS,
    tags: Iterable[str] = (),
) -> list[str]:
    """Discover methods by capability tags (all given tags must match)."""
    wanted = set(tags)
    names: list[str] = []
    for name, signature in interrogate(obj, viewer).items():
        if wanted <= set(signature.get("tags", [])):
            names.append(name)
    return names


def signature_of(metadata: dict) -> dict:
    """Extract the conventional signature hints from item metadata."""
    return {
        "doc": metadata.get("doc", ""),
        "params": list(metadata.get("params", [])),
        "returns": metadata.get("returns", "any"),
        "tags": list(metadata.get("tags", [])),
        "meta": bool(metadata.get("meta", False)),
    }


def is_meta_method(name: str) -> bool:
    """Is *name* one of the paper's bundled meta-method names?"""
    return name in META_METHOD_NAMES
