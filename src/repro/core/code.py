"""Method-code carriers: native (local) and portable (mobile) code.

In the paper, "the method class holds MROM method components (body, pre-
and post-procedures) as Java methods"; portability came from JVM
bytecode. Here a method component is a :class:`MethodCode` carrier in one
of two flavours:

* :class:`NativeCode` wraps an ordinary Python callable. Fast, fully
  general — and *not portable*: an object containing native code refuses
  to migrate (see :class:`repro.core.errors.NotPortableError`).
* :class:`PortableCode` carries *source text* verified and compiled by the
  mobile-code sandbox (:mod:`repro.mobility.sandbox`). Portable code is
  what Ambassadors and other mobile objects are made of.

Calling conventions (the weak-typing requirement realized — bodies
receive one array of untyped values):

========  =================================
role      parameters
========  =================================
BODY      ``self, args, ctx``
PRE       ``self, args, ctx`` (returns bool)
POST      ``self, args, result, ctx`` (returns bool)
META      ``self, args, ctx`` (a meta-invoke level; ``ctx.proceed()``)
========  =================================

``self`` is the object facade (:class:`repro.core.mobject.SelfView`),
``args`` the untyped parameter list, ``ctx`` the invocation context.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Mapping

from .errors import MobilityError, ProcedureSignatureError

__all__ = [
    "CodeRole",
    "MethodCode",
    "NativeCode",
    "PortableCode",
    "as_code",
    "code_from_description",
]


class CodeRole(enum.Enum):
    """Which method component a piece of code implements."""

    BODY = "body"
    PRE = "pre"
    POST = "post"
    META = "meta"

    @property
    def parameters(self) -> tuple[str, ...]:
        if self is CodeRole.POST:
            return ("self", "args", "result", "ctx")
        return ("self", "args", "ctx")


class MethodCode:
    """Abstract carrier of one method component."""

    #: True when this code can be packed and shipped to another site.
    portable: bool = False

    role: CodeRole

    def call(self, *call_args: Any) -> Any:
        """Execute the component with role-appropriate arguments."""
        raise NotImplementedError

    def describe(self) -> dict:
        """A marshal-friendly description (used by pack/unpack)."""
        raise NotImplementedError

    def call_boolean(self, *call_args: Any) -> bool:
        """Execute a pre/post procedure, enforcing the boolean contract.

        The paper: wrapping procedures "always return a boolean value".
        A non-boolean return is a programming error, not a truthiness
        judgement call, so it raises rather than coercing.
        """
        result = self.call(*call_args)
        if not isinstance(result, bool):
            raise ProcedureSignatureError(
                f"{self.role.value}-procedure returned {type(result).__name__}, "
                "expected bool"
            )
        return result


class NativeCode(MethodCode):
    """A method component backed by a local Python callable.

    Useful for host-side objects and for the bundled meta-methods, whose
    level-0 behaviour is deliberately implemented outside the reflective
    tower ("implemented in a more efficient way", Section 3.1).
    """

    __slots__ = ("func", "role", "label")

    portable = False

    def __init__(self, func: Callable, role: CodeRole = CodeRole.BODY, label: str = ""):
        if not callable(func):
            raise TypeError(f"NativeCode requires a callable, got {type(func).__name__}")
        self.func = func
        self.role = role
        self.label = label or getattr(func, "__name__", "<native>")

    def call(self, *call_args: Any) -> Any:
        return self.func(*call_args)

    def describe(self) -> dict:
        return {"flavour": "native", "role": self.role.value, "label": self.label}

    def __repr__(self) -> str:
        return f"NativeCode({self.label!r}, role={self.role.value})"


class PortableCode(MethodCode):
    """A method component carried as verified mobile source text.

    Compilation is lazy and cached: the source is verified and compiled by
    the sandbox on first call (or eagerly via :meth:`compile_now`, which
    installers use to reject hostile code before execution). *bindings*
    are host-supplied names visible to the code — the installation
    context; they are intentionally **not** packed with the code, since a
    new host provides its own.
    """

    __slots__ = ("source", "role", "label", "_compiled", "_bindings")

    portable = True

    def __init__(
        self,
        source: str,
        role: CodeRole = CodeRole.BODY,
        label: str = "",
        bindings: Mapping[str, Any] | None = None,
    ):
        if not isinstance(source, str):
            raise TypeError("PortableCode requires source text")
        self.source = source
        self.role = role
        self.label = label or "<portable>"
        self._bindings = dict(bindings) if bindings else {}
        self._compiled: Callable | None = None

    def compile_now(self) -> None:
        """Verify and compile immediately (idempotent)."""
        if self._compiled is None:
            # local import: keeps core importable without the mobility
            # package at type-checking time and avoids a cycle.
            from ..mobility.sandbox import build_function

            self._compiled = build_function(
                self.source,
                self.role.parameters,
                function_name="portable",
                source_name=self.label,
                extra_bindings=self._bindings,
            )

    def rebind(self, bindings: Mapping[str, Any]) -> None:
        """Replace host bindings (new installation context); recompiles."""
        self._bindings = dict(bindings)
        self._compiled = None

    def call(self, *call_args: Any) -> Any:
        self.compile_now()
        assert self._compiled is not None
        return self._compiled(*call_args)

    def describe(self) -> dict:
        return {
            "flavour": "portable",
            "role": self.role.value,
            "label": self.label,
            "source": self.source,
        }

    def __repr__(self) -> str:
        return f"PortableCode({self.label!r}, role={self.role.value}, {len(self.source)} chars)"


def as_code(
    component: "MethodCode | Callable | str | None",
    role: CodeRole = CodeRole.BODY,
    label: str = "",
) -> MethodCode | None:
    """Coerce the accepted method-component spellings to a carrier.

    * ``None`` stays ``None`` (no pre/post procedure attached);
    * a string is portable source text;
    * a callable is native code;
    * an existing carrier passes through (its role must match).
    """
    if component is None:
        return None
    if isinstance(component, MethodCode):
        if component.role is not role:
            raise MobilityError(
                f"code carrier has role {component.role.value}, expected {role.value}"
            )
        return component
    if isinstance(component, str):
        return PortableCode(component, role=role, label=label)
    if callable(component):
        return NativeCode(component, role=role, label=label)
    raise TypeError(
        f"cannot build method code from {type(component).__name__}"
    )


def code_from_description(description: dict) -> MethodCode:
    """Rebuild a carrier from :meth:`MethodCode.describe` output.

    Only portable code can be rebuilt — a native description is a stub
    that names what was lost, and attempting to rebuild it is a mobility
    error. This is where the "self-containment or it does not travel"
    rule is enforced on the receiving side.
    """
    flavour = description.get("flavour")
    role = CodeRole(description.get("role", "body"))
    label = description.get("label", "")
    if flavour == "portable":
        return PortableCode(description["source"], role=role, label=label)
    if flavour == "native":
        raise MobilityError(
            f"cannot reconstruct native code {label!r} from a description"
        )
    raise MobilityError(f"unknown code flavour {flavour!r}")
