"""Specialization of MROM objects: static templates and dynamic cloning.

"Static (not in run-time) specialization of MROM objects is achieved
using Java sub-classing. Copying the containers of the super-class to the
sub-class, as well as adding items ... are done in the sub-class
constructor." (Section 4.)

Our Python analog is :class:`ObjectTemplate`: a declarative description
of an object's fixed (and initial extensible) items. A template can
:meth:`~ObjectTemplate.derive` a child template — the sub-classing analog;
instantiation walks the ancestor chain root-to-leaf, copies every
inherited fixed item into the new object's constructor window, then seals.
Only the *fixed* section participates in specialization: "items of the
extensible portion ... can not be counted on to have any certain
semantics at any given time", so a child template may not rely on them
(they are still copied as initial state, but a child overriding them is
legal, unlike fixed items).

"The mutable nature of MROM objects provides means of dynamic (in-
runtime) specialization ... similar to that of inheritance in
prototype-based languages (e.g., Self and Cecil)." — :func:`clone` copies
a live object, after which the copy diverges through its own meta-methods.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from .acl import AccessControlList, Principal
from .code import MethodCode, NativeCode, PortableCode
from .errors import DuplicateItemError, StructureError
from .items import DataItem, MROMMethod
from .mobject import MROMObject
from .values import Kind

__all__ = ["DataSpec", "MethodSpec", "ObjectTemplate", "clone", "clone_code"]


@dataclass(frozen=True)
class DataSpec:
    """Declarative description of one data item in a template."""

    name: str
    value: Any = None
    kind: Kind = Kind.ANY
    acl: AccessControlList | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> DataItem:
        return DataItem(
            self.name,
            copy.deepcopy(self.value),
            kind=self.kind,
            acl=self.acl.copy() if self.acl is not None else None,
            metadata=dict(self.metadata),
        )


@dataclass(frozen=True)
class MethodSpec:
    """Declarative description of one method in a template."""

    name: str
    body: Any
    pre: Any = None
    post: Any = None
    acl: AccessControlList | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> MROMMethod:
        return MROMMethod(
            self.name,
            _fresh_component(self.body),
            pre=_fresh_component(self.pre),
            post=_fresh_component(self.post),
            acl=self.acl.copy() if self.acl is not None else None,
            metadata=dict(self.metadata),
        )


def _fresh_component(component: Any) -> Any:
    """Give each instance its own code carrier (carriers are mutable)."""
    if isinstance(component, MethodCode):
        return clone_code(component)
    return component


def clone_code(code: MethodCode) -> MethodCode:
    """An independent carrier with the same behaviour."""
    if isinstance(code, PortableCode):
        return PortableCode(code.source, role=code.role, label=code.label)
    if isinstance(code, NativeCode):
        return NativeCode(code.func, role=code.role, label=code.label)
    raise StructureError(f"cannot clone code carrier {type(code).__name__}")


class ObjectTemplate:
    """A reusable recipe for MROM objects, supporting static specialization.

    >>> base = ObjectTemplate("counter")
    >>> base.fixed_data("count", 0)
    >>> base.fixed_method("increment",
    ...     "self.set('count', self.get('count') + 1)\\n"
    ...     "return self.get('count')")
    >>> resettable = base.derive("resettable-counter")
    >>> resettable.fixed_method("reset", "self.set('count', 0)\\nreturn True")
    >>> obj = resettable.instantiate()
    >>> obj.invoke("increment"), obj.invoke("reset")
    (1, True)
    """

    def __init__(
        self,
        name: str,
        parent: "ObjectTemplate | None" = None,
        extensible_meta: bool | None = None,
    ):
        self.name = name
        self.parent = parent
        if extensible_meta is None:
            extensible_meta = parent.extensible_meta if parent else False
        self.extensible_meta = extensible_meta
        self._fixed_data: dict[str, DataSpec] = {}
        self._fixed_methods: dict[str, MethodSpec] = {}
        self._ext_data: dict[str, DataSpec] = {}
        self._ext_methods: dict[str, MethodSpec] = {}

    # -- authoring ---------------------------------------------------------

    def fixed_data(self, name: str, value: Any = None, **options: Any) -> "ObjectTemplate":
        self._check_new_fixed(name, "data")
        self._fixed_data[name] = DataSpec(name, value, **options)
        return self

    def fixed_method(self, name: str, body: Any, **options: Any) -> "ObjectTemplate":
        self._check_new_fixed(name, "method")
        self._fixed_methods[name] = MethodSpec(name, body, **options)
        return self

    def extensible_data(self, name: str, value: Any = None, **options: Any) -> "ObjectTemplate":
        self._ext_data[name] = DataSpec(name, value, **options)
        return self

    def extensible_method(self, name: str, body: Any, **options: Any) -> "ObjectTemplate":
        self._ext_methods[name] = MethodSpec(name, body, **options)
        return self

    def _check_new_fixed(self, name: str, category: str) -> None:
        """Fixed items are guaranteed structure: a child may not redefine
        an ancestor's fixed item (that would change guaranteed semantics
        out from under code written against the ancestor)."""
        for template in self._ancestry():
            specs = template._fixed_data if category == "data" else template._fixed_methods
            if name in specs:
                raise DuplicateItemError(name, f"template {template.name!r} (fixed)")

    # -- derivation (static specialization) ---------------------------------

    def derive(self, name: str, extensible_meta: bool | None = None) -> "ObjectTemplate":
        """Create a child template — the sub-classing analog."""
        return ObjectTemplate(name, parent=self, extensible_meta=extensible_meta)

    def _ancestry(self) -> Iterator["ObjectTemplate"]:
        """Templates from this one up to the root."""
        template: ObjectTemplate | None = self
        while template is not None:
            yield template
            template = template.parent

    def lineage(self) -> list[str]:
        """Template names root-to-leaf (for descriptions and tests)."""
        return [template.name for template in self._ancestry()][::-1]

    # -- instantiation ----------------------------------------------------------

    def instantiate(
        self,
        guid: str | None = None,
        domain: str = "",
        display_name: str = "",
        owner: Principal | None = None,
        environment: Mapping[str, Any] | None = None,
        meta_acl: AccessControlList | None = None,
    ) -> MROMObject:
        """Build an object: ancestor fixed items first, then seal, then
        the initial extensible items (added through the meta-machinery,
        exactly as any later run-time addition would be)."""
        obj = MROMObject(
            guid=guid,
            domain=domain,
            display_name=display_name or self.name,
            owner=owner,
            extensible_meta=self.extensible_meta,
            environment=environment,
            meta_acl=meta_acl,
        )
        chain = list(self._ancestry())[::-1]  # root first
        for template in chain:
            for spec in template._fixed_data.values():
                obj.containers.add_fixed(spec.build())
            for spec in template._fixed_methods.values():
                obj.containers.add_fixed(spec.build())
        obj.seal()
        # Extensible initial state: a child template's spec overrides an
        # ancestor's (prototype semantics — the latest word wins).
        ext_data: dict[str, DataSpec] = {}
        ext_methods: dict[str, MethodSpec] = {}
        for template in chain:
            ext_data.update(template._ext_data)
            ext_methods.update(template._ext_methods)
        for spec in ext_data.values():
            obj.containers.add_extensible(spec.build())
        for method_spec in ext_methods.values():
            built = method_spec.build()
            if built.name == "invoke":
                raise StructureError(
                    "meta-invoke levels are added at run time via addMethod, "
                    "not declared in templates"
                )
            obj.containers.add_extensible(built)
        obj.environment.setdefault("template", self.name)
        obj.environment.setdefault("lineage", self.lineage())
        return obj


def clone(
    prototype: MROMObject,
    guid: str | None = None,
    display_name: str = "",
    owner: Principal | None = None,
) -> MROMObject:
    """Dynamic (prototype-style) specialization: copy a live object.

    The clone gets independent copies of every item — data values are
    deep-copied, methods get fresh code carriers — plus the prototype's
    meta-invoke tower. It then evolves independently through its own
    meta-methods, "which gives an effect similar to that of inheritance
    in prototype-based languages".
    """
    target = MROMObject(
        guid=guid,
        domain=prototype.principal.domain,
        display_name=display_name or f"clone-of-{prototype.principal.display_name or prototype.guid}",
        owner=owner if owner is not None else prototype.owner,
        extensible_meta=prototype.extensible_meta,
        environment=dict(prototype.environment),
    )
    source = prototype.containers
    for item in source.fixed_data:
        if not isinstance(item, DataItem):  # pragma: no cover - defensive
            continue
        target.containers.add_fixed(_copy_data(item))
    for item in source.fixed_methods:
        if isinstance(item, MROMMethod) and not item.metadata.get("meta"):
            target.containers.add_fixed(_copy_method(item))
    target.seal()
    for item in source.ext_data:
        if isinstance(item, DataItem):
            target.containers.add_extensible(_copy_data(item))
    for item in source.ext_methods:
        if isinstance(item, MROMMethod) and not item.metadata.get("meta"):
            target.containers.add_extensible(_copy_method(item))
    for level in prototype.meta_invoke_chain():
        target._push_meta_invoke(_copy_method(level))
    return target


def _copy_data(item: DataItem) -> DataItem:
    return DataItem(
        item.name,
        copy.deepcopy(item.peek()),
        kind=item.kind,
        acl=item.acl.copy(),
        metadata=dict(item.metadata),
    )


def _copy_method(method: MROMMethod) -> MROMMethod:
    return MROMMethod(
        method.name,
        clone_code(method.body),
        pre=clone_code(method.pre) if method.pre is not None else None,
        post=clone_code(method.post) if method.post is not None else None,
        acl=method.acl.copy(),
        metadata=dict(method.metadata),
    )
