"""MROM — the Mutable Reflective Object Model.

This package is the paper's primary contribution: objects split into
fixed and extensible sections, bundled meta-methods, a level-0 invocation
primitive beneath an optional tower of meta-invoke levels, per-item ACLs
coupling security with encapsulation, and weak typing with generic
coercion.

Quick start::

    from repro.core import MROMObject, Kind

    obj = MROMObject(display_name="greeter")
    obj.define_fixed_data("greeting", "hello")
    obj.define_fixed_method(
        "greet", "return self.get('greeting') + ', ' + str(args[0])"
    )
    obj.seal()
    obj.invoke("greet", ["world"])   # -> 'hello, world'
"""

from .acl import (
    AccessControlList,
    AclEntry,
    ANONYMOUS,
    Decision,
    Permission,
    Principal,
    SYSTEM,
    allow_all,
    deny_all,
    domain_acl,
    owner_only,
    principals_acl,
)
from .code import CodeRole, MethodCode, NativeCode, PortableCode, as_code
from .containers import ContainerSet, ItemContainer, MutationClock
from .fastpath import CACHING_DEFAULT, InvocationCache, set_default as set_fastpath_default
from .errors import (
    AccessDeniedError,
    CoercionError,
    DuplicateItemError,
    FixedSectionError,
    InvocationError,
    ItemNotFoundError,
    MROMError,
    MethodNotFoundError,
    MobilityError,
    NotPortableError,
    PostProcedureError,
    PreProcedureVeto,
    SandboxViolation,
    SealedContainerError,
    SecurityError,
    StaleHandleError,
    StructureError,
)
from .introspection import (
    ObjectDescription,
    can_invoke,
    describe,
    find_methods,
    interrogate,
)
from .invocation import (
    InvocationContext,
    InvocationRecord,
    Invoker,
    MAX_META_LEVELS,
    Phase,
    TraceEvent,
)
from .items import DataItem, ItemDescription, ItemHandle, MROMMethod
from .mobject import META_METHOD_NAMES, MROMObject, SelfView
from .specialization import (
    DataSpec,
    MethodSpec,
    ObjectTemplate,
    clone,
    clone_code,
)
from .values import HtmlText, Kind, coerce, conforms, kind_of, strip_html

__all__ = [
    # model
    "MROMObject",
    "SelfView",
    "META_METHOD_NAMES",
    "ObjectTemplate",
    "DataSpec",
    "MethodSpec",
    "clone",
    "clone_code",
    # items & containers
    "DataItem",
    "MROMMethod",
    "ItemDescription",
    "ItemHandle",
    "ItemContainer",
    "ContainerSet",
    "MutationClock",
    # fast path
    "InvocationCache",
    "CACHING_DEFAULT",
    "set_fastpath_default",
    # code carriers
    "CodeRole",
    "MethodCode",
    "NativeCode",
    "PortableCode",
    "as_code",
    # invocation
    "Invoker",
    "InvocationContext",
    "InvocationRecord",
    "Phase",
    "TraceEvent",
    "MAX_META_LEVELS",
    # security
    "Principal",
    "Permission",
    "AccessControlList",
    "AclEntry",
    "Decision",
    "SYSTEM",
    "ANONYMOUS",
    "allow_all",
    "deny_all",
    "owner_only",
    "domain_acl",
    "principals_acl",
    # weak typing
    "Kind",
    "HtmlText",
    "kind_of",
    "coerce",
    "conforms",
    "strip_html",
    # introspection
    "ObjectDescription",
    "describe",
    "interrogate",
    "can_invoke",
    "find_methods",
    # errors
    "MROMError",
    "StructureError",
    "ItemNotFoundError",
    "MethodNotFoundError",
    "DuplicateItemError",
    "FixedSectionError",
    "SealedContainerError",
    "StaleHandleError",
    "SecurityError",
    "AccessDeniedError",
    "InvocationError",
    "PreProcedureVeto",
    "PostProcedureError",
    "CoercionError",
    "MobilityError",
    "NotPortableError",
    "SandboxViolation",
]
