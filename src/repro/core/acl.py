"""Security coupled with encapsulation: principals, permissions and ACLs.

The paper's security stance (Sections 1, 3.1):

* "the granularity of access availability should be the single object, as
  opposed to classified as either public, private, or other
  inheritance-related visibility categories" — so each item carries an
  *access control list* naming the individual objects (principals) that
  may use it, rather than a visibility keyword.
* Controlled access serves "both for visibility purposes ... as well as
  for ensuring legitimacy" — encapsulation and security are one mechanism.
* Security checks are applied "on one action only — method invocation"
  (the Match phase); data items are reached through get/set methods, so
  the same ACL machinery covers them.

Principals are identified by their object GUID and belong to a *trust
domain* (a dot-separated hierarchy such as ``technion.ee.dsl``). ACL
entries match a concrete principal, a domain subtree, or everyone, and are
evaluated deny-overrides: any applicable DENY entry beats any ALLOW.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..telemetry import state as _telemetry
from .errors import AccessDeniedError

__all__ = [
    "Permission",
    "Principal",
    "SYSTEM",
    "ANONYMOUS",
    "Decision",
    "AclEntry",
    "AccessControlList",
    "allow_all",
    "deny_all",
    "owner_only",
    "domain_acl",
    "principals_acl",
    "note_match",
]


class Permission(enum.Flag):
    """What an ACL entry grants or denies.

    ``GET``/``SET`` guard value access to data items, ``INVOKE`` guards
    methods, and ``META`` guards the self-changing meta-methods — the
    paper singles out "access to self-changing operations" as the thing a
    mobile object must be able to withhold from its host.
    """

    NONE = 0
    GET = enum.auto()
    SET = enum.auto()
    INVOKE = enum.auto()
    META = enum.auto()
    READ_ONLY = GET
    DATA = GET | SET
    ALL = GET | SET | INVOKE | META


@dataclass(frozen=True)
class Principal:
    """An identity participating in invocations.

    In MROM the callers are themselves objects, so a principal is an
    object GUID plus the trust domain its site belongs to. Principals are
    value objects: equality is by guid and domain.
    """

    guid: str
    domain: str = ""
    display_name: str = ""

    def in_domain(self, domain: str) -> bool:
        """True when this principal's domain is *domain* or a subdomain."""
        if not domain:
            return True
        own = self.domain.split(".") if self.domain else []
        target = domain.split(".")
        return own[: len(target)] == target

    def __str__(self) -> str:
        label = self.display_name or self.guid
        return f"{label}@{self.domain}" if self.domain else label


#: The local runtime itself; passes every ACL check. Used for bootstrap
#: operations the object performs on itself (installing meta-methods,
#: restoring from disk) — the object is always trusted with itself.
SYSTEM = Principal(guid="mrom:system", domain="", display_name="system")

#: A caller that presented no identity; matches only ``EVERYONE`` entries.
ANONYMOUS = Principal(guid="mrom:anonymous", domain="", display_name="anonymous")


class Decision(enum.Enum):
    """Outcome contributed by a single ACL entry."""

    ALLOW = "allow"
    DENY = "deny"


class _SubjectKind(enum.Enum):
    EVERYONE = "everyone"
    DOMAIN = "domain"
    PRINCIPAL = "principal"


@dataclass(frozen=True)
class AclEntry:
    """One rule: *subject* is allowed/denied *permissions*.

    Subject syntax:

    * ``"*"`` — everyone, including anonymous callers.
    * ``"domain:technion.ee"`` — every principal in the domain subtree.
    * any other string — a concrete principal guid.
    """

    subject: str
    permissions: Permission
    decision: Decision = Decision.ALLOW

    def _subject_kind(self) -> _SubjectKind:
        if self.subject == "*":
            return _SubjectKind.EVERYONE
        if self.subject.startswith("domain:"):
            return _SubjectKind.DOMAIN
        return _SubjectKind.PRINCIPAL

    def applies_to(self, principal: Principal) -> bool:
        """True when this entry's subject matches *principal*."""
        kind = self._subject_kind()
        if kind is _SubjectKind.EVERYONE:
            return True
        if kind is _SubjectKind.DOMAIN:
            if principal is ANONYMOUS:
                return False
            return principal.in_domain(self.subject[len("domain:"):])
        return principal.guid == self.subject

    def covers(self, permission: Permission) -> bool:
        """True when this entry speaks about *permission*."""
        return bool(self.permissions & permission)


class AccessControlList:
    """An ordered set of :class:`AclEntry` with deny-overrides semantics.

    The list is the security *and* encapsulation boundary of a single
    item. Evaluation:

    1. :data:`SYSTEM` always passes (the object trusts its own runtime).
    2. If any applicable entry DENYs the permission, access is denied.
    3. Otherwise, if any applicable entry ALLOWs it, access is granted.
    4. Otherwise the default decision applies (deny, unless constructed
       with ``default_allow=True``).
    """

    __slots__ = ("_entries", "_default_allow", "_version")

    def __init__(
        self,
        entries: Iterable[AclEntry] = (),
        default_allow: bool = False,
    ):
        self._entries: list[AclEntry] = list(entries)
        self._default_allow = bool(default_allow)
        # bumped on every in-place edit: cached Match verdicts pin the
        # (acl identity, version) pair and stale out when either moves
        self._version = 0

    # -- construction -----------------------------------------------------

    def copy(self) -> "AccessControlList":
        """An independent copy (entries are immutable, list is not)."""
        return AccessControlList(self._entries, self._default_allow)

    def grant(self, subject: str, permissions: Permission) -> "AccessControlList":
        """Append an ALLOW entry; returns self for chaining."""
        self._entries.append(AclEntry(subject, permissions, Decision.ALLOW))
        self._version += 1
        return self

    def revoke(self, subject: str, permissions: Permission) -> "AccessControlList":
        """Append a DENY entry; returns self for chaining."""
        self._entries.append(AclEntry(subject, permissions, Decision.DENY))
        self._version += 1
        return self

    def remove_subject(self, subject: str) -> int:
        """Drop every entry naming *subject*; returns how many were removed."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.subject != subject]
        self._version += 1
        return before - len(self._entries)

    # -- evaluation --------------------------------------------------------

    @property
    def default_allow(self) -> bool:
        return self._default_allow

    @property
    def version(self) -> int:
        """In-place edit count; part of a cached verdict's validity pin."""
        return self._version

    def entries(self) -> tuple[AclEntry, ...]:
        return tuple(self._entries)

    def __iter__(self) -> Iterator[AclEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def permits(self, principal: Principal, permission: Permission) -> bool:
        """Evaluate the list for one (principal, permission) pair."""
        if principal.guid == SYSTEM.guid:
            return True
        allowed = self._default_allow
        for entry in self._entries:
            if not entry.covers(permission) or not entry.applies_to(principal):
                continue
            if entry.decision is Decision.DENY:
                return False
            allowed = True
        return allowed

    def check(self, principal: Principal, permission: Permission, item: str) -> None:
        """Raise :class:`AccessDeniedError` unless access is permitted.

        This is the Match phase of level-0 invocation in callable form.
        """
        allowed = self.permits(principal, permission)
        note_match(principal, item, permission, allowed)
        if not allowed:
            raise AccessDeniedError(str(principal), item, permission.name or "NONE")

    # -- description --------------------------------------------------------

    def describe(self) -> dict:
        """A marshal-friendly description of the list (for packing)."""
        return {
            "default_allow": self._default_allow,
            "entries": [
                {
                    "subject": entry.subject,
                    "permissions": _permission_names(entry.permissions),
                    "decision": entry.decision.value,
                }
                for entry in self._entries
            ],
        }

    @classmethod
    def from_description(cls, description: dict) -> "AccessControlList":
        """Rebuild an ACL from :meth:`describe` output (pack/unpack)."""
        entries = [
            AclEntry(
                subject=raw["subject"],
                permissions=_permissions_from_names(raw["permissions"]),
                decision=Decision(raw["decision"]),
            )
            for raw in description.get("entries", [])
        ]
        return cls(entries, default_allow=bool(description.get("default_allow")))

    def __repr__(self) -> str:
        default = "allow" if self._default_allow else "deny"
        return f"AccessControlList({len(self._entries)} entries, default={default})"


def note_match(
    principal: Principal, item: str, permission: Permission, allowed: bool
) -> None:
    """Telemetry emission for one Match-phase verdict.

    Shared by :meth:`AccessControlList.check` and the invocation cache's
    hit path, so a memoized verdict is observably identical to a fresh
    evaluation: same counters, same ``acl.check`` span event.
    """
    tel = _telemetry.ACTIVE
    if tel is None:
        return
    tel.metrics.counter("acl.checks").inc()
    if not allowed:
        tel.metrics.counter("acl.denials").inc()
    span = tel.current_span
    if span is not None:
        span.event(
            "acl.check",
            outcome="allowed" if allowed else "denied",
            principal=principal.guid,
            item=item,
            permission=permission.name or "NONE",
        )


def _permission_names(permissions: Permission) -> list[str]:
    return [
        flag.name
        for flag in (Permission.GET, Permission.SET, Permission.INVOKE, Permission.META)
        if flag.name and permissions & flag
    ]


def _permissions_from_names(names: Iterable[str]) -> Permission:
    result = Permission.NONE
    for name in names:
        result |= Permission[name]
    return result


# ---------------------------------------------------------------------------
# ACL factories — the common policies as one-liners
# ---------------------------------------------------------------------------


def allow_all() -> AccessControlList:
    """Everyone may do everything (a fully public item)."""
    return AccessControlList([AclEntry("*", Permission.ALL)])


def deny_all() -> AccessControlList:
    """Nobody but :data:`SYSTEM` may touch the item."""
    return AccessControlList()


def owner_only(owner: Principal, permissions: Permission = Permission.ALL) -> AccessControlList:
    """Only the owning principal (and SYSTEM) may use the item.

    This is the policy the paper's Ambassadors apply to their meta-methods:
    invisible to, and uninvokable by, the host IOO; usable by the origin.
    """
    return AccessControlList([AclEntry(owner.guid, permissions)])


def domain_acl(domain: str, permissions: Permission = Permission.ALL) -> AccessControlList:
    """Every principal within a trust-domain subtree may use the item."""
    return AccessControlList([AclEntry(f"domain:{domain}", permissions)])


def principals_acl(
    principals: Iterable[Principal],
    permissions: Permission = Permission.ALL,
) -> AccessControlList:
    """An explicit allow-list of principals."""
    return AccessControlList(
        [AclEntry(p.guid, permissions) for p in principals]
    )
