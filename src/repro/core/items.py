"""Items: the data members and methods MROM objects are made of.

"Both data-items and methods are implemented as Java classes. The
data-item class holds the actual MROM (untyped) datum as a Java
data-member and the method class holds MROM method components (body, pre-
and post-procedures) as Java methods." (Section 4.)

Here the corresponding classes are :class:`DataItem` and
:class:`MROMMethod`. Both carry their own ACL (security coupled with
encapsulation — per item, per object granularity) and free-form metadata
(used by the self-representation machinery for signature hints,
documentation strings, interface tags, ...).

``getDataItem``/``getMethod`` return an :class:`ItemDescription` together
with an :class:`ItemHandle`; ``setDataItem``/``setMethod`` consume the
handle to change the item's *properties* — "security access or
encapsulation, name, or their dynamic type" — as opposed to the ordinary
``get``/``set`` which touch only the value.
"""

from __future__ import annotations

import itertools
import uuid
from dataclasses import dataclass, field
from typing import Any, Mapping

from .acl import AccessControlList, Permission, Principal, allow_all
from .code import CodeRole, MethodCode, as_code, code_from_description
from .errors import KindError, StaleHandleError
from .values import Kind, LazyCell, coerce, conforms

__all__ = [
    "DataItem",
    "MROMMethod",
    "ItemDescription",
    "ItemHandle",
]

_serial = itertools.count(1)


@dataclass(frozen=True)
class ItemDescription:
    """What ``getDataItem``/``getMethod`` reveal about an item.

    This is the unit of *self-representation*: a host interrogating a
    newcomer object receives these, never the raw internals.
    """

    name: str
    category: str  # "data" | "method"
    section: str  # "fixed" | "extensible"
    kind: str = Kind.ANY.value  # declared dynamic kind (data items)
    portable: bool = True
    has_pre: bool = False
    has_post: bool = False
    version: int = 1
    acl: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    def to_mapping(self) -> dict:
        """A plain-mapping form, suitable for marshaling to a remote host."""
        return {
            "name": self.name,
            "category": self.category,
            "section": self.section,
            "kind": self.kind,
            "portable": self.portable,
            "has_pre": self.has_pre,
            "has_post": self.has_post,
            "version": self.version,
            "acl": dict(self.acl),
            "metadata": dict(self.metadata),
        }


class _Item:
    """Shared behaviour of data items and methods."""

    __slots__ = ("name", "acl", "metadata", "version", "_uid", "nonce")

    category: str = "item"

    def __init__(
        self,
        name: str,
        acl: AccessControlList | None = None,
        metadata: Mapping[str, Any] | None = None,
    ):
        if not name or not isinstance(name, str):
            raise ValueError("item name must be a non-empty string")
        self.name = name
        self.acl = acl if acl is not None else allow_all()
        self.metadata: dict[str, Any] = dict(metadata) if metadata else {}
        self.version = 1
        self._uid = next(_serial)
        # identifies this item *instance*: handles (local or tokenized on
        # the wire) pin the nonce, so a replaced item stales them
        self.nonce = uuid.uuid4().hex[:12]

    # -- property manipulation (setDataItem / setMethod targets) ----------

    def touch(self) -> None:
        """Record that a property of the item changed."""
        self.version += 1

    def rename(self, new_name: str) -> None:
        if not new_name or not isinstance(new_name, str):
            raise ValueError("item name must be a non-empty string")
        self.name = new_name
        self.touch()

    def set_acl(self, acl: AccessControlList) -> None:
        self.acl = acl
        self.touch()

    def update_metadata(self, updates: Mapping[str, Any]) -> None:
        self.metadata.update(updates)
        self.touch()

    # -- security ----------------------------------------------------------

    def check(self, principal: Principal, permission: Permission) -> None:
        self.acl.check(principal, permission, self.name)

    def visible_to(self, principal: Principal) -> bool:
        """Encapsulation-as-security: an item a principal may neither read
        nor invoke nor meta-manipulate simply does not appear when that
        principal interrogates the object."""
        return any(
            self.acl.permits(principal, perm)
            for perm in (Permission.GET, Permission.INVOKE, Permission.META)
        )


class DataItem(_Item):
    """A named, weakly-typed datum with its own ACL.

    The declared *kind* is dynamic: it may be :data:`Kind.ANY` (fully
    untyped) or a concrete kind, in which case assigned values are
    generically coerced to it — the paper's coercion requirement applied
    at the item boundary.
    """

    __slots__ = ("_value", "kind")

    category = "data"

    def __init__(
        self,
        name: str,
        value: Any = None,
        kind: Kind = Kind.ANY,
        acl: AccessControlList | None = None,
        metadata: Mapping[str, Any] | None = None,
    ):
        super().__init__(name, acl=acl, metadata=metadata)
        self.kind = kind
        self._value = self._admit(value)

    def _admit(self, value: Any) -> Any:
        if isinstance(value, LazyCell):
            # a lazily-unmarshalled wire slice: fully untyped items keep
            # the cell (decode on first read); a concrete declared kind
            # needs the value now to coerce it
            if self.kind is Kind.ANY:
                return value
            value = value.materialize()
        if self.kind is Kind.ANY or conforms(value, self.kind):
            return value
        return coerce(value, self.kind)

    # -- value access (ordinary get/set, *not* the meta-operations) -------

    def get_value(self, caller: Principal) -> Any:
        self.check(caller, Permission.GET)
        return self.peek()

    def set_value(self, caller: Principal, value: Any) -> None:
        self.check(caller, Permission.SET)
        self._value = self._admit(value)

    def peek(self) -> Any:
        """Unchecked read, for the object's own runtime only."""
        value = self._value
        if isinstance(value, LazyCell):
            value = self._value = value.materialize()
        return value

    def poke(self, value: Any) -> None:
        """Unchecked write, for the object's own runtime only.

        Still enforces the declared dynamic kind — self-trust bypasses the
        ACL, never the typing discipline.
        """
        self._value = self._admit(value)

    # -- dynamic-type property ---------------------------------------------

    def set_kind(self, kind: Kind) -> None:
        """Change the declared dynamic kind, coercing the current value."""
        if not isinstance(kind, Kind):
            raise KindError(f"not a Kind: {kind!r}")
        self.kind = kind
        self._value = self._admit(self._value)
        self.touch()

    # -- description ---------------------------------------------------------

    @property
    def portable(self) -> bool:
        """Data items are portable when their value marshals; the wire
        format decides that at pack time, so structurally they always are."""
        return True

    def describe(self, section: str) -> ItemDescription:
        return ItemDescription(
            name=self.name,
            category=self.category,
            section=section,
            kind=self.kind.value,
            portable=self.portable,
            version=self.version,
            acl=self.acl.describe(),
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:
        return f"DataItem({self.name!r}, kind={self.kind.value}, v{self.version})"


class MROMMethod(_Item):
    """A named method: body plus optional pre- and post-procedures.

    Pre/post are the *wrapping* mechanism (Section 3.1): attachable
    dynamically (via ``setMethod``), usable for environment integration,
    assertions, charging, approval...
    """

    __slots__ = ("body", "pre", "post")

    category = "method"

    def __init__(
        self,
        name: str,
        body: "MethodCode | str | Any",
        pre: "MethodCode | str | Any" = None,
        post: "MethodCode | str | Any" = None,
        acl: AccessControlList | None = None,
        metadata: Mapping[str, Any] | None = None,
    ):
        super().__init__(name, acl=acl, metadata=metadata)
        body_code = as_code(body, CodeRole.BODY, label=f"{name}.body")
        if body_code is None:
            raise ValueError(f"method {name!r} requires a body")
        self.body: MethodCode = body_code
        self.pre: MethodCode | None = as_code(pre, CodeRole.PRE, label=f"{name}.pre")
        self.post: MethodCode | None = as_code(post, CodeRole.POST, label=f"{name}.post")

    # -- wrapping (setMethod property changes) ------------------------------

    def set_pre(self, pre: "MethodCode | str | Any") -> None:
        self.pre = as_code(pre, CodeRole.PRE, label=f"{self.name}.pre")
        self.touch()

    def set_post(self, post: "MethodCode | str | Any") -> None:
        self.post = as_code(post, CodeRole.POST, label=f"{self.name}.post")
        self.touch()

    def set_body(self, body: "MethodCode | str | Any") -> None:
        new_body = as_code(body, CodeRole.BODY, label=f"{self.name}.body")
        if new_body is None:
            raise ValueError(f"method {self.name!r} requires a body")
        self.body = new_body
        self.touch()

    def verify(self) -> "MROMMethod":
        """Eagerly verify and compile every portable component.

        The mutating meta-methods call this at install time so hostile
        source is rejected when it is *added*, never when it first runs —
        the same verify-before-install stance the admission policy takes.
        Returns self for chaining.
        """
        for component in (self.body, self.pre, self.post):
            if component is not None and component.portable:
                component.compile_now()  # type: ignore[attr-defined]
        return self

    # -- description ----------------------------------------------------------

    @property
    def portable(self) -> bool:
        components = [self.body, self.pre, self.post]
        return all(c is None or c.portable for c in components)

    def describe(self, section: str) -> ItemDescription:
        return ItemDescription(
            name=self.name,
            category=self.category,
            section=section,
            kind=Kind.ANY.value,
            portable=self.portable,
            has_pre=self.pre is not None,
            has_post=self.post is not None,
            version=self.version,
            acl=self.acl.describe(),
            metadata=dict(self.metadata),
        )

    def pack_components(self) -> dict:
        """Describe body/pre/post for migration (portable methods only)."""
        packed = {"body": self.body.describe()}
        if self.pre is not None:
            packed["pre"] = self.pre.describe()
        if self.post is not None:
            packed["post"] = self.post.describe()
        return packed

    @classmethod
    def from_packed(
        cls,
        name: str,
        components: dict,
        acl: AccessControlList | None = None,
        metadata: Mapping[str, Any] | None = None,
    ) -> "MROMMethod":
        """Rebuild a method from packed component descriptions."""
        body = code_from_description(components["body"])
        pre = (
            code_from_description(components["pre"])
            if "pre" in components
            else None
        )
        post = (
            code_from_description(components["post"])
            if "post" in components
            else None
        )
        return cls(name, body, pre=pre, post=post, acl=acl, metadata=metadata)

    def __repr__(self) -> str:
        wraps = []
        if self.pre is not None:
            wraps.append("pre")
        if self.post is not None:
            wraps.append("post")
        suffix = f", wraps={'+'.join(wraps)}" if wraps else ""
        return f"MROMMethod({self.name!r}, v{self.version}{suffix})"


#: marker key of a tokenized handle on the wire
HANDLE_TOKEN_KEY = "__item_handle__"


class ItemHandle:
    """An opaque capability to change an item's properties.

    Returned by ``getDataItem``/``getMethod`` alongside the description;
    consumed by ``setDataItem``/``setMethod``. A handle pins the *identity*
    of the item (not its name): if the item is deleted or replaced in its
    container, the handle goes stale and property changes through it raise
    :class:`StaleHandleError` instead of mutating a ghost.

    Handles are process-local capabilities; crossing a site boundary they
    become *tokens* (:meth:`token`) — plain mappings naming the item and
    its instance nonce — which the owning object re-validates on use, so
    remote handles stale exactly when local ones would.
    """

    __slots__ = ("_item", "_container")

    def __init__(self, item: _Item, container: "Any"):
        self._item = item
        self._container = container

    @property
    def item(self) -> _Item:
        self.ensure_valid()
        return self._item

    @property
    def name(self) -> str:
        return self._item.name

    def is_valid(self) -> bool:
        return self._container.holds(self._item)

    def ensure_valid(self) -> None:
        if not self.is_valid():
            raise StaleHandleError(
                f"handle for item {self._item.name!r} is stale"
            )

    def token(self) -> dict:
        """The wire form of this handle (marshal-friendly mapping)."""
        return {
            HANDLE_TOKEN_KEY: True,
            "name": self._item.name,
            "category": self._item.category,
            "nonce": self._item.nonce,
        }

    def __repr__(self) -> str:
        state = "valid" if self.is_valid() else "stale"
        return f"ItemHandle({self._item.name!r}, {state})"
