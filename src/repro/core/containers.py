"""Item containers: the four-way structure of every MROM object.

"The fixed and extensible portions of MROM objects are implemented using
four Java objects called *item containers*. An item container is a set of
name-and-value pairs ... The extensible portion consists of two
extensible containers, whose pairs can be added, removed and their value
can be replaced in runtime. The fixed portion consists of two containers
on which none of the previous manipulations are available." (Section 4.)

:class:`ItemContainer` is one such set; it is *sealable* — fixed
containers are populated during object construction and then sealed, after
which every structural manipulation raises
:class:`~repro.core.errors.SealedContainerError`.

:class:`ContainerSet` aggregates the four containers and implements the
lookup rules:

* data items and methods live in disjoint namespaces ("the sole reason is
  to avoid name conflicts between data items and methods");
* within a namespace, an extensible item may **not** shadow a fixed one —
  the fixed section is the portion "always guaranteed to exist", and
  shadowing would silently change guaranteed semantics
  (:class:`~repro.core.errors.DuplicateItemError` instead);
* lookup order is fixed first, then extensible (which, given the no-shadow
  rule, is equivalent to a search over disjoint name sets).
"""

from __future__ import annotations

from typing import Callable, Iterator

from .errors import (
    DataItemNotFoundError,
    DuplicateItemError,
    ItemNotFoundError,
    MethodNotFoundError,
    SealedContainerError,
)
from .items import DataItem, ItemDescription, MROMMethod, _Item

__all__ = ["Section", "ItemContainer", "ContainerSet", "MutationClock"]

#: Section labels used throughout descriptions and errors.
FIXED = "fixed"
EXTENSIBLE = "extensible"
Section = str


class MutationClock:
    """A shared monotonic counter of structural mutations.

    The four containers of one :class:`ContainerSet` bump the same clock
    on every add/remove/replace/rename, so the set's *generation* moves
    whenever any structure an invocation-cache entry could depend on
    moves — regardless of whether the mutation arrived through a
    meta-method or a direct container call.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> int:
        self.value += 1
        return self.value

    def __repr__(self) -> str:
        return f"MutationClock({self.value})"


class ItemContainer:
    """An ordered set of name-and-item pairs, optionally sealable.

    Insertion order is preserved — descriptions enumerate items in the
    order the object acquired them, which keeps interrogation output
    stable and makes packing deterministic.
    """

    __slots__ = ("label", "_items", "_sealed", "_clock")

    def __init__(self, label: str, clock: MutationClock | None = None):
        self.label = label
        self._items: dict[str, _Item] = {}
        self._sealed = False
        self._clock = clock if clock is not None else MutationClock()

    # -- sealing -------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        return self._sealed

    def seal(self) -> None:
        """Freeze the container's structure permanently."""
        self._sealed = True

    def _ensure_open(self, operation: str) -> None:
        if self._sealed:
            raise SealedContainerError(
                f"container {self.label!r} is sealed; cannot {operation}"
            )

    # -- structural manipulation ----------------------------------------------

    def add(self, item: _Item) -> None:
        self._ensure_open(f"add {item.name!r}")
        if item.name in self._items:
            raise DuplicateItemError(item.name, self.label)
        self._items[item.name] = item
        self._clock.bump()

    def remove(self, name: str) -> _Item:
        self._ensure_open(f"remove {name!r}")
        try:
            item = self._items.pop(name)
        except KeyError:
            raise ItemNotFoundError(name, self.label) from None
        self._clock.bump()
        return item

    def replace(self, name: str, item: _Item) -> _Item:
        """Swap the item stored under *name*; returns the old item."""
        self._ensure_open(f"replace {name!r}")
        if name not in self._items:
            raise ItemNotFoundError(name, self.label)
        old = self._items[name]
        # keep mapping-key and item-name consistent
        if item.name != name:
            del self._items[name]
            if item.name in self._items:
                self._items[name] = old  # restore before failing
                raise DuplicateItemError(item.name, self.label)
            self._items[item.name] = item
        else:
            self._items[name] = item
        self._clock.bump()
        return old

    def rename(self, old_name: str, new_name: str) -> None:
        """Rename an item in place (a ``set*`` property change)."""
        self._ensure_open(f"rename {old_name!r}")
        if old_name not in self._items:
            raise ItemNotFoundError(old_name, self.label)
        if new_name in self._items:
            raise DuplicateItemError(new_name, self.label)
        item = self._items.pop(old_name)
        item.rename(new_name)
        self._items[new_name] = item
        self._clock.bump()

    # -- lookup ----------------------------------------------------------------

    def get(self, name: str) -> _Item:
        try:
            return self._items[name]
        except KeyError:
            raise ItemNotFoundError(name, self.label) from None

    def find(self, name: str) -> _Item | None:
        return self._items.get(name)

    def holds(self, item: _Item) -> bool:
        """Identity check used by :class:`~repro.core.items.ItemHandle`."""
        return self._items.get(item.name) is item

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[_Item]:
        return iter(self._items.values())

    def names(self) -> tuple[str, ...]:
        return tuple(self._items)

    def __repr__(self) -> str:
        state = "sealed" if self._sealed else "open"
        return f"ItemContainer({self.label!r}, {len(self._items)} items, {state})"


class ContainerSet:
    """The four containers of an MROM object, with MROM lookup semantics."""

    __slots__ = ("fixed_data", "fixed_methods", "ext_data", "ext_methods", "_clock")

    def __init__(self) -> None:
        self._clock = MutationClock()
        self.fixed_data = ItemContainer("fixed-data", self._clock)
        self.fixed_methods = ItemContainer("fixed-methods", self._clock)
        self.ext_data = ItemContainer("extensible-data", self._clock)
        self.ext_methods = ItemContainer("extensible-methods", self._clock)

    @property
    def generation(self) -> int:
        """Monotonic structural-mutation generation across all four
        containers — the invalidation signal of the invocation cache."""
        return self._clock.value

    @property
    def clock(self) -> MutationClock:
        """The shared mutation clock itself. Compiled invocation
        closures pin this object and read ``.value`` directly, so their
        generation guard costs one attribute load instead of a property
        chain through the container set."""
        return self._clock

    # -- sealing ------------------------------------------------------------

    def seal_fixed(self) -> None:
        """End of construction: the fixed section becomes immutable."""
        self.fixed_data.seal()
        self.fixed_methods.seal()

    @property
    def construction_finished(self) -> bool:
        return self.fixed_data.sealed and self.fixed_methods.sealed

    # -- generic two-container namespaces -------------------------------------

    def _pair(self, category: str) -> tuple[ItemContainer, ItemContainer]:
        if category == "data":
            return self.fixed_data, self.ext_data
        if category == "method":
            return self.fixed_methods, self.ext_methods
        raise ValueError(f"unknown item category {category!r}")

    def _not_found(self, category: str) -> Callable[[str, str], ItemNotFoundError]:
        return DataItemNotFoundError if category == "data" else MethodNotFoundError

    def lookup(self, category: str, name: str) -> tuple[_Item, Section]:
        """Phase 1 of level-0 invocation: locate and fetch an item.

        Returns the item and the section it was found in.
        """
        fixed, ext = self._pair(category)
        item = fixed.find(name)
        if item is not None:
            return item, FIXED
        item = ext.find(name)
        if item is not None:
            return item, EXTENSIBLE
        raise self._not_found(category)(name, "fixed+extensible")

    def section_of(self, category: str, name: str) -> Section:
        return self.lookup(category, name)[1]

    def add_fixed(self, item: _Item) -> None:
        """Construction-time insertion into the fixed section."""
        fixed, ext = self._pair(item.category)
        if item.name in ext:
            raise DuplicateItemError(item.name, ext.label)
        fixed.add(item)

    def add_extensible(self, item: _Item) -> None:
        """Run-time insertion (the ``add*`` meta-methods)."""
        fixed, ext = self._pair(item.category)
        if item.name in fixed:
            # no shadowing of guaranteed structure
            raise DuplicateItemError(item.name, fixed.label)
        ext.add(item)

    def remove_extensible(self, category: str, name: str) -> _Item:
        """Run-time removal (the ``delete*`` meta-methods)."""
        fixed, ext = self._pair(category)
        if name in fixed:
            raise SealedContainerError(
                f"item {name!r} is in the fixed section and cannot be deleted"
            )
        return ext.remove(name)

    def container_of(self, category: str, name: str) -> ItemContainer:
        fixed, ext = self._pair(category)
        if name in fixed:
            return fixed
        if name in ext:
            return ext
        raise self._not_found(category)(name, "fixed+extensible")

    # -- typed conveniences ------------------------------------------------------

    def lookup_data(self, name: str) -> tuple[DataItem, Section]:
        item, section = self.lookup("data", name)
        assert isinstance(item, DataItem)
        return item, section

    def lookup_method(self, name: str) -> tuple[MROMMethod, Section]:
        item, section = self.lookup("method", name)
        assert isinstance(item, MROMMethod)
        return item, section

    def has_data(self, name: str) -> bool:
        return name in self.fixed_data or name in self.ext_data

    def has_method(self, name: str) -> bool:
        return name in self.fixed_methods or name in self.ext_methods

    # -- enumeration ---------------------------------------------------------------

    def iter_with_sections(self) -> Iterator[tuple[_Item, str, Section]]:
        """Yield (item, category, section) over all four containers."""
        for item in self.fixed_data:
            yield item, "data", FIXED
        for item in self.ext_data:
            yield item, "data", EXTENSIBLE
        for item in self.fixed_methods:
            yield item, "method", FIXED
        for item in self.ext_methods:
            yield item, "method", EXTENSIBLE

    def describe_all(self) -> list[ItemDescription]:
        return [
            item.describe(section)  # type: ignore[attr-defined]
            for item, _category, section in self.iter_with_sections()
        ]

    def counts(self) -> dict[str, int]:
        return {
            "fixed_data": len(self.fixed_data),
            "fixed_methods": len(self.fixed_methods),
            "extensible_data": len(self.ext_data),
            "extensible_methods": len(self.ext_methods),
        }

    def __repr__(self) -> str:
        c = self.counts()
        return (
            "ContainerSet(fixed: {fixed_data}d/{fixed_methods}m, "
            "extensible: {extensible_data}d/{extensible_methods}m)".format(**c)
        )
