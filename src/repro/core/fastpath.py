"""Hot-path caching for the level-0 invocation primitive.

The paper makes level 0 deliberately *non-reflective* precisely so it
"can be implemented in a more efficient way" (Section 3.1). This module
is that efficiency: a per-object :class:`InvocationCache` memoizing the
two phases of level-0 invocation that are pure functions of slowly
changing structure —

* **Lookup** (method name -> method handle + section), which otherwise
  walks two of the four item containers on every call; and
* **Match** (principal -> ACL verdict), which otherwise re-evaluates the
  method's access control list entry by entry.

Correctness rests on two invalidation channels, because a stale cache
silently corrupts semantics in a *mutable* object model:

1. a monotonic **mutation generation** owned by the object's
   :class:`~repro.core.containers.ContainerSet` and bumped by every
   structural mutation (every meta-method that adds, deletes, renames or
   replaces an item funnels into a container operation) — when the
   generation moves, both tables are dropped wholesale;
2. per-entry **version pins** for Match: a cached verdict names the
   method instance, its item version, the ACL instance and the ACL's
   edit version, so replacing a method's ACL (``setMethod``) *or*
   editing one in place (``grant``/``revoke``) invalidates exactly the
   affected verdicts without touching the generation.

Only ALLOW verdicts are cached: a denial raises and is re-evaluated on
every attempt, so a cached run can never convert a denial into access.
A migrated object's caches arrive cold — ``unpack`` builds a fresh
object, and :meth:`~repro.mobility.transfer.MobilityManager` resets the
cache explicitly at install time for belt-and-braces.

Above the memo tables sits a third tier: **compiled invocations**.
Once a (caller, method) pair has proven itself warm — a Match-table hit,
or a warm self-call — the invoker asks :func:`repro.lang.compiler.
compile_invocation` for a specialized closure that inlines the whole
Lookup→Match→Apply pipeline with the method handle and the ALLOW verdict
pinned at compile time. A compiled entry is trusted only while the exact
same pins the match table uses still hold (mutation generation, method
identity+version, ACL identity+edit version); the closure re-checks them
on every call and returns :data:`COMPILED_STALE` the moment any moved,
at which point the entry is discarded and the call falls back to the
interpreted path. Compiled entries are dropped by ``sync()`` (mutation),
by ``reset()`` (migration install), by ``enable_fastpath(False)``, and
are never packaged — a migrated object arrives cold on every tier.

The cache is on by default (:data:`CACHING_DEFAULT`); per object it can
be declined at construction (``MROMObject(fastpath=False)``) or toggled
with :meth:`~repro.core.mobject.MROMObject.enable_fastpath`. When off,
the invoker pays one attribute read and an identity test — the same
O(1)-when-off contract the telemetry hooks keep. Hit/miss/invalidation
counters surface through the active
:class:`~repro.telemetry.metrics.MetricsRegistry` as ``fastpath.*``
(the compile tier under ``fastpath.compiled.*``; see ``docs/PERF.md``)
and are always mirrored in plain attributes for telemetry-free
benchmarking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .items import MROMMethod

__all__ = [
    "InvocationCache",
    "CACHING_DEFAULT",
    "COMPILE_DEFAULT",
    "COMPILED_STALE",
    "set_default",
    "set_compile_default",
]

#: Whether newly constructed objects get an invocation cache. Module
#: state rather than a constant so test harnesses (and the differential
#: suite's cache-off subjects) can flip the default for a scope.
CACHING_DEFAULT = True

#: Whether caches promote warm entries to compiled closures. Separate
#: from CACHING_DEFAULT so the differential harness can run a
#: cached-but-not-compiled tier, and so hosts can keep the memo tables
#: while declining code specialization wholesale.
COMPILE_DEFAULT = True

#: Sentinel a compiled closure returns when one of its pins no longer
#: holds: "this entry is stale — discard me and take the general path".
#: A private singleton, so no method body can forge it as a result.
COMPILED_STALE = object()


def set_default(enabled: bool) -> bool:
    """Set the construction-time default; returns the previous value."""
    global CACHING_DEFAULT
    previous = CACHING_DEFAULT
    CACHING_DEFAULT = bool(enabled)
    return previous


def set_compile_default(enabled: bool) -> bool:
    """Set the compile-tier default; returns the previous value."""
    global COMPILE_DEFAULT
    previous = COMPILE_DEFAULT
    COMPILE_DEFAULT = bool(enabled)
    return previous


class InvocationCache:
    """Memo of one object's Lookup results and Match verdicts.

    ``lookup_table`` maps method name to ``(method, section)`` exactly as
    :meth:`~repro.core.containers.ContainerSet.lookup_method` returns it.
    ``match_table`` maps ``(caller_guid, caller_domain, method_name)`` to
    the pinned tuple ``(method, method_version, acl, acl_version)``; an
    entry is a valid ALLOW verdict only while every pin still holds.
    ``compiled`` maps the same caller-qualified key to a specialized
    closure that carries those pins inside itself and self-invalidates
    by returning :data:`COMPILED_STALE`. Failures (unknown names,
    denials) are never cached on any tier.
    """

    __slots__ = (
        "generation",
        "lookup_table",
        "match_table",
        "compiled",
        "compile_enabled",
        "lookup_hits",
        "lookup_misses",
        "match_hits",
        "match_misses",
        "compiled_hits",
        "compiles",
        "compiled_discards",
        "invalidations",
    )

    #: generation value no live ContainerSet can have: forces the first
    #: sync() to start the cache cold
    _COLD = -1

    #: upper bound on compiled closures per object — one entry per
    #: (caller, method) pair; past it the oldest entry is evicted, so a
    #: churning caller population cannot grow the table without bound
    COMPILED_CAP = 256

    def __init__(self, compile_enabled: bool | None = None) -> None:
        self.generation = self._COLD
        self.lookup_table: dict[str, tuple["MROMMethod", str]] = {}
        self.match_table: dict[tuple[str, str, str], tuple[Any, int, Any, int]] = {}
        self.compiled: dict[tuple[str, str, str], Callable] = {}
        self.compile_enabled = (
            COMPILE_DEFAULT if compile_enabled is None else bool(compile_enabled)
        )
        self.lookup_hits = 0
        self.lookup_misses = 0
        self.match_hits = 0
        self.match_misses = 0
        self.compiled_hits = 0
        self.compiles = 0
        self.compiled_discards = 0
        self.invalidations = 0

    def sync(self, generation: int) -> bool:
        """Align with the containers' mutation generation.

        Returns True when non-empty tables were actually dropped (the
        structure moved *and* the cache had something to lose). The
        initial cold sync — ``_COLD`` to the live generation on a fresh
        or freshly migrated object — aligns silently: nothing was
        cached, so nothing was invalidated, and ``invalidations`` (and
        the ``fastpath.invalidations`` telemetry counter fed from it)
        must not say otherwise.
        """
        if generation == self.generation:
            return False
        self.generation = generation
        return self._drop_tables()

    def reset(self) -> bool:
        """Forget everything and go cold (migration install, explicit
        toggles). Counters survive — they describe the cache's history,
        not its contents — and a drop of non-empty tables counts toward
        ``invalidations`` exactly as a ``sync()`` drop does, so
        migration-install resets are visible in :meth:`stats`."""
        self.generation = self._COLD
        return self._drop_tables()

    def _drop_tables(self) -> bool:
        """Clear all three tiers; count one invalidation if any entry
        was actually dropped. Returns whether anything was dropped."""
        dropped = bool(self.lookup_table or self.match_table or self.compiled)
        if not dropped:
            return False
        self.lookup_table.clear()
        self.match_table.clear()
        if self.compiled:
            self.compiled_discards += len(self.compiled)
            self.compiled.clear()
        self.invalidations += 1
        return True

    # -- the compile tier ---------------------------------------------------

    def set_compiled(self, enabled: bool) -> None:
        """Toggle the compile tier for this cache; disabling discards
        every compiled closure (the memo tables survive)."""
        self.compile_enabled = bool(enabled)
        if not enabled and self.compiled:
            self.compiled_discards += len(self.compiled)
            self.compiled.clear()

    def store_compiled(self, key: tuple[str, str, str], fn: Callable) -> None:
        table = self.compiled
        if len(table) >= self.COMPILED_CAP:
            table.pop(next(iter(table)))  # oldest-inserted first
            self.compiled_discards += 1
        table[key] = fn
        self.compiles += 1

    def discard_compiled(self, key: tuple[str, str, str]) -> None:
        """Drop one stale closure (its guard failed at dispatch)."""
        if self.compiled.pop(key, None) is not None:
            self.compiled_discards += 1

    @property
    def entries(self) -> int:
        return len(self.lookup_table) + len(self.match_table)

    @property
    def compiled_entries(self) -> int:
        return len(self.compiled)

    def stats(self) -> dict:
        """A plain-mapping snapshot (benchmarks, debugging)."""
        return {
            "lookup_hits": self.lookup_hits,
            "lookup_misses": self.lookup_misses,
            "match_hits": self.match_hits,
            "match_misses": self.match_misses,
            "compiled_hits": self.compiled_hits,
            "compiles": self.compiles,
            "compiled_discards": self.compiled_discards,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "compiled_entries": self.compiled_entries,
            "generation": self.generation,
        }

    def __repr__(self) -> str:
        return (
            f"InvocationCache({self.entries} entries, "
            f"{self.compiled_entries} compiled, "
            f"lookup {self.lookup_hits}h/{self.lookup_misses}m, "
            f"match {self.match_hits}h/{self.match_misses}m, "
            f"compiled {self.compiled_hits}h/{self.compiles}c/"
            f"{self.compiled_discards}d, "
            f"{self.invalidations} invalidations)"
        )
