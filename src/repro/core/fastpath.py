"""Hot-path caching for the level-0 invocation primitive.

The paper makes level 0 deliberately *non-reflective* precisely so it
"can be implemented in a more efficient way" (Section 3.1). This module
is that efficiency: a per-object :class:`InvocationCache` memoizing the
two phases of level-0 invocation that are pure functions of slowly
changing structure —

* **Lookup** (method name -> method handle + section), which otherwise
  walks two of the four item containers on every call; and
* **Match** (principal -> ACL verdict), which otherwise re-evaluates the
  method's access control list entry by entry.

Correctness rests on two invalidation channels, because a stale cache
silently corrupts semantics in a *mutable* object model:

1. a monotonic **mutation generation** owned by the object's
   :class:`~repro.core.containers.ContainerSet` and bumped by every
   structural mutation (every meta-method that adds, deletes, renames or
   replaces an item funnels into a container operation) — when the
   generation moves, both tables are dropped wholesale;
2. per-entry **version pins** for Match: a cached verdict names the
   method instance, its item version, the ACL instance and the ACL's
   edit version, so replacing a method's ACL (``setMethod``) *or*
   editing one in place (``grant``/``revoke``) invalidates exactly the
   affected verdicts without touching the generation.

Only ALLOW verdicts are cached: a denial raises and is re-evaluated on
every attempt, so a cached run can never convert a denial into access.
A migrated object's caches arrive cold — ``unpack`` builds a fresh
object, and :meth:`~repro.mobility.transfer.MobilityManager` resets the
cache explicitly at install time for belt-and-braces.

The cache is on by default (:data:`CACHING_DEFAULT`); per object it can
be declined at construction (``MROMObject(fastpath=False)``) or toggled
with :meth:`~repro.core.mobject.MROMObject.enable_fastpath`. When off,
the invoker pays one attribute read and an identity test — the same
O(1)-when-off contract the telemetry hooks keep. Hit/miss/invalidation
counters surface through the active
:class:`~repro.telemetry.metrics.MetricsRegistry` as ``fastpath.*``
(see ``docs/PERF.md``) and are always mirrored in plain attributes for
telemetry-free benchmarking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .items import MROMMethod

__all__ = ["InvocationCache", "CACHING_DEFAULT", "set_default"]

#: Whether newly constructed objects get an invocation cache. Module
#: state rather than a constant so test harnesses (and the differential
#: suite's cache-off subjects) can flip the default for a scope.
CACHING_DEFAULT = True


def set_default(enabled: bool) -> bool:
    """Set the construction-time default; returns the previous value."""
    global CACHING_DEFAULT
    previous = CACHING_DEFAULT
    CACHING_DEFAULT = bool(enabled)
    return previous


class InvocationCache:
    """Memo of one object's Lookup results and Match verdicts.

    ``lookup_table`` maps method name to ``(method, section)`` exactly as
    :meth:`~repro.core.containers.ContainerSet.lookup_method` returns it.
    ``match_table`` maps ``(caller_guid, caller_domain, method_name)`` to
    the pinned tuple ``(method, method_version, acl, acl_version)``; an
    entry is a valid ALLOW verdict only while every pin still holds.
    Failures (unknown names, denials) are never cached.
    """

    __slots__ = (
        "generation",
        "lookup_table",
        "match_table",
        "lookup_hits",
        "lookup_misses",
        "match_hits",
        "match_misses",
        "invalidations",
    )

    #: generation value no live ContainerSet can have: forces the first
    #: sync() to start the cache cold
    _COLD = -1

    def __init__(self) -> None:
        self.generation = self._COLD
        self.lookup_table: dict[str, tuple["MROMMethod", str]] = {}
        self.match_table: dict[tuple[str, str, str], tuple[Any, int, Any, int]] = {}
        self.lookup_hits = 0
        self.lookup_misses = 0
        self.match_hits = 0
        self.match_misses = 0
        self.invalidations = 0

    def sync(self, generation: int) -> bool:
        """Align with the containers' mutation generation.

        Returns True when the tables were dropped (the structure moved
        since the last invocation through this cache).
        """
        if generation == self.generation:
            return False
        if self.lookup_table:
            self.lookup_table.clear()
        if self.match_table:
            self.match_table.clear()
        self.generation = generation
        self.invalidations += 1
        return True

    def reset(self) -> None:
        """Forget everything and go cold (migration install, explicit
        toggles). Counters survive — they describe the cache's history,
        not its contents."""
        self.lookup_table.clear()
        self.match_table.clear()
        self.generation = self._COLD

    @property
    def entries(self) -> int:
        return len(self.lookup_table) + len(self.match_table)

    def stats(self) -> dict:
        """A plain-mapping snapshot (benchmarks, debugging)."""
        return {
            "lookup_hits": self.lookup_hits,
            "lookup_misses": self.lookup_misses,
            "match_hits": self.match_hits,
            "match_misses": self.match_misses,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "generation": self.generation,
        }

    def __repr__(self) -> str:
        return (
            f"InvocationCache({self.entries} entries, "
            f"lookup {self.lookup_hits}h/{self.lookup_misses}m, "
            f"match {self.match_hits}h/{self.match_misses}m, "
            f"{self.invalidations} invalidations)"
        )
