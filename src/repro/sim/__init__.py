"""Deterministic discrete-event simulation kernel."""

from .kernel import Event, Simulator

__all__ = ["Event", "Simulator"]
