"""A deterministic discrete-event simulation kernel.

This is the substitution for the paper's real JVM/RMI testbed (see
DESIGN.md): the simulated internetwork in :mod:`repro.net` schedules
message deliveries as events here, so every experiment — including the
bandwidth/latency sweeps of PERF-5 — is exactly reproducible.

The kernel is intentionally small: a monotonically increasing clock, a
priority queue of events, and a seeded random stream for jitter. Events
at equal times fire in scheduling order (a strictly increasing sequence
number breaks ties), which is what makes runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True, frozen=True)
class Event:
    """One scheduled action. Ordered by (time, seq)."""

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("late"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("early"))
    >>> sim.run()
    >>> fired
    ['early', 'late']
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._queued: set[int] = set()
        self._cancelled: set[int] = set()
        self.seed = seed
        self.rng = random.Random(seed)
        self.events_processed = 0

    def derive_rng(self, name: str) -> random.Random:
        """An independent random stream derived from this run's seed.

        Seeding from a string is deterministic across processes (CPython
        hashes str/bytes seeds with SHA-512), so every consumer — each
        fault injector, for instance — gets its own reproducible stream
        that does not perturb, and is not perturbed by, ``self.rng``.
        """
        return random.Random(f"{self.seed}:{name}")

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self, delay: float, action: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule *action* to fire *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), action, label)
        heapq.heappush(self._queue, event)
        self._queued.add(event.seq)
        return event

    def schedule_at(
        self, time: float, action: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule *action* at an absolute simulated time."""
        return self.schedule(time - self._now, action, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazy removal).

        Cancelling an event that already fired (or was already cancelled)
        is a no-op: only seqs still in the queue enter ``_cancelled``, so
        ``pending`` stays exact and the set cannot accumulate stale
        entries.
        """
        if event.seq in self._queued:
            self._cancelled.add(event.seq)

    def _skip_cancelled(self) -> None:
        """Pop cancelled events off the head of the queue."""
        while self._queue and self._queue[0].seq in self._cancelled:
            event = heapq.heappop(self._queue)
            self._queued.discard(event.seq)
            self._cancelled.discard(event.seq)

    # -- execution --------------------------------------------------------------

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        self._skip_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._queued.discard(event.seq)
        self._now = event.time
        self.events_processed += 1
        event.action()
        return True

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or *max_events* fire)."""
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                break
            if not self.step():
                break
            fired += 1
        return fired

    def run_until(self, time: float) -> int:
        """Run events with ``event.time <= time``; advance the clock to
        *time* even if the queue drains earlier.

        Cancelled events at the head are skipped *before* the deadline
        check: a cancelled head must not let a live event past the
        deadline sneak into this window.
        """
        fired = 0
        while True:
            self._skip_cancelled()
            if not self._queue or self._queue[0].time > time:
                break
            if not self.step():
                break
            fired += 1
        self._now = max(self._now, time)
        return fired

    def run_while(self, condition: Callable[[], bool], max_events: int = 1_000_000) -> int:
        """Run until *condition* becomes false or the queue drains.

        The synchronous RMI layer uses this to pump the network until a
        specific reply lands.
        """
        fired = 0
        while condition() and self._queue:
            if not self.step():
                break
            fired += 1
            if fired >= max_events:
                raise RuntimeError(
                    f"simulation did not converge within {max_events} events"
                )
        return fired

    @property
    def pending(self) -> int:
        # exact: _cancelled only ever holds seqs still in the queue
        return len(self._queue) - len(self._cancelled)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.6f}, pending={self.pending})"
