"""Baseline 2: the DCOM component model (QueryInterface-style reflection).

Per the paper (Section 2): "An interface in DCOM is a set of functions
bounded to a certain object which implements them. Each object may
introduce several interfaces and a user may query any one of them using
the QueryInterface function ... However, while an object's interface can
be changed in runtime (e.g., a new interface can be added) object's
implementation can not ... there is no notion of a fixed behavior for an
object since objects are entities unknown to their users (only the
interfaces are known). Thus, an object that supports a certain interface
in a particular time can be changed and appear later without support for
that interface, introducing inconsistency."

This re-implementation captures precisely those properties:

* :class:`Component` objects are opaque; users only hold
  :class:`InterfacePointer` values obtained via ``query_interface``;
* interfaces can be **added and removed** at run time (no fixed section —
  the inconsistency the paper criticizes is reproducible in tests);
* function implementations are frozen at interface-registration time
  ("changes require recompilation");
* IUnknown semantics: every interface answers ``query_interface``,
  and reference counting governs lifetime.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..core.errors import MROMError

__all__ = ["DcomError", "IID_IUNKNOWN", "Component", "InterfacePointer"]


class DcomError(MROMError):
    """DCOM-model failure (E_NOINTERFACE, released pointer, ...)."""


#: The interface identity every component must answer.
IID_IUNKNOWN = "IID_IUnknown"


class InterfacePointer:
    """What a client holds: one interface of an unknown object.

    Calls are routed through the function table captured when the
    interface was registered. If the component dropped the interface
    after this pointer was handed out, calls fail — the documented DCOM
    inconsistency.
    """

    def __init__(self, component: "Component", iid: str):
        self._component = component
        self.iid = iid
        self._released = False

    # -- IUnknown -----------------------------------------------------------

    def query_interface(self, iid: str) -> "InterfacePointer":
        self._ensure_usable()
        return self._component._query_interface(iid)

    def add_ref(self) -> int:
        self._ensure_usable()
        return self._component._add_ref()

    def release(self) -> int:
        self._ensure_usable()
        self._released = True
        return self._component._release()

    # -- calls through the function table ------------------------------------

    def call(self, function: str, *args: Any) -> Any:
        self._ensure_usable()
        table = self._component._table_for(self.iid)
        if function not in table:
            raise DcomError(
                f"interface {self.iid!r} has no function {function!r}"
            )
        return table[function](*args)

    def functions(self) -> tuple[str, ...]:
        """The only self-representation DCOM offers: the function names of
        an interface you already hold."""
        self._ensure_usable()
        return tuple(sorted(self._component._table_for(self.iid)))

    def _ensure_usable(self) -> None:
        if self._released:
            raise DcomError(f"interface pointer {self.iid!r} was released")

    def __repr__(self) -> str:
        state = "released" if self._released else "live"
        return f"InterfacePointer({self.iid!r}, {state})"


class Component:
    """An opaque COM-style object: a bag of interfaces plus IUnknown."""

    def __init__(self, name: str = ""):
        self.name = name
        self._tables: dict[str, dict[str, Callable]] = {IID_IUNKNOWN: {}}
        self._refs = 0
        self.destroyed = False

    # -- interface management (runtime-addable, implementations frozen) -----

    def register_interface(self, iid: str, table: Mapping[str, Callable]) -> None:
        if iid in self._tables:
            raise DcomError(f"interface {iid!r} already registered")
        self._tables[iid] = dict(table)  # frozen copy: no later edits

    def revoke_interface(self, iid: str) -> None:
        """Drop an interface — future QueryInterface calls fail with
        E_NOINTERFACE even for clients who saw it earlier."""
        if iid == IID_IUNKNOWN:
            raise DcomError("cannot revoke IUnknown")
        if self._tables.pop(iid, None) is None:
            raise DcomError(f"interface {iid!r} is not registered")

    def interfaces(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    # -- plumbing used by pointers -------------------------------------------

    def _query_interface(self, iid: str) -> InterfacePointer:
        if iid not in self._tables:
            raise DcomError(f"E_NOINTERFACE: {iid!r}")
        self._refs += 1
        return InterfacePointer(self, iid)

    def _table_for(self, iid: str) -> dict[str, Callable]:
        try:
            return self._tables[iid]
        except KeyError:
            raise DcomError(
                f"interface {iid!r} vanished (revoked after pointer handed out)"
            ) from None

    def _add_ref(self) -> int:
        self._refs += 1
        return self._refs

    def _release(self) -> int:
        self._refs -= 1
        if self._refs <= 0:
            self.destroyed = True
        return max(self._refs, 0)

    # -- entry point -------------------------------------------------------------

    def unknown(self) -> InterfacePointer:
        """The initial IUnknown pointer a client starts from."""
        return self._query_interface(IID_IUNKNOWN)

    def __repr__(self) -> str:
        return f"Component({self.name!r}, {len(self._tables)} interfaces, refs={self._refs})"
