"""Baseline 3: JDK 1.1-style core reflection (introspection only).

Per the paper (Section 2): "some level of reflection is supported in JDK
1.1 as part of the API. Though supplying facilities for querying object's
structure, such as to examine its methods and their signatures, this API
does not support mutability, e.g., it does not allow operations on
existing objects that may change their semantics."

So: classes are immutable descriptions, objects are instances of exactly
one class forever, ``get_methods``/``get_fields`` expose signatures, and
reflective invocation exists — but there is no ``add``/``set``/``delete``
anything. The missing mutation API is the point of this baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Callable, Mapping

from ..core.errors import MROMError

__all__ = ["JavaReflectError", "JMethod", "JField", "JClass", "JObject"]


class JavaReflectError(MROMError):
    """Reflection failure (NoSuchMethod, IllegalAccess, ...)."""


@dataclass(frozen=True)
class JMethod:
    """An immutable method description (java.lang.reflect.Method)."""

    name: str
    parameter_types: tuple[str, ...]
    return_type: str
    implementation: Callable

    def signature(self) -> str:
        params = ", ".join(self.parameter_types)
        return f"{self.return_type} {self.name}({params})"

    def invoke(self, instance: "JObject", *args: Any) -> Any:
        """Reflective invocation — the one dynamic thing JDK 1.1 allows."""
        if len(args) != len(self.parameter_types):
            raise JavaReflectError(
                f"IllegalArgument: {self.name} takes "
                f"{len(self.parameter_types)} argument(s)"
            )
        return self.implementation(instance, *args)


@dataclass(frozen=True)
class JField:
    """An immutable field description (java.lang.reflect.Field)."""

    name: str
    type_name: str

    def get(self, instance: "JObject") -> Any:
        return instance._state[self.name]

    def set(self, instance: "JObject", value: Any) -> None:
        # field *values* are assignable; field *sets* are not extendable
        if self.name not in instance._state:
            raise JavaReflectError(f"NoSuchField: {self.name}")
        instance._state[self.name] = value


class JClass:
    """An immutable class object.

    Built once; afterwards its structure cannot change — there is no
    method on this type that mutates it, deliberately.
    """

    def __init__(
        self,
        name: str,
        methods: Mapping[str, JMethod] = (),
        fields: Mapping[str, JField] = (),
        superclass: "JClass | None" = None,
    ):
        self.name = name
        self.superclass = superclass
        merged_methods = dict(superclass._methods) if superclass else {}
        merged_methods.update(dict(methods))
        merged_fields = dict(superclass._fields) if superclass else {}
        merged_fields.update(dict(fields))
        self._methods = MappingProxyType(merged_methods)
        self._fields = MappingProxyType(merged_fields)

    # -- the JDK 1.1 core-reflection surface ---------------------------------

    def get_methods(self) -> tuple[JMethod, ...]:
        return tuple(self._methods[name] for name in sorted(self._methods))

    def get_method(self, name: str) -> JMethod:
        try:
            return self._methods[name]
        except KeyError:
            raise JavaReflectError(f"NoSuchMethod: {self.name}.{name}") from None

    def get_fields(self) -> tuple[JField, ...]:
        return tuple(self._fields[name] for name in sorted(self._fields))

    def get_field(self, name: str) -> JField:
        try:
            return self._fields[name]
        except KeyError:
            raise JavaReflectError(f"NoSuchField: {self.name}.{name}") from None

    def new_instance(self, **initial_state: Any) -> "JObject":
        state = {name: None for name in self._fields}
        for name, value in initial_state.items():
            if name not in state:
                raise JavaReflectError(f"NoSuchField: {self.name}.{name}")
            state[name] = value
        return JObject(self, state)

    def is_assignable_from(self, other: "JClass") -> bool:
        current: JClass | None = other
        while current is not None:
            if current is self:
                return True
            current = current.superclass
        return False

    def __repr__(self) -> str:
        return f"JClass({self.name!r}, {len(self._methods)} methods)"


class JObject:
    """An instance: state plus a permanent class pointer."""

    def __init__(self, jclass: JClass, state: dict):
        self._jclass = jclass
        self._state = state

    def get_class(self) -> JClass:
        """The only self-representation entry point."""
        return self._jclass

    def invoke(self, method_name: str, *args: Any) -> Any:
        return self._jclass.get_method(method_name).invoke(self, *args)

    def __repr__(self) -> str:
        return f"JObject(class={self._jclass.name!r})"
