"""Baseline 1: the CORBA Dynamic Invocation Interface model.

Per the paper's related-work analysis (Section 2): "DII allows dynamic
lookup of a desired interface in an interface repository, and getting all
the required information from the repository so that a request on an
object that implements the interface can be built. This feature, along
with the ability to dynamically change the repository, allows dynamic
changes in the meaning of a certain interface." But "reflection is not
explicitly supported ... and the core object semantics, such as the
invocation mechanism, is not subject to any manipulations", and "CORBA
does not limit an interface to be implemented only by one object".

So this re-implementation provides exactly: an
:class:`InterfaceRepository` (dynamically updatable), interface
definitions with typed operations, servants bound to interfaces
(many-to-many), and request objects built from repository metadata — and
deliberately provides **no** object-level mutation and **no** way to
touch the invocation mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..core.errors import MROMError
from ..core.values import Kind, coerce

__all__ = [
    "CorbaError",
    "OperationDef",
    "InterfaceDef",
    "InterfaceRepository",
    "Servant",
    "ORB",
    "Request",
]


class CorbaError(MROMError):
    """DII-model failure (unknown interface, bad request, ...)."""


@dataclass(frozen=True)
class OperationDef:
    """One operation signature in an interface definition."""

    name: str
    parameter_kinds: tuple[Kind, ...] = ()
    result_kind: Kind = Kind.ANY


@dataclass
class InterfaceDef:
    """A named set of operation signatures."""

    name: str
    operations: dict[str, OperationDef] = field(default_factory=dict)

    def add_operation(self, operation: OperationDef) -> None:
        self.operations[operation.name] = operation

    def operation(self, name: str) -> OperationDef:
        try:
            return self.operations[name]
        except KeyError:
            raise CorbaError(
                f"interface {self.name!r} has no operation {name!r}"
            ) from None


class InterfaceRepository:
    """The dynamically changeable repository of interface definitions."""

    def __init__(self) -> None:
        self._interfaces: dict[str, InterfaceDef] = {}

    def register(self, interface: InterfaceDef, replace: bool = False) -> None:
        if interface.name in self._interfaces and not replace:
            raise CorbaError(f"interface {interface.name!r} already registered")
        self._interfaces[interface.name] = interface

    def lookup(self, name: str) -> InterfaceDef:
        try:
            return self._interfaces[name]
        except KeyError:
            raise CorbaError(f"unknown interface {name!r}") from None

    def interfaces(self) -> tuple[str, ...]:
        return tuple(sorted(self._interfaces))


class Servant:
    """An object implementing one or more interfaces.

    Implementations are plain callables; they are fixed at construction —
    the model's immutability the paper contrasts MROM against.
    """

    def __init__(self, name: str, implementations: Mapping[str, Callable]):
        self.name = name
        self._implementations = dict(implementations)

    def supports(self, interface: InterfaceDef) -> bool:
        return all(op in self._implementations for op in interface.operations)

    def implementation(self, operation: str) -> Callable:
        try:
            return self._implementations[operation]
        except KeyError:
            raise CorbaError(
                f"servant {self.name!r} does not implement {operation!r}"
            ) from None


class Request:
    """A dynamically built invocation, CORBA-DII style.

    Built from repository metadata; arguments are coerced to the declared
    parameter kinds when added; :meth:`invoke` runs it.
    """

    def __init__(self, servant: Servant, operation: OperationDef):
        self._servant = servant
        self._operation = operation
        self._arguments: list[Any] = []
        self.result: Any = None

    def add_argument(self, value: Any) -> "Request":
        index = len(self._arguments)
        kinds = self._operation.parameter_kinds
        if index >= len(kinds):
            raise CorbaError(
                f"operation {self._operation.name!r} takes "
                f"{len(kinds)} argument(s)"
            )
        self._arguments.append(coerce(value, kinds[index]))
        return self

    def invoke(self) -> Any:
        expected = len(self._operation.parameter_kinds)
        if len(self._arguments) != expected:
            raise CorbaError(
                f"operation {self._operation.name!r} needs {expected} "
                f"argument(s), got {len(self._arguments)}"
            )
        raw = self._servant.implementation(self._operation.name)(*self._arguments)
        self.result = coerce(raw, self._operation.result_kind)
        return self.result


class ORB:
    """Binds servants to interfaces and builds DII requests."""

    def __init__(self, repository: InterfaceRepository):
        self.repository = repository
        self._bindings: dict[str, list[Servant]] = {}

    def bind(self, interface_name: str, servant: Servant) -> None:
        interface = self.repository.lookup(interface_name)
        if not servant.supports(interface):
            raise CorbaError(
                f"servant {servant.name!r} does not support {interface_name!r}"
            )
        self._bindings.setdefault(interface_name, []).append(servant)

    def resolve(self, interface_name: str) -> Servant:
        servants = self._bindings.get(interface_name)
        if not servants:
            raise CorbaError(f"no servant bound to {interface_name!r}")
        return servants[0]

    def servants_for(self, interface_name: str) -> Sequence[Servant]:
        """Several objects may implement one interface — "providing
        several semantics to the same interface"."""
        return tuple(self._bindings.get(interface_name, ()))

    def create_request(
        self, interface_name: str, operation_name: str, servant: Servant | None = None
    ) -> Request:
        """The DII sequence: repository lookup, then request building."""
        interface = self.repository.lookup(interface_name)
        operation = interface.operation(operation_name)
        target = servant if servant is not None else self.resolve(interface_name)
        return Request(target, operation)
