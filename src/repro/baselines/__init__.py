"""Related-work baselines (Section 2 comparators), re-implemented.

Each module reproduces the *dynamic invocation* mechanics of one model
the paper compares MROM against, with exactly the capabilities and
limitations the paper attributes to it.
"""

from .corba_dii import (
    CorbaError,
    InterfaceDef,
    InterfaceRepository,
    OperationDef,
    ORB,
    Request,
    Servant,
)
from .dcom import Component, DcomError, IID_IUNKNOWN, InterfacePointer
from .java_reflect import JavaReflectError, JClass, JField, JMethod, JObject
from .static_object import StaticCounter, StaticRecord, StaticService

__all__ = [
    "StaticCounter",
    "StaticRecord",
    "StaticService",
    "InterfaceRepository",
    "InterfaceDef",
    "OperationDef",
    "Servant",
    "ORB",
    "Request",
    "CorbaError",
    "Component",
    "InterfacePointer",
    "IID_IUNKNOWN",
    "DcomError",
    "JClass",
    "JObject",
    "JMethod",
    "JField",
    "JavaReflectError",
]
