"""Baseline 0: a plain static object (direct Python dispatch).

The reference point for PERF-1: the paper concedes that "structural
mutability bears some price on performance, because it implies that
technically there must be an internal mechanism to lookup the location of
an item before accessing it ... whereas in static structures the location
is determined at compile time as a fixed offset". :class:`StaticCounter`
et al. are the "fixed offset" end of that comparison — ordinary classes
with ordinary attribute dispatch and no reflection, security, or
wrapping whatsoever.
"""

from __future__ import annotations

__all__ = ["StaticCounter", "StaticRecord", "StaticService"]


class StaticCounter:
    """The static twin of the test-suite's MROM counter."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def increment(self, step: int = 1) -> int:
        self.count += step
        return self.count

    def peek(self) -> int:
        return self.count


class StaticRecord:
    """A static data holder (get/set baseline)."""

    __slots__ = ("value",)

    def __init__(self, value: object = None) -> None:
        self.value = value

    def get(self) -> object:
        return self.value

    def set(self, value: object) -> None:
        self.value = value


class StaticService:
    """An N-method object for lookup-cost comparisons.

    Methods ``op0`` .. ``op{n-1}`` are generated once at class-build time —
    the static analog of an MROM object with *n* methods in a container.
    """

    def __init__(self, operations: int = 16):
        self.calls = 0
        for index in range(operations):
            setattr(self, f"op{index}", self._make_op(index))

    def _make_op(self, index: int):
        def operation(x: int = 0) -> int:
            self.calls += 1
            return x + index

        return operation
