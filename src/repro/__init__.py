"""repro — reproduction of "A Reflective Model for Mobile Software Objects".

Holder & Ben-Shaul, ICDCS 1997. The package provides:

* :mod:`repro.core` — MROM, the mutable reflective object model;
* :mod:`repro.naming` — decentralized identity and naming;
* :mod:`repro.sim` / :mod:`repro.net` — deterministic simulated internetwork;
* :mod:`repro.mobility` — sandbox, packing, migration, itineraries;
* :mod:`repro.persistence` — self-contained object persistence;
* :mod:`repro.security` — trust domains, host/guest policies, audit;
* :mod:`repro.concurrency` — synchronization and atomic mutation;
* :mod:`repro.baselines` — CORBA-DII / DCOM / Java-reflection comparators;
* :mod:`repro.apps` — synthetic legacy applications;
* :mod:`repro.hadas` — the HADAS interoperability framework;
* :mod:`repro.lang` — MPL, a small mobile-programming language.
"""

__version__ = "1.0.0"
