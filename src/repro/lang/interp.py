"""The MPL interpreter: declarations become MROM objects, statements run.

Top-level script code executes directly over the AST with a workspace of
variables; object declarations become live :class:`MROMObject` instances
whose methods are the compiler's portable sources. MPL objects are
therefore mobile out of the box: anything declared in MPL packs, ships
and installs like any hand-built portable object.

>>> from repro.lang import Interpreter
>>> result = Interpreter().run('''
... object counter {
...   fixed data count = 0
...   fixed method bump(step) { count = count + step
...     return count }
... }
... let c = new counter
... print c.bump(5)
... ''')
>>> result.output
['5']
"""

from __future__ import annotations

from typing import Any

from ..core.acl import Principal, owner_only
from ..core.errors import MPLRuntimeError
from ..core.mobject import MROMObject
from ..core.values import Kind
from ..net.rmi import RemoteRef
from . import ast_nodes as ast
from .compiler import BUILTINS, compile_object_methods
from .parser import parse

__all__ = ["Interpreter", "RunResult", "build_object"]

_BUILTIN_IMPLS = {
    "len": len, "str": str, "int": int, "float": float, "bool": bool,
    "abs": abs, "min": min, "max": max, "sum": sum, "sorted": sorted,
    "reversed": lambda value: list(reversed(value)), "range": lambda *a: list(range(*a)),
    "round": round, "list": list, "dict": dict,
}


class RunResult:
    """What a program run produced."""

    def __init__(self):
        self.value: Any = None  # value of the last top-level statement
        self.output: list[str] = []  # everything `print` emitted
        self.variables: dict[str, Any] = {}
        self.objects: dict[str, ast.ObjectDecl] = {}

    def __repr__(self) -> str:
        return f"RunResult(value={self.value!r}, {len(self.output)} lines)"


def build_object(
    decl: ast.ObjectDecl,
    owner: Principal | None = None,
    guid: str | None = None,
    display_name: str = "",
) -> MROMObject:
    """Instantiate one MPL object declaration as a live MROM object."""
    obj = MROMObject(
        guid=guid,
        display_name=display_name or decl.name,
        owner=owner,
        extensible_meta=decl.extensible_meta,
    )
    effective_owner = obj.owner
    evaluator = _Evaluator(Interpreter(owner=effective_owner), RunResult())

    def initial_value(data_decl: ast.DataDecl):
        if data_decl.initial is None:
            return None
        return evaluator.eval(data_decl.initial)

    for data_decl in decl.data:
        options = {
            "kind": Kind(data_decl.kind),
            "metadata": {"mpl": True},
        }
        if data_decl.private:
            options["acl"] = owner_only(effective_owner)
        if data_decl.fixed:
            obj.define_fixed_data(data_decl.name, initial_value(data_decl), **options)
    compiled_methods = compile_object_methods(decl)
    for compiled in compiled_methods:
        if not compiled.fixed:
            continue
        options = {"metadata": {"mpl": True}}
        if compiled.private:
            options["acl"] = owner_only(effective_owner)
        obj.define_fixed_method(
            compiled.name,
            compiled.body_source,
            pre=compiled.pre_source,
            post=compiled.post_source,
            **options,
        )
    obj.seal()
    view = obj.self_view()
    for data_decl in decl.data:
        if not data_decl.fixed:
            properties: dict = {"metadata": {"mpl": True}}
            if data_decl.private:
                properties["acl"] = owner_only(effective_owner).describe()
            properties["kind"] = data_decl.kind
            view.add_data(data_decl.name, initial_value(data_decl), properties)
    for compiled in compiled_methods:
        if compiled.fixed:
            continue
        properties = {"metadata": {"mpl": True}}
        if compiled.private:
            properties["acl"] = owner_only(effective_owner).describe()
        if compiled.pre_source is not None:
            properties["pre"] = compiled.pre_source
        if compiled.post_source is not None:
            properties["post"] = compiled.post_source
        view.add_method(compiled.name, compiled.body_source, properties)
    return obj


class Interpreter:
    """Parses and runs MPL programs.

    *owner* is the principal script-created objects belong to and the
    caller identity for every top-level invocation.
    """

    def __init__(self, owner: Principal | None = None):
        self.owner = owner if owner is not None else Principal(
            guid="mrom:mpl-script", domain="", display_name="mpl"
        )

    def run(
        self, source: str, bindings: dict[str, Any] | None = None
    ) -> RunResult:
        """Run a program; *bindings* seeds the variable workspace (e.g.
        remote references or pre-built objects handed in by the host)."""
        program = parse(source)
        result = RunResult()
        result.objects = {decl.name: decl for decl in program.objects}
        if bindings:
            result.variables.update(bindings)
        evaluator = _Evaluator(self, result)
        for statement in program.statements:
            result.value = evaluator.exec(statement)
        return result


class MplSession:
    """A stateful MPL session: feed it program fragments, state persists.

    The REPL substrate: variables, object declarations and instantiated
    objects survive across :meth:`feed` calls, so a user (or a test)
    builds a world incrementally.

    >>> session = MplSession()
    >>> _ = session.feed("object c { fixed data n = 0\\n"
    ...                  "  fixed method bump() { n = n + 1\\nreturn n } }")
    >>> _ = session.feed("let c1 = new c")
    >>> session.feed("c1.bump()")[0]
    1
    >>> session.feed("c1.bump()")[0]
    2
    """

    def __init__(self, owner: Principal | None = None, bindings: dict | None = None):
        self.interpreter = Interpreter(owner=owner)
        self.state = RunResult()
        if bindings:
            self.state.variables.update(bindings)

    def feed(self, source: str) -> tuple[Any, list[str]]:
        """Run one fragment; returns (last value, new output lines)."""
        program = parse(source)
        for decl in program.objects:
            self.state.objects[decl.name] = decl
        evaluator = _Evaluator(self.interpreter, self.state)
        before = len(self.state.output)
        value = None
        for statement in program.statements:
            value = evaluator.exec(statement)
        self.state.value = value
        return value, self.state.output[before:]

    @property
    def variables(self) -> dict:
        return self.state.variables


class _Evaluator:
    """Direct AST evaluation for top-level script code."""

    def __init__(self, interpreter: Interpreter, result: RunResult):
        self.interpreter = interpreter
        self.result = result

    # -- statements ----------------------------------------------------------

    def exec(self, node) -> Any:
        if isinstance(node, ast.Let):
            value = self.eval(node.value)
            self.result.variables[node.name] = value
            return value
        if isinstance(node, ast.Assign):
            if node.name not in self.result.variables:
                raise MPLRuntimeError(
                    f"assignment to undeclared variable {node.name!r} (use 'let')"
                )
            value = self.eval(node.value)
            self.result.variables[node.name] = value
            return value
        if isinstance(node, ast.IndexAssign):
            target = self.eval(node.target)
            target[self.eval(node.index)] = self.eval(node.value)
            return None
        if isinstance(node, ast.Print):
            value = self.eval(node.value)
            self.result.output.append(_render(value))
            return value
        if isinstance(node, ast.If):
            branch = node.then_body if self.eval(node.condition) else node.else_body
            value = None
            for statement in branch:
                value = self.exec(statement)
            return value
        if isinstance(node, ast.While):
            value = None
            guard = 0
            while self.eval(node.condition):
                for statement in node.body:
                    value = self.exec(statement)
                guard += 1
                if guard > 1_000_000:
                    raise MPLRuntimeError("script loop exceeded 1e6 iterations")
            return value
        if isinstance(node, ast.ForEach):
            value = None
            for element in self.eval(node.iterable):
                self.result.variables[node.name] = element
                for statement in node.body:
                    value = self.exec(statement)
            return value
        if isinstance(node, ast.Return):
            raise MPLRuntimeError("'return' outside a method body")
        if isinstance(node, ast.ExprStmt):
            return self.eval(node.value)
        raise MPLRuntimeError(f"cannot execute {type(node).__name__} at top level")

    # -- expressions -----------------------------------------------------------

    def eval(self, node) -> Any:
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.Name):
            name = node.ident
            if name in self.result.variables:
                return self.result.variables[name]
            if name in BUILTINS:
                return _BUILTIN_IMPLS[name]
            raise MPLRuntimeError(f"unknown name {name!r}")
        if isinstance(node, ast.SelfRef):
            raise MPLRuntimeError("'self' is only meaningful inside methods")
        if isinstance(node, ast.NewObject):
            decl = self.result.objects.get(node.decl_name)
            if decl is None:
                raise MPLRuntimeError(f"no object declaration {node.decl_name!r}")
            return build_object(decl, owner=self.interpreter.owner)
        if isinstance(node, ast.ListExpr):
            return [self.eval(element) for element in node.elements]
        if isinstance(node, ast.MapExpr):
            return {self.eval(k): self.eval(v) for k, v in node.pairs}
        if isinstance(node, ast.Unary):
            operand = self.eval(node.operand)
            return -operand if node.op == "-" else not operand
        if isinstance(node, ast.Binary):
            return self._binary(node)
        if isinstance(node, ast.Index):
            return self.eval(node.target)[self.eval(node.index)]
        if isinstance(node, ast.MethodCall):
            return self._call(node)
        if isinstance(node, ast.FuncCall):
            func = self.eval(node.func)
            if not callable(func):
                raise MPLRuntimeError(
                    f"value of type {type(func).__name__} is not callable"
                )
            return func(*[self.eval(argument) for argument in node.args])
        raise MPLRuntimeError(f"cannot evaluate {type(node).__name__}")

    def _binary(self, node: ast.Binary) -> Any:
        if node.op == "and":
            left = self.eval(node.left)
            return self.eval(node.right) if left else left
        if node.op == "or":
            left = self.eval(node.left)
            return left if left else self.eval(node.right)
        left = self.eval(node.left)
        right = self.eval(node.right)
        operations = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left / right,
            "%": lambda: left % right,
            "==": lambda: left == right,
            "!=": lambda: left != right,
            "<": lambda: left < right,
            "<=": lambda: left <= right,
            ">": lambda: left > right,
            ">=": lambda: left >= right,
        }
        try:
            return operations[node.op]()
        except KeyError:
            raise MPLRuntimeError(f"unknown operator {node.op!r}") from None

    def _call(self, node: ast.MethodCall) -> Any:
        if isinstance(node.target, ast.SelfRef):
            raise MPLRuntimeError("'self' is only meaningful inside methods")
        target = self.eval(node.target)
        args = [self.eval(argument) for argument in node.args]
        if isinstance(target, MROMObject):
            return target.invoke(node.name, args, caller=self.interpreter.owner)
        if isinstance(target, RemoteRef):
            return target.invoke(node.name, args, caller=self.interpreter.owner)
        if callable(target):  # a builtin fetched by name
            raise MPLRuntimeError(
                f"{node.name!r} is not invocable on a builtin function"
            )
        raise MPLRuntimeError(
            f"cannot invoke {node.name!r} on a {type(target).__name__} value"
        )


def _render(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, MROMObject):
        return f"<object {value.principal.display_name or value.guid}>"
    if isinstance(value, RemoteRef):
        return f"<remote {value.guid}@{value.site}>"
    return str(value)
