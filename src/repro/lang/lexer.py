"""The MPL lexer.

MPL ("Mobile Programming Language") is the paper's future-work item made
concrete: "One step further would be to build a programming language
around MROM that facilitates 'mobile programming'." The surface syntax
is small — object declarations with fixed/extensible sections, methods
with ``requires``/``ensures`` wrapping clauses, and imperative script
statements — and compiles onto the MROM machinery.

Tokens: identifiers, keywords, integer/real/string literals, operators
and punctuation. ``//`` starts a line comment. Newlines are tokens
(statement separators); indentation is not significant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import MPLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "object", "fixed", "data", "method", "requires", "ensures",
        "let", "return", "if", "else", "while", "for", "in", "print",
        "true", "false", "null", "and", "or", "not", "self", "meta",
        "extensible", "new", "public", "private",
    }
)

_PUNCT = (
    "==", "!=", "<=", ">=", "->",
    "{", "}", "(", ")", "[", "]",
    ",", ":", ".", "=", "+", "-", "*", "/", "%", "<", ">",
)


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "keyword" | "int" | "real" | "string" | "punct" | "newline" | "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Turn MPL source text into a token list (ending with ``eof``)."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)
    paren_depth = 0  # newlines inside ( ) and [ ] join lines implicitly

    def error(message: str) -> MPLSyntaxError:
        return MPLSyntaxError(message, line=line, column=column)

    while index < length:
        char = source[index]
        if char == "\n":
            if paren_depth == 0 and tokens and tokens[-1].kind not in ("newline",):
                tokens.append(Token("newline", "\n", line, column))
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and source[index + 1].isdigit()
        ):
            start = index
            start_column = column
            seen_dot = False
            while index < length and (source[index].isdigit() or source[index] == "."):
                if source[index] == ".":
                    if seen_dot:
                        break
                    # ``1.method()`` is punctuation, not a real literal
                    if index + 1 >= length or not source[index + 1].isdigit():
                        break
                    seen_dot = True
                index += 1
                column += 1
            text = source[start:index]
            tokens.append(
                Token("real" if "." in text else "int", text, line, start_column)
            )
            continue
        if char.isalpha() or char == "_":
            start = index
            start_column = column
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
                column += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_column))
            continue
        if char in "\"'":
            quote = char
            start_column = column
            index += 1
            column += 1
            pieces: list[str] = []
            while True:
                if index >= length or source[index] == "\n":
                    raise error("unterminated string literal")
                current = source[index]
                if current == quote:
                    index += 1
                    column += 1
                    break
                if current == "\\":
                    if index + 1 >= length:
                        raise error("dangling escape at end of input")
                    escape = source[index + 1]
                    mapping = {"n": "\n", "t": "\t", "\\": "\\", quote: quote}
                    if escape not in mapping:
                        raise error(f"unknown escape \\{escape}")
                    pieces.append(mapping[escape])
                    index += 2
                    column += 2
                    continue
                pieces.append(current)
                index += 1
                column += 1
            tokens.append(Token("string", "".join(pieces), line, start_column))
            continue
        matched = False
        for punct in _PUNCT:
            if source.startswith(punct, index):
                if punct in ("(", "["):
                    paren_depth += 1
                elif punct in (")", "]"):
                    paren_depth = max(0, paren_depth - 1)
                tokens.append(Token("punct", punct, line, column))
                index += len(punct)
                column += len(punct)
                matched = True
                break
        if not matched:
            raise error(f"unexpected character {char!r}")
    tokens.append(Token("eof", "", line, column))
    return tokens
