"""The MPL recursive-descent parser.

Grammar (newline-separated statements, ``//`` comments)::

    program    := (object_decl | stmt)*
    object_decl:= "object" IDENT ["extensible" "meta"] "{" member* "}"
    member     := ["fixed"] ["private"] "data" IDENT [":" IDENT] ["=" expr]
                | ["fixed"] ["private"] "method" IDENT "(" params ")"
                  ["requires" expr] ["ensures" expr] block
    block      := "{" stmt* "}"
    stmt       := "let" IDENT "=" expr
                | "return" [expr]
                | "if" expr block ["else" block]
                | "while" expr block
                | "for" IDENT "in" expr block
                | "print" expr
                | IDENT "=" expr
                | postfix "[" expr "]" "=" expr
                | expr
    expr       := or ( "or" or )*          -- usual precedence ladder
    postfix    := atom ( "." IDENT "(" args ")" | "[" expr "]" )*
    atom       := INT | REAL | STRING | "true" | "false" | "null"
                | "self" | "new" IDENT | IDENT
                | "(" expr ")" | "[" args "]" | "{" pairs "}"
"""

from __future__ import annotations

from ..core.errors import MPLSyntaxError
from . import ast_nodes as ast
from .lexer import Token, tokenize

__all__ = ["parse", "span_of"]


def _mark(node, token: Token):
    """Attach the source span of *token* to *node*.

    AST nodes are frozen dataclasses, so the span travels as a non-field
    attribute (equality and repr are untouched); :func:`span_of` reads it
    back. Static analysis uses this to anchor diagnostics.
    """
    object.__setattr__(node, "line", token.line)
    object.__setattr__(node, "column", token.column)
    return node


def span_of(node) -> tuple[int, int]:
    """(line, column) recorded by the parser, or (0, 0) when absent."""
    return getattr(node, "line", 0), getattr(node, "column", 0)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def error(self, message: str) -> MPLSyntaxError:
        token = self.current
        return MPLSyntaxError(message, line=token.line, column=token.column)

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def skip_newlines(self) -> None:
        while self.current.kind == "newline":
            self.advance()

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def at_keyword(self, *words: str) -> bool:
        return self.current.kind == "keyword" and self.current.text in words

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.at(kind, text):
            wanted = text if text is not None else kind
            raise self.error(
                f"expected {wanted!r}, found {self.current.text or self.current.kind!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> bool:
        if self.at(kind, text):
            self.advance()
            return True
        return False

    # -- program ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        objects: list[ast.ObjectDecl] = []
        statements: list = []
        self.skip_newlines()
        while not self.at("eof"):
            if self.at_keyword("object"):
                objects.append(self.parse_object())
            else:
                statements.append(self.parse_statement())
            self.skip_newlines()
        return ast.Program(tuple(objects), tuple(statements))

    # -- declarations --------------------------------------------------------

    def parse_object(self) -> ast.ObjectDecl:
        start = self.expect("keyword", "object")
        name = self.expect("ident").text
        extensible_meta = False
        if self.accept("keyword", "extensible"):
            self.expect("keyword", "meta")
            extensible_meta = True
        self.expect("punct", "{")
        data: list[ast.DataDecl] = []
        methods: list[ast.MethodDecl] = []
        self.skip_newlines()
        while not self.accept("punct", "}"):
            fixed = self.accept("keyword", "fixed")
            private = self.accept("keyword", "private")
            if not fixed:
                fixed = self.accept("keyword", "fixed")  # either order
            if self.at_keyword("data"):
                data.append(self.parse_data_decl(fixed, private))
            elif self.at_keyword("method"):
                methods.append(self.parse_method_decl(fixed, private))
            else:
                raise self.error("expected 'data' or 'method' in object body")
            self.skip_newlines()
        return _mark(
            ast.ObjectDecl(name, extensible_meta, tuple(data), tuple(methods)),
            start,
        )

    def parse_data_decl(self, fixed: bool, private: bool) -> ast.DataDecl:
        start = self.expect("keyword", "data")
        name = self.expect("ident").text
        kind = "any"
        if self.accept("punct", ":"):
            kind = self.advance().text
        initial = None
        if self.accept("punct", "="):
            initial = self.parse_expression()
        return _mark(
            ast.DataDecl(name, fixed=fixed, kind=kind, initial=initial,
                         private=private),
            start,
        )

    def parse_method_decl(self, fixed: bool, private: bool) -> ast.MethodDecl:
        start = self.expect("keyword", "method")
        name = self.expect("ident").text
        self.expect("punct", "(")
        params: list[str] = []
        while not self.accept("punct", ")"):
            params.append(self.expect("ident").text)
            if not self.at("punct", ")"):
                self.expect("punct", ",")
        requires = None
        ensures = None
        self.skip_newlines()
        while self.at_keyword("requires", "ensures"):
            word = self.advance().text
            clause = self.parse_expression()
            if word == "requires":
                requires = clause
            else:
                ensures = clause
            self.skip_newlines()
        body = self.parse_block()
        return _mark(
            ast.MethodDecl(
                name, fixed=fixed, params=tuple(params), body=body,
                requires=requires, ensures=ensures, private=private,
            ),
            start,
        )

    def parse_block(self) -> tuple:
        self.expect("punct", "{")
        statements: list = []
        self.skip_newlines()
        while not self.accept("punct", "}"):
            statements.append(self.parse_statement())
            self.skip_newlines()
        return tuple(statements)

    # -- statements -----------------------------------------------------------

    def parse_statement(self):
        start = self.current
        if self.accept("keyword", "let"):
            name = self.expect("ident").text
            self.expect("punct", "=")
            return _mark(ast.Let(name, self.parse_expression()), start)
        if self.accept("keyword", "return"):
            if self.at("newline") or self.at("punct", "}") or self.at("eof"):
                return _mark(ast.Return(None), start)
            return _mark(ast.Return(self.parse_expression()), start)
        if self.accept("keyword", "if"):
            condition = self.parse_expression()
            then_body = self.parse_block()
            else_body: tuple = ()
            self.skip_newlines()
            if self.accept("keyword", "else"):
                else_body = self.parse_block()
            return _mark(ast.If(condition, then_body, else_body), start)
        if self.accept("keyword", "while"):
            condition = self.parse_expression()
            return _mark(ast.While(condition, self.parse_block()), start)
        if self.accept("keyword", "for"):
            name = self.expect("ident").text
            self.expect("keyword", "in")
            iterable = self.parse_expression()
            return _mark(ast.ForEach(name, iterable, self.parse_block()), start)
        if self.accept("keyword", "print"):
            return _mark(ast.Print(self.parse_expression()), start)
        # assignment vs expression: parse an expression, then look for '='
        expression = self.parse_expression()
        if self.accept("punct", "="):
            value = self.parse_expression()
            if isinstance(expression, ast.Name):
                return _mark(ast.Assign(expression.ident, value), start)
            if isinstance(expression, ast.Index):
                return _mark(
                    ast.IndexAssign(expression.target, expression.index, value),
                    start,
                )
            raise self.error("invalid assignment target")
        return _mark(ast.ExprStmt(expression), start)

    # -- expressions -------------------------------------------------------------

    def parse_expression(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.accept("keyword", "or"):
            left = ast.Binary("or", left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_not()
        while self.accept("keyword", "and"):
            left = ast.Binary("and", left, self.parse_not())
        return left

    def parse_not(self):
        if self.accept("keyword", "not"):
            return ast.Unary("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self):
        left = self.parse_additive()
        while self.current.kind == "punct" and self.current.text in (
            "==", "!=", "<", "<=", ">", ">=",
        ):
            op = self.advance().text
            left = ast.Binary(op, left, self.parse_additive())
        return left

    def parse_additive(self):
        left = self.parse_multiplicative()
        while self.current.kind == "punct" and self.current.text in ("+", "-"):
            op = self.advance().text
            left = ast.Binary(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self):
        left = self.parse_unary()
        while self.current.kind == "punct" and self.current.text in ("*", "/", "%"):
            op = self.advance().text
            left = ast.Binary(op, left, self.parse_unary())
        return left

    def parse_unary(self):
        if self.accept("punct", "-"):
            return ast.Unary("-", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self):
        start = self.current
        expression = self.parse_atom()
        while True:
            if self.accept("punct", "."):
                name = self.advance()
                if name.kind not in ("ident", "keyword"):
                    raise self.error("expected a member name after '.'")
                self.expect("punct", "(")
                args: list = []
                while not self.accept("punct", ")"):
                    args.append(self.parse_expression())
                    if not self.at("punct", ")"):
                        self.expect("punct", ",")
                expression = _mark(
                    ast.MethodCall(expression, name.text, tuple(args)), name
                )
                continue
            if self.accept("punct", "["):
                index = self.parse_expression()
                self.expect("punct", "]")
                expression = _mark(ast.Index(expression, index), start)
                continue
            if self.at("punct", "("):
                self.advance()
                args: list = []
                while not self.accept("punct", ")"):
                    args.append(self.parse_expression())
                    if not self.at("punct", ")"):
                        self.expect("punct", ",")
                expression = _mark(ast.FuncCall(expression, tuple(args)), start)
                continue
            return expression

    def parse_atom(self):
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.Literal(int(token.text))
        if token.kind == "real":
            self.advance()
            return ast.Literal(float(token.text))
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.text)
        if self.accept("keyword", "true"):
            return ast.Literal(True)
        if self.accept("keyword", "false"):
            return ast.Literal(False)
        if self.accept("keyword", "null"):
            return ast.Literal(None)
        if self.accept("keyword", "self"):
            return _mark(ast.SelfRef(), token)
        if self.accept("keyword", "new"):
            return _mark(ast.NewObject(self.expect("ident").text), token)
        if token.kind == "ident":
            self.advance()
            return _mark(ast.Name(token.text), token)
        if self.accept("punct", "("):
            inner = self.parse_expression()
            self.expect("punct", ")")
            return inner
        if self.accept("punct", "["):
            elements: list = []
            self.skip_newlines()
            while not self.accept("punct", "]"):
                elements.append(self.parse_expression())
                self.skip_newlines()
                if not self.at("punct", "]"):
                    self.expect("punct", ",")
                    self.skip_newlines()
            return ast.ListExpr(tuple(elements))
        if self.accept("punct", "{"):
            pairs: list = []
            self.skip_newlines()
            while not self.accept("punct", "}"):
                key = self.parse_expression()
                self.expect("punct", ":")
                pairs.append((key, self.parse_expression()))
                self.skip_newlines()
                if not self.at("punct", "}"):
                    self.expect("punct", ",")
                    self.skip_newlines()
            return ast.MapExpr(tuple(pairs))
        raise self.error(f"unexpected token {token.text or token.kind!r}")


def parse(source: str) -> ast.Program:
    """Parse MPL source text into a :class:`~repro.lang.ast_nodes.Program`."""
    parser = _Parser(tokenize(source))
    return parser.parse_program()
