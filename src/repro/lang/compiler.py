"""The MPL method compiler: AST -> portable Python source.

MPL method bodies compile to the *portable source* dialect the sandbox
verifies (:mod:`repro.mobility.sandbox`), so everything written in MPL is
mobile by construction — the language makes the paper's "mobile
programming" the default, not an option.

Name resolution inside a method:

* parameters — positional slices of the untyped ``args`` array;
* declared data items — sugar for ``self.get``/``self.set``;
* ``let``/``for`` names — plain locals;
* ``self.x(...)`` — a facade operation when ``x`` is part of the
  :class:`~repro.core.mobject.SelfView` API, otherwise a sibling-method
  invocation through ``self.call``;
* ``expr.m(...)`` — an MROM invocation on the target value (works for
  local objects and remote references alike);
* a small set of builtins (``len``, ``str``, ...) pass through.
"""

from __future__ import annotations

from ..core.errors import MPLSyntaxError
from . import ast_nodes as ast

__all__ = ["compile_method_body", "compile_clause", "CompiledMethod", "compile_object_methods"]

#: operations resolved directly against the SelfView facade
SELFVIEW_API = frozenset(
    {
        "get", "set", "call", "has_data", "has_method",
        "add_data", "delete_data", "add_method", "delete_method",
        "data_names", "method_names",
    }
)

#: builtins MPL expressions may name (a subset of the sandbox whitelist)
BUILTINS = frozenset(
    {
        "len", "str", "int", "float", "bool", "abs", "min", "max", "sum",
        "sorted", "reversed", "range", "round", "list", "dict",
    }
)

_RESERVED = frozenset({"self", "args", "ctx", "result", "portable"})

_BINARY_OPS = {
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "and": "and", "or": "or",
}


class _Scope:
    """Name resolution context for one method."""

    def __init__(self, params: tuple, data_names: frozenset):
        for name in params:
            if name in _RESERVED:
                raise MPLSyntaxError(f"parameter name {name!r} is reserved")
        self.params = {name: index for index, name in enumerate(params)}
        self.data_names = data_names
        self.locals: set[str] = set()
        self.allow_result = False

    def declare_local(self, name: str) -> None:
        if name in _RESERVED:
            raise MPLSyntaxError(f"local name {name!r} is reserved")
        if name in self.params or name in self.data_names:
            raise MPLSyntaxError(
                f"'let {name}' shadows a parameter or data item"
            )
        self.locals.add(name)


def _compile_expr(node, scope: _Scope) -> str:
    if isinstance(node, ast.Literal):
        return repr(node.value)
    if isinstance(node, ast.Name):
        name = node.ident
        if name in scope.params:
            return f"args[{scope.params[name]}]"
        if name in scope.locals:
            return name
        if name in scope.data_names:
            return f"self.get({name!r})"
        if name == "result" and scope.allow_result:
            return "result"
        if name in BUILTINS:
            return name
        raise MPLSyntaxError(f"unknown name {name!r} in method body")
    if isinstance(node, ast.SelfRef):
        raise MPLSyntaxError("'self' can only be used as a call target")
    if isinstance(node, ast.ListExpr):
        inner = ", ".join(_compile_expr(e, scope) for e in node.elements)
        return f"[{inner}]"
    if isinstance(node, ast.MapExpr):
        inner = ", ".join(
            f"{_compile_expr(k, scope)}: {_compile_expr(v, scope)}"
            for k, v in node.pairs
        )
        return "{" + inner + "}"
    if isinstance(node, ast.Unary):
        operand = _compile_expr(node.operand, scope)
        return f"(-{operand})" if node.op == "-" else f"(not {operand})"
    if isinstance(node, ast.Binary):
        op = _BINARY_OPS.get(node.op)
        if op is None:
            raise MPLSyntaxError(f"unknown operator {node.op!r}")
        left = _compile_expr(node.left, scope)
        right = _compile_expr(node.right, scope)
        return f"({left} {op} {right})"
    if isinstance(node, ast.Index):
        target = _compile_expr(node.target, scope)
        index = _compile_expr(node.index, scope)
        return f"{target}[{index}]"
    if isinstance(node, ast.MethodCall):
        arg_sources = [_compile_expr(a, scope) for a in node.args]
        if isinstance(node.target, ast.SelfRef):
            if node.name in SELFVIEW_API:
                return f"self.{node.name}({', '.join(arg_sources)})"
            return f"self.call({node.name!r}{''.join(', ' + a for a in arg_sources)})"
        target = _compile_expr(node.target, scope)
        return f"{target}.invoke({node.name!r}, [{', '.join(arg_sources)}])"
    if isinstance(node, ast.FuncCall):
        if not (isinstance(node.func, ast.Name) and node.func.ident in BUILTINS):
            raise MPLSyntaxError(
                "only builtin functions can be called directly in methods"
            )
        arg_sources = ", ".join(_compile_expr(a, scope) for a in node.args)
        return f"{node.func.ident}({arg_sources})"
    if isinstance(node, ast.NewObject):
        raise MPLSyntaxError("'new' is only available in top-level script code")
    raise MPLSyntaxError(f"cannot compile expression {type(node).__name__}")


def _compile_stmt(node, scope: _Scope, lines: list[str], indent: int) -> None:
    pad = "    " * indent
    if isinstance(node, ast.Let):
        scope.declare_local(node.name)
        lines.append(f"{pad}{node.name} = {_compile_expr(node.value, scope)}")
        return
    if isinstance(node, ast.Assign):
        name = node.name
        value = _compile_expr(node.value, scope)
        if name in scope.data_names:
            lines.append(f"{pad}self.set({name!r}, {value})")
            return
        if name in scope.locals:
            lines.append(f"{pad}{name} = {value}")
            return
        if name in scope.params:
            raise MPLSyntaxError(f"cannot assign to parameter {name!r}")
        raise MPLSyntaxError(
            f"assignment to undeclared name {name!r} (use 'let')"
        )
    if isinstance(node, ast.IndexAssign):
        target = _compile_expr(node.target, scope)
        index = _compile_expr(node.index, scope)
        value = _compile_expr(node.value, scope)
        lines.append(f"{pad}{target}[{index}] = {value}")
        return
    if isinstance(node, ast.Return):
        if node.value is None:
            lines.append(f"{pad}return None")
        else:
            lines.append(f"{pad}return {_compile_expr(node.value, scope)}")
        return
    if isinstance(node, ast.If):
        lines.append(f"{pad}if {_compile_expr(node.condition, scope)}:")
        _compile_block(node.then_body, scope, lines, indent + 1)
        if node.else_body:
            lines.append(f"{pad}else:")
            _compile_block(node.else_body, scope, lines, indent + 1)
        return
    if isinstance(node, ast.While):
        lines.append(f"{pad}while {_compile_expr(node.condition, scope)}:")
        _compile_block(node.body, scope, lines, indent + 1)
        return
    if isinstance(node, ast.ForEach):
        scope.declare_local(node.name)
        lines.append(
            f"{pad}for {node.name} in {_compile_expr(node.iterable, scope)}:"
        )
        _compile_block(node.body, scope, lines, indent + 1)
        return
    if isinstance(node, ast.Print):
        lines.append(f"{pad}print({_compile_expr(node.value, scope)})")
        return
    if isinstance(node, ast.ExprStmt):
        lines.append(f"{pad}{_compile_expr(node.value, scope)}")
        return
    raise MPLSyntaxError(f"cannot compile statement {type(node).__name__}")


def _compile_block(body, scope: _Scope, lines: list[str], indent: int) -> None:
    if not body:
        lines.append("    " * indent + "pass")
        return
    for statement in body:
        _compile_stmt(statement, scope, lines, indent)


class CompiledMethod:
    """Portable sources for one method: body plus optional pre/post."""

    __slots__ = ("name", "body_source", "pre_source", "post_source", "fixed", "private")

    def __init__(self, name, body_source, pre_source, post_source, fixed, private):
        self.name = name
        self.body_source = body_source
        self.pre_source = pre_source
        self.post_source = post_source
        self.fixed = fixed
        self.private = private


def compile_method_body(decl: ast.MethodDecl, data_names: frozenset) -> str:
    scope = _Scope(decl.params, data_names)
    lines: list[str] = []
    _compile_block(decl.body, scope, lines, 0)
    return "\n".join(lines)


def compile_clause(
    expr, decl: ast.MethodDecl, data_names: frozenset, with_result: bool
) -> str:
    """Compile a ``requires``/``ensures`` clause to a boolean procedure."""
    scope = _Scope(decl.params, data_names)
    scope.allow_result = with_result
    return f"return bool({_compile_expr(expr, scope)})"


def compile_member_source(
    member_source: str, data_names: frozenset = frozenset()
) -> CompiledMethod:
    """Compile one stand-alone MPL ``method`` declaration.

    Used by hosts that accept method definitions in MPL without a full
    object declaration — notably HADAS interoperability programs, where
    the surrounding object (the IOO) already exists and *data_names*
    names the data items the program may touch (e.g. ``imports``).
    """
    from .parser import parse  # local import: parser imports this module's peer

    program = parse(f"object standalone {{\n{member_source}\n}}")
    if len(program.objects) != 1 or program.statements:
        raise MPLSyntaxError("expected exactly one method declaration")
    decl = program.objects[0]
    if len(decl.methods) != 1 or decl.data:
        raise MPLSyntaxError("expected exactly one method declaration")
    method = decl.methods[0]
    body = compile_method_body(method, data_names)
    pre = (
        compile_clause(method.requires, method, data_names, with_result=False)
        if method.requires is not None
        else None
    )
    post = (
        compile_clause(method.ensures, method, data_names, with_result=True)
        if method.ensures is not None
        else None
    )
    return CompiledMethod(method.name, body, pre, post, method.fixed, method.private)


def compile_object_methods(decl: ast.ObjectDecl) -> list[CompiledMethod]:
    """Compile every method of an object declaration."""
    data_names = frozenset(d.name for d in decl.data)
    compiled: list[CompiledMethod] = []
    for method in decl.methods:
        body = compile_method_body(method, data_names)
        pre = (
            compile_clause(method.requires, method, data_names, with_result=False)
            if method.requires is not None
            else None
        )
        post = (
            compile_clause(method.ensures, method, data_names, with_result=True)
            if method.ensures is not None
            else None
        )
        compiled.append(
            CompiledMethod(method.name, body, pre, post, method.fixed, method.private)
        )
    return compiled
