"""The MPL method compiler: AST -> portable Python source.

MPL method bodies compile to the *portable source* dialect the sandbox
verifies (:mod:`repro.mobility.sandbox`), so everything written in MPL is
mobile by construction — the language makes the paper's "mobile
programming" the default, not an option.

Name resolution inside a method:

* parameters — positional slices of the untyped ``args`` array;
* declared data items — sugar for ``self.get``/``self.set``;
* ``let``/``for`` names — plain locals;
* ``self.x(...)`` — a facade operation when ``x`` is part of the
  :class:`~repro.core.mobject.SelfView` API, otherwise a sibling-method
  invocation through ``self.call``;
* ``expr.m(...)`` — an MROM invocation on the target value (works for
  local objects and remote references alike);
* a small set of builtins (``len``, ``str``, ...) pass through.
"""

from __future__ import annotations

from ..core.errors import MPLSyntaxError
from . import ast_nodes as ast

__all__ = [
    "compile_method_body",
    "compile_clause",
    "CompiledMethod",
    "compile_object_methods",
    "compile_invocation",
]

#: operations resolved directly against the SelfView facade
SELFVIEW_API = frozenset(
    {
        "get", "set", "call", "has_data", "has_method",
        "add_data", "delete_data", "add_method", "delete_method",
        "data_names", "method_names",
    }
)

#: builtins MPL expressions may name (a subset of the sandbox whitelist)
BUILTINS = frozenset(
    {
        "len", "str", "int", "float", "bool", "abs", "min", "max", "sum",
        "sorted", "reversed", "range", "round", "list", "dict",
    }
)

_RESERVED = frozenset({"self", "args", "ctx", "result", "portable"})

_BINARY_OPS = {
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "and": "and", "or": "or",
}


class _Scope:
    """Name resolution context for one method."""

    def __init__(self, params: tuple, data_names: frozenset):
        for name in params:
            if name in _RESERVED:
                raise MPLSyntaxError(f"parameter name {name!r} is reserved")
        self.params = {name: index for index, name in enumerate(params)}
        self.data_names = data_names
        self.locals: set[str] = set()
        self.allow_result = False

    def declare_local(self, name: str) -> None:
        if name in _RESERVED:
            raise MPLSyntaxError(f"local name {name!r} is reserved")
        if name in self.params or name in self.data_names:
            raise MPLSyntaxError(
                f"'let {name}' shadows a parameter or data item"
            )
        self.locals.add(name)


def _compile_expr(node, scope: _Scope) -> str:
    if isinstance(node, ast.Literal):
        return repr(node.value)
    if isinstance(node, ast.Name):
        name = node.ident
        if name in scope.params:
            return f"args[{scope.params[name]}]"
        if name in scope.locals:
            return name
        if name in scope.data_names:
            return f"self.get({name!r})"
        if name == "result" and scope.allow_result:
            return "result"
        if name in BUILTINS:
            return name
        raise MPLSyntaxError(f"unknown name {name!r} in method body")
    if isinstance(node, ast.SelfRef):
        raise MPLSyntaxError("'self' can only be used as a call target")
    if isinstance(node, ast.ListExpr):
        inner = ", ".join(_compile_expr(e, scope) for e in node.elements)
        return f"[{inner}]"
    if isinstance(node, ast.MapExpr):
        inner = ", ".join(
            f"{_compile_expr(k, scope)}: {_compile_expr(v, scope)}"
            for k, v in node.pairs
        )
        return "{" + inner + "}"
    if isinstance(node, ast.Unary):
        operand = _compile_expr(node.operand, scope)
        return f"(-{operand})" if node.op == "-" else f"(not {operand})"
    if isinstance(node, ast.Binary):
        op = _BINARY_OPS.get(node.op)
        if op is None:
            raise MPLSyntaxError(f"unknown operator {node.op!r}")
        left = _compile_expr(node.left, scope)
        right = _compile_expr(node.right, scope)
        return f"({left} {op} {right})"
    if isinstance(node, ast.Index):
        target = _compile_expr(node.target, scope)
        index = _compile_expr(node.index, scope)
        return f"{target}[{index}]"
    if isinstance(node, ast.MethodCall):
        arg_sources = [_compile_expr(a, scope) for a in node.args]
        if isinstance(node.target, ast.SelfRef):
            if node.name in SELFVIEW_API:
                return f"self.{node.name}({', '.join(arg_sources)})"
            return f"self.call({node.name!r}{''.join(', ' + a for a in arg_sources)})"
        target = _compile_expr(node.target, scope)
        return f"{target}.invoke({node.name!r}, [{', '.join(arg_sources)}])"
    if isinstance(node, ast.FuncCall):
        if not (isinstance(node.func, ast.Name) and node.func.ident in BUILTINS):
            raise MPLSyntaxError(
                "only builtin functions can be called directly in methods"
            )
        arg_sources = ", ".join(_compile_expr(a, scope) for a in node.args)
        return f"{node.func.ident}({arg_sources})"
    if isinstance(node, ast.NewObject):
        raise MPLSyntaxError("'new' is only available in top-level script code")
    raise MPLSyntaxError(f"cannot compile expression {type(node).__name__}")


def _compile_stmt(node, scope: _Scope, lines: list[str], indent: int) -> None:
    pad = "    " * indent
    if isinstance(node, ast.Let):
        scope.declare_local(node.name)
        lines.append(f"{pad}{node.name} = {_compile_expr(node.value, scope)}")
        return
    if isinstance(node, ast.Assign):
        name = node.name
        value = _compile_expr(node.value, scope)
        if name in scope.data_names:
            lines.append(f"{pad}self.set({name!r}, {value})")
            return
        if name in scope.locals:
            lines.append(f"{pad}{name} = {value}")
            return
        if name in scope.params:
            raise MPLSyntaxError(f"cannot assign to parameter {name!r}")
        raise MPLSyntaxError(
            f"assignment to undeclared name {name!r} (use 'let')"
        )
    if isinstance(node, ast.IndexAssign):
        target = _compile_expr(node.target, scope)
        index = _compile_expr(node.index, scope)
        value = _compile_expr(node.value, scope)
        lines.append(f"{pad}{target}[{index}] = {value}")
        return
    if isinstance(node, ast.Return):
        if node.value is None:
            lines.append(f"{pad}return None")
        else:
            lines.append(f"{pad}return {_compile_expr(node.value, scope)}")
        return
    if isinstance(node, ast.If):
        lines.append(f"{pad}if {_compile_expr(node.condition, scope)}:")
        _compile_block(node.then_body, scope, lines, indent + 1)
        if node.else_body:
            lines.append(f"{pad}else:")
            _compile_block(node.else_body, scope, lines, indent + 1)
        return
    if isinstance(node, ast.While):
        lines.append(f"{pad}while {_compile_expr(node.condition, scope)}:")
        _compile_block(node.body, scope, lines, indent + 1)
        return
    if isinstance(node, ast.ForEach):
        scope.declare_local(node.name)
        lines.append(
            f"{pad}for {node.name} in {_compile_expr(node.iterable, scope)}:"
        )
        _compile_block(node.body, scope, lines, indent + 1)
        return
    if isinstance(node, ast.Print):
        lines.append(f"{pad}print({_compile_expr(node.value, scope)})")
        return
    if isinstance(node, ast.ExprStmt):
        lines.append(f"{pad}{_compile_expr(node.value, scope)}")
        return
    raise MPLSyntaxError(f"cannot compile statement {type(node).__name__}")


def _compile_block(body, scope: _Scope, lines: list[str], indent: int) -> None:
    if not body:
        lines.append("    " * indent + "pass")
        return
    for statement in body:
        _compile_stmt(statement, scope, lines, indent)


class CompiledMethod:
    """Portable sources for one method: body plus optional pre/post."""

    __slots__ = ("name", "body_source", "pre_source", "post_source", "fixed", "private")

    def __init__(self, name, body_source, pre_source, post_source, fixed, private):
        self.name = name
        self.body_source = body_source
        self.pre_source = pre_source
        self.post_source = post_source
        self.fixed = fixed
        self.private = private


def compile_method_body(decl: ast.MethodDecl, data_names: frozenset) -> str:
    scope = _Scope(decl.params, data_names)
    lines: list[str] = []
    _compile_block(decl.body, scope, lines, 0)
    return "\n".join(lines)


def compile_clause(
    expr, decl: ast.MethodDecl, data_names: frozenset, with_result: bool
) -> str:
    """Compile a ``requires``/``ensures`` clause to a boolean procedure."""
    scope = _Scope(decl.params, data_names)
    scope.allow_result = with_result
    return f"return bool({_compile_expr(expr, scope)})"


def compile_member_source(
    member_source: str, data_names: frozenset = frozenset()
) -> CompiledMethod:
    """Compile one stand-alone MPL ``method`` declaration.

    Used by hosts that accept method definitions in MPL without a full
    object declaration — notably HADAS interoperability programs, where
    the surrounding object (the IOO) already exists and *data_names*
    names the data items the program may touch (e.g. ``imports``).
    """
    from .parser import parse  # local import: parser imports this module's peer

    program = parse(f"object standalone {{\n{member_source}\n}}")
    if len(program.objects) != 1 or program.statements:
        raise MPLSyntaxError("expected exactly one method declaration")
    decl = program.objects[0]
    if len(decl.methods) != 1 or decl.data:
        raise MPLSyntaxError("expected exactly one method declaration")
    method = decl.methods[0]
    body = compile_method_body(method, data_names)
    pre = (
        compile_clause(method.requires, method, data_names, with_result=False)
        if method.requires is not None
        else None
    )
    post = (
        compile_clause(method.ensures, method, data_names, with_result=True)
        if method.ensures is not None
        else None
    )
    return CompiledMethod(method.name, body, pre, post, method.fixed, method.private)


def compile_object_methods(decl: ast.ObjectDecl) -> list[CompiledMethod]:
    """Compile every method of an object declaration."""
    data_names = frozenset(d.name for d in decl.data)
    compiled: list[CompiledMethod] = []
    for method in decl.methods:
        body = compile_method_body(method, data_names)
        pre = (
            compile_clause(method.requires, method, data_names, with_result=False)
            if method.requires is not None
            else None
        )
        post = (
            compile_clause(method.ensures, method, data_names, with_result=True)
            if method.ensures is not None
            else None
        )
        compiled.append(
            CompiledMethod(method.name, body, pre, post, method.fixed, method.private)
        )
    return compiled


# ---------------------------------------------------------------------------
# invocation compilation: Lookup -> Match -> Apply as one specialized closure
# ---------------------------------------------------------------------------
#
# The MPL compiler above turns *method bodies* into portable source; this
# second back end turns a warm *invocation* into native control flow. The
# paper keeps level 0 non-reflective exactly so it "can be implemented in
# a more efficient way" (Section 3.1) — a compiled invocation is the
# strongest form of that freedom: for one (object-generation, method,
# caller) triple the method handle, the section label, the ALLOW verdict
# and the trace events are all pinned at compile time, and a call is a
# guard check plus the Apply phase.
#
# Trust is versioned, never assumed. Every closure opens with the same
# pins the InvocationCache's match table uses — the containers' mutation
# generation, the method's identity and item version, the ACL's identity
# and edit version — and answers COMPILED_STALE the instant any of them
# moved, at which point the dispatcher discards the entry and the call
# falls back to the interpreted pipeline. Observables (return values,
# typed errors, InvocationRecord streams, acl.* audit telemetry, the
# invoke span dance) are byte-identical to the interpreted path; the
# three-way differential harness holds it to that.


def _uses_ctx(carrier) -> bool:
    """Whether a method component can observe the InvocationContext.

    Portable source that never names ``ctx`` cannot reach it (the
    sandbox exposes no other route to the context), so the closure may
    skip allocating one. Native code is opaque: assume it looks.
    """
    if carrier is None:
        return False
    source = getattr(carrier, "source", None)
    if source is None:
        return True  # native code: no visibility, assume the worst
    return "ctx" in source


def compile_invocation(invoker, method, section: str, caller, cache):
    """Emit a specialized closure for one warm (caller, method) pair.

    Returns a callable ``fn(live_caller, args)`` that either performs
    the complete invocation — record, telemetry, pre/body/post, outcome
    — or returns :data:`~repro.core.fastpath.COMPILED_STALE` untouched
    when a pin fails. Returns None when the pair is not compilable
    (meta-methods stay interpreted: their bodies are the reflective
    machinery itself).
    """
    from ..core.acl import Permission, note_match
    from ..core.fastpath import COMPILED_STALE
    from ..core.errors import PostProcedureError, PreProcedureVeto
    from ..core.invocation import (
        InvocationContext,
        InvocationRecord,
        Phase,
        TraceEvent,
    )
    from ..telemetry import state as _telemetry

    if method.metadata.get("meta"):
        return None

    obj = invoker.obj
    clock = obj.containers.clock
    generation = clock.value
    acl = method.acl
    method_version = method.version
    acl_version = acl.version

    name = method.name
    obj_guid = obj.guid
    caller_guid = caller.guid
    is_self = caller_guid == obj_guid
    self_view = obj.self_view()
    note_invocation = obj.note_invocation

    pre = method.pre
    post = method.post
    pre_call = pre.call_boolean if pre is not None else None
    body_call = method.body.call
    post_call = post.call_boolean if post is not None else None
    needs_ctx = (
        _uses_ctx(method.body) or _uses_ctx(pre) or _uses_ctx(post)
    )

    # the trace is known at compile time up to data-dependent branches:
    # pin one frozen event per (phase, outcome) and append by reference
    ev_lookup = TraceEvent(0, Phase.LOOKUP, name, section)
    ev_match = TraceEvent(0, Phase.MATCH, name, "self" if is_self else "checked")
    ev_body = TraceEvent(0, Phase.BODY, name)
    ev_pre_ok = TraceEvent(0, Phase.PRE, name, "ok") if pre is not None else None
    ev_pre_veto = TraceEvent(0, Phase.PRE, name, "veto") if pre is not None else None
    ev_post_ok = TraceEvent(0, Phase.POST, name, "ok") if post is not None else None
    ev_post_failed = (
        TraceEvent(0, Phase.POST, name, "failed") if post is not None else None
    )
    permission_invoke = Permission.INVOKE

    def compiled_invoke(live_caller, args):
        # -- guards: the pins of the match table, re-checked every call
        if (
            clock.value != generation
            or method.version != method_version
            or method.acl is not acl
            or acl.version != acl_version
        ):
            return COMPILED_STALE
        cache.compiled_hits += 1
        record = InvocationRecord(method=name, caller=caller_guid)
        tel = _telemetry.ACTIVE
        span = None
        if tel is not None:
            span = tel.begin_span(
                "invoke",
                attrs={
                    "method": name,
                    "object": obj_guid,
                    "caller": caller_guid,
                    "tower_depth": 0,
                },
            )
            span.event("invocation.enter", tower_depth=0)
            metrics = tel.metrics
            metrics.counter("invocations").inc()
            metrics.counter("fastpath.compiled.hits").inc()
        try:
            events = record.events
            events.append(ev_lookup)
            if not is_self:
                # the audit observable of the Match phase: same counters,
                # same acl.check span event as a fresh ACL evaluation
                note_match(live_caller, name, permission_invoke, True)
            events.append(ev_match)
            body_args = list(args)
            ctx = (
                InvocationContext(invoker, live_caller, name, args, 0, record)
                if needs_ctx
                else None
            )
            if pre_call is not None:
                approved = pre_call(self_view, body_args, ctx)
                events.append(ev_pre_ok if approved else ev_pre_veto)
                if not approved:
                    raise PreProcedureVeto(name)
            result = body_call(self_view, body_args, ctx)
            events.append(ev_body)
            if post_call is not None:
                accepted = post_call(self_view, body_args, result, ctx)
                events.append(ev_post_ok if accepted else ev_post_failed)
                if not accepted:
                    raise PostProcedureError(name, result=result)
        except PreProcedureVeto:
            record.outcome = "veto"
            note_invocation(record)
            if span is not None:
                span.event("invocation.exit", outcome="veto")
                tel.end_span(span, status="veto")
                tel.metrics.counter("invocations.vetoed").inc()
            raise
        except Exception as exc:
            record.outcome = "error"
            note_invocation(record)
            if span is not None:
                span.event("invocation.exit", outcome="error",
                           error=type(exc).__name__)
                tel.end_span(span, status="error")
                tel.metrics.counter("invocations.failed").inc()
            raise
        record.outcome = "ok"
        note_invocation(record)
        if span is not None:
            span.event("invocation.exit", outcome="ok")
            tel.end_span(span)
        return result

    return compiled_invoke
