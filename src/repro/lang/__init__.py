"""MPL — a small mobile-programming language around MROM (future work
item of the paper, Section 6)."""

from .ast_nodes import Program
from .compiler import CompiledMethod, compile_member_source, compile_object_methods
from .interp import Interpreter, MplSession, RunResult, build_object
from .lexer import Token, tokenize
from .parser import parse

__all__ = [
    "Interpreter",
    "MplSession",
    "RunResult",
    "build_object",
    "parse",
    "tokenize",
    "Token",
    "Program",
    "CompiledMethod",
    "compile_object_methods",
    "compile_member_source",
]
