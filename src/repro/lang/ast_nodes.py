"""MPL abstract syntax.

Two layers: *declarations* (objects and their members) and *statements/
expressions* (method bodies and top-level script code). Every node is a
frozen dataclass; the compiler and interpreter dispatch on type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "Expr", "Literal", "Name", "SelfRef", "ListExpr", "MapExpr",
    "Unary", "Binary", "Index", "MethodCall", "FuncCall", "NewObject",
    "Stmt", "Let", "Assign", "IndexAssign", "Return", "If", "While",
    "ForEach", "Print", "ExprStmt",
    "DataDecl", "MethodDecl", "ObjectDecl", "Program",
]


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object  # int | float | str | bool | None


@dataclass(frozen=True)
class Name:
    ident: str


@dataclass(frozen=True)
class SelfRef:
    """The bare ``self`` keyword (usable only inside methods)."""


@dataclass(frozen=True)
class ListExpr:
    elements: tuple


@dataclass(frozen=True)
class MapExpr:
    pairs: tuple  # of (Expr, Expr)


@dataclass(frozen=True)
class Unary:
    op: str  # "-" | "not"
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Index:
    target: "Expr"
    index: "Expr"


@dataclass(frozen=True)
class MethodCall:
    """``target.name(args)`` — MROM invocation on the target value."""

    target: "Expr | SelfRef"
    name: str
    args: tuple


@dataclass(frozen=True)
class FuncCall:
    """``name(args)`` — a builtin function application."""

    func: "Expr"
    args: tuple


@dataclass(frozen=True)
class NewObject:
    """``new name`` at the top level — instantiate a declared object."""

    decl_name: str


Expr = Union[
    Literal, Name, SelfRef, ListExpr, MapExpr, Unary, Binary, Index,
    MethodCall, FuncCall, NewObject,
]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Let:
    name: str
    value: Expr


@dataclass(frozen=True)
class Assign:
    name: str
    value: Expr


@dataclass(frozen=True)
class IndexAssign:
    target: Expr
    index: Expr
    value: Expr


@dataclass(frozen=True)
class Return:
    value: "Expr | None"


@dataclass(frozen=True)
class If:
    condition: Expr
    then_body: tuple
    else_body: tuple


@dataclass(frozen=True)
class While:
    condition: Expr
    body: tuple


@dataclass(frozen=True)
class ForEach:
    name: str
    iterable: Expr
    body: tuple


@dataclass(frozen=True)
class Print:
    value: Expr


@dataclass(frozen=True)
class ExprStmt:
    value: Expr


Stmt = Union[Let, Assign, IndexAssign, Return, If, While, ForEach, Print, ExprStmt]


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DataDecl:
    name: str
    fixed: bool
    kind: str = "any"  # MROM Kind value name
    initial: "Expr | None" = None
    private: bool = False


@dataclass(frozen=True)
class MethodDecl:
    name: str
    fixed: bool
    params: tuple
    body: tuple  # of Stmt
    requires: "Expr | None" = None
    ensures: "Expr | None" = None
    private: bool = False


@dataclass(frozen=True)
class ObjectDecl:
    name: str
    extensible_meta: bool
    data: tuple  # of DataDecl
    methods: tuple  # of MethodDecl


@dataclass(frozen=True)
class Program:
    objects: tuple  # of ObjectDecl
    statements: tuple  # of Stmt
