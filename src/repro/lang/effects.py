"""Per-method effect extraction: the read/write sets the analyzers run on.

The paper's premise is that mobile objects are self-describing — method
semantics live *in* the object as meta-items, so an analyzer can read
them back out without any side table. This module is that read-out, in
two flavours:

* **MPL source** (:func:`effects_of_method` / :func:`effects_of_object`)
  walks the MPL AST before compilation. Spans come from the parser, so
  downstream diagnostics anchor on real source lines — this is what the
  seeded corpus exercises.
* **Portable dialect** (:func:`effects_of_portable`) walks the compiled
  python function body carried by a live object or a packed image. The
  compiler lowers every data access to a ``self.get``/``self.set`` call
  and every sibling invocation to ``self.call``, so the compiled form is
  *more* regular than the surface syntax: a handful of call shapes cover
  everything. This is what the admission gate and the happens-before
  sanitizer use, where there is no ``.mpl`` file to point at.

An effect set is deliberately coarse: it records *which* extensible
items a method may read or write, not path-sensitive facts. Coarseness
is the right trade for a race analysis that must never miss a write —
a branch-guarded ``self.set`` still counts as a write.
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass, field

from . import ast_nodes as mpl
from .parser import span_of

__all__ = [
    "MethodEffects",
    "effects_of_method",
    "effects_of_object",
    "effects_of_portable",
    "STRUCTURE_ITEM",
]

#: pseudo-item standing for the object's structure (the member tables the
#: fast-path Lookup/Match caches pin by generation). Structural ops write
#: it; every invocation implicitly reads it through the dispatch pins.
STRUCTURE_ITEM = "##structure"

#: self-view operations that mutate the member tables themselves
_STRUCTURAL_OPS = frozenset(
    {"add_data", "delete_data", "add_method", "delete_method"}
)

#: the compiled dialect's self-view surface (mirrors compiler.SELFVIEW_API)
_SELFVIEW = frozenset(
    {
        "get", "set", "call", "has_data", "has_method",
        "add_data", "delete_data", "add_method", "delete_method",
        "data_names", "method_names",
    }
)


@dataclass
class MethodEffects:
    """What one method may do to its object's extensible items.

    ``reads``/``writes`` map item name to the (line, column) span of the
    first access — spans are ``(0, 0)`` when the effects came from a
    compiled body with no surface source. ``structural`` maps the op name
    (``add_data`` …) to its span; ``self_calls`` maps sibling method
    names to the span of the first call site. ``dynamic`` is set when an
    item or method name was computed at runtime — the analysis stays
    sound by treating such a method as opaque rather than guessing.
    """

    name: str
    reads: dict = field(default_factory=dict)
    writes: dict = field(default_factory=dict)
    structural: dict = field(default_factory=dict)
    self_calls: dict = field(default_factory=dict)
    dynamic: bool = False

    def touches(self) -> set:
        return set(self.reads) | set(self.writes)


# ---------------------------------------------------------------------------
# MPL surface syntax
# ---------------------------------------------------------------------------


def _mpl_children(node):
    if isinstance(node, (mpl.Literal, mpl.Name, mpl.SelfRef, mpl.NewObject)):
        return ()
    if isinstance(node, mpl.ListExpr):
        return node.elements
    if isinstance(node, mpl.MapExpr):
        return [part for pair in node.pairs for part in pair]
    if isinstance(node, mpl.Unary):
        return (node.operand,)
    if isinstance(node, mpl.Binary):
        return (node.left, node.right)
    if isinstance(node, mpl.Index):
        return (node.target, node.index)
    if isinstance(node, mpl.MethodCall):
        return (node.target, *node.args)
    if isinstance(node, mpl.FuncCall):
        return (node.func, *node.args)
    if isinstance(node, mpl.Let):
        return (node.value,)
    if isinstance(node, mpl.Assign):
        return (node.value,)
    if isinstance(node, mpl.IndexAssign):
        return (node.target, node.index, node.value)
    if isinstance(node, mpl.Return):
        return () if node.value is None else (node.value,)
    if isinstance(node, mpl.If):
        return (node.condition, *node.then_body, *node.else_body)
    if isinstance(node, mpl.While):
        return (node.condition, *node.body)
    if isinstance(node, mpl.ForEach):
        return (node.iterable, *node.body)
    if isinstance(node, (mpl.Print, mpl.ExprStmt)):
        return (node.value,)
    return ()


def _record(table: dict, key: str, span) -> None:
    table.setdefault(key, span)


def _literal_str(expr) -> str | None:
    if isinstance(expr, mpl.Literal) and isinstance(expr.value, str):
        return expr.value
    return None


def effects_of_method(
    decl: mpl.MethodDecl, data_names: set
) -> MethodEffects:
    """Extract the effect set of one MPL method declaration.

    ``data_names`` is the set of declared data items — a bare ``Name``
    in a body is a data read only when it names one (locals and params
    cannot shadow data; the compiler rejects the collision).
    """
    eff = MethodEffects(name=decl.name)
    locals_seen = set(decl.params)

    def walk(node) -> None:
        if isinstance(node, mpl.Name):
            if node.ident in data_names and node.ident not in locals_seen:
                _record(eff.reads, node.ident, span_of(node))
            return
        if isinstance(node, mpl.Let):
            locals_seen.add(node.name)
        elif isinstance(node, mpl.Assign):
            if node.name in data_names and node.name not in locals_seen:
                _record(eff.writes, node.name, span_of(node))
        elif isinstance(node, mpl.ForEach):
            locals_seen.add(node.name)
        elif isinstance(node, mpl.MethodCall) and isinstance(
            node.target, mpl.SelfRef
        ):
            span = span_of(node)
            name = node.name
            if name in ("get", "has_data"):
                item = _literal_str(node.args[0]) if node.args else None
                if item is None:
                    eff.dynamic = True
                else:
                    _record(eff.reads, item, span)
            elif name == "set":
                item = _literal_str(node.args[0]) if node.args else None
                if item is None:
                    eff.dynamic = True
                else:
                    _record(eff.writes, item, span)
            elif name in _STRUCTURAL_OPS:
                _record(eff.structural, name, span)
            elif name == "call":
                callee = _literal_str(node.args[0]) if node.args else None
                if callee is None:
                    eff.dynamic = True
                else:
                    _record(eff.self_calls, callee, span)
            elif name not in _SELFVIEW:
                # surface sugar: self.m(...) invokes the sibling method m
                _record(eff.self_calls, name, span)
        for child in _mpl_children(node):
            walk(child)

    for stmt in decl.body:
        walk(stmt)
    # contract clauses read data too (evaluated around every invocation)
    for clause in (decl.requires, decl.ensures):
        if clause is not None:
            walk(clause)
    return eff


def effects_of_object(decl: mpl.ObjectDecl) -> dict:
    """Effect sets for every method of one MPL object declaration."""
    data_names = {d.name for d in decl.data}
    return {
        m.name: effects_of_method(m, data_names) for m in decl.methods
    }


# ---------------------------------------------------------------------------
# compiled portable dialect
# ---------------------------------------------------------------------------


def _py_const_str(node) -> str | None:
    if isinstance(node, pyast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def effects_of_portable(source: str, name: str = "<portable>") -> MethodEffects:
    """Extract effects from a compiled portable method body.

    The body is a python *function body* (it may open with a bare
    ``return``), so it is wrapped in a probe function before parsing —
    the same trick the lint source-walker uses. A body that does not
    parse yields an opaque effect set (``dynamic=True``) rather than an
    exception: the admission pipeline reports malformed code separately.
    """
    wrapped = "def __probe__():\n" + "\n".join(
        "    " + line for line in (source or "pass").splitlines()
    )
    try:
        tree = pyast.parse(wrapped)
    except SyntaxError:
        return MethodEffects(name=name, dynamic=True)

    eff = MethodEffects(name=name)
    for node in pyast.walk(tree):
        if not isinstance(node, pyast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, pyast.Attribute)
            and isinstance(func.value, pyast.Name)
            and func.value.id == "self"
        ):
            continue
        span = (max(node.lineno - 1, 0), 0)
        op = func.attr
        if op in ("get", "has_data"):
            item = _py_const_str(node.args[0]) if node.args else None
            if item is None:
                eff.dynamic = True
            else:
                _record(eff.reads, item, span)
        elif op == "set":
            item = _py_const_str(node.args[0]) if node.args else None
            if item is None:
                eff.dynamic = True
            else:
                _record(eff.writes, item, span)
        elif op in _STRUCTURAL_OPS:
            _record(eff.structural, op, span)
        elif op == "call":
            callee = _py_const_str(node.args[0]) if node.args else None
            if callee is None:
                eff.dynamic = True
            else:
                _record(eff.self_calls, callee, span)
    return eff
