"""Migration admission analysis: should this object be let in (or out)?

The second front end of the static-analysis subsystem. Where
:mod:`repro.analysis.mpl_lint` judges MPL programs, this module judges
*objects about to cross a site boundary* — live :class:`MROMObject`
instances on the sending side (:func:`analyze_object`) and raw transfer
packages on the receiving side (:func:`analyze_package`), before
``unpack`` rebuilds anything.

Checks (rule ids in :data:`ADMISSION_RULES`):

* **self-containment** — native code anywhere (method components or the
  meta-invoke tower), data values with no wire representation, values
  holding :class:`~repro.net.marshal.Reference` stubs that point back at
  the origin site;
* **code integrity** — every portable component is put through the
  sandbox verifier *now*, instead of lazily at first invocation (the
  sandbox's own ``sandbox.*`` diagnostics are folded into the report);
* **ACL coverage** — items that arrive unusable (no entries, default
  deny) and meta-surfaces open to anonymous callers;
* **tower integrity** — a meta-invoke tower on an object whose meta
  section is not extensible, and tower levels that are not META-role
  portable code.

:func:`admission_policy` adapts the analysis to the
``AdmissionPolicy`` callable that
:class:`~repro.mobility.transfer.MobilityManager` runs at PREPARE: a
failed analysis raises :class:`AdmissionRefusal`, whose ``diagnostics``
carry the structured findings back to the sender inside the refusal.
"""

from __future__ import annotations

from typing import Mapping

from ..core.acl import ANONYMOUS, AccessControlList, Permission
from ..core.code import CodeRole
from ..core.errors import MarshalError, PolicyViolationError
from ..net.marshal import Reference, marshal
from .diagnostics import Diagnostic, Severity, fails

__all__ = [
    "ADMISSION_RULES",
    "AdmissionRefusal",
    "analyze_object",
    "analyze_package",
    "admission_policy",
]

#: Every admission rule id and what it means. Severity in parentheses.
ADMISSION_RULES: dict[str, str] = {
    "adm.bad-package": "the package is structurally unusable (error)",
    "adm.native-code": "a method component is native code and cannot travel (error)",
    "adm.malformed-code": "a portable component failed the sandbox audit (error)",
    "adm.unmarshalable-value": "a data value has no wire representation (error)",
    "adm.external-reference": "a data value holds a by-reference stub to another site (warning)",
    "adm.unreachable-item": "an item whose ACL admits nobody after migration (warning)",
    "adm.open-meta": "a meta-surface invocable by anonymous callers (warning)",
    "adm.tower-breach": "a meta-invoke tower without an extensible meta section (error)",
    # concurrency rules (opt-in: `concurrency=True`, which the admission
    # gate passes): re-tagged race.*/cycle.* findings from the
    # interprocedural layer, run over the arriving code itself
    "adm.race.lost-update": "a method read-modify-writes an item; concurrent invocations can lose updates (warning)",
    "adm.race.write-write": "two methods write one item with no mutual ordering (warning)",
    "adm.race.read-write": "a method reads an item another method writes concurrently (warning)",
    "adm.race.unsynced-structural": "a method mutates object structure racing cached dispatch pins (warning)",
    "adm.cycle.recursion": "a method's self-call chain reaches itself; every invocation recurses (warning)",
}

_ROLE_NAMES = {role.value for role in CodeRole}


class AdmissionRefusal(PolicyViolationError):
    """A structured veto: the admission analysis found blocking findings.

    Raised out of the :func:`admission_policy` callable during PREPARE
    handling; the mobility layer reports it back to the sender, so
    ``diagnostics`` is the machine-readable reason the object bounced.
    """

    def __init__(self, diagnostics: list[Diagnostic], subject: str = ""):
        self.diagnostics = list(diagnostics)
        blocking = [d for d in self.diagnostics if d.severity >= Severity.ERROR]
        shown = blocking or self.diagnostics
        rules = ", ".join(sorted({d.rule for d in shown}))
        label = subject or "object"
        super().__init__(
            f"admission analysis refused {label}: {len(shown)} finding(s) [{rules}]"
        )
        self.subject = subject

    def report(self) -> list[dict]:
        """The findings as marshal-friendly mappings (for wire replies)."""
        return [d.to_mapping() for d in self.diagnostics]


# ---------------------------------------------------------------------------
# shared checks
# ---------------------------------------------------------------------------


def _finding(
    rule: str,
    severity: Severity,
    message: str,
    source: str,
    hint: str = "",
    **extra,
) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=severity,
        message=message,
        source=source,
        hint=hint,
        extra=dict(extra) if extra else {},
    )


def _audit_portable(
    source_text: str, role: str, label: str
) -> list[Diagnostic]:
    """Run the sandbox verifier over one portable component now."""
    from ..mobility.sandbox import audit_function_body

    try:
        parameters = CodeRole(role).parameters
    except ValueError:
        return [
            _finding(
                "adm.malformed-code",
                Severity.ERROR,
                f"component has unknown role {role!r}",
                label,
            )
        ]
    sandbox_findings = audit_function_body(
        source_text, parameters, source_name=label
    )
    if not sandbox_findings:
        return []
    header = _finding(
        "adm.malformed-code",
        Severity.ERROR,
        f"portable {role} code failed the sandbox audit "
        f"({len(sandbox_findings)} violation(s))",
        label,
        hint="the destination would refuse to compile this component",
    )
    return [header, *sandbox_findings]


def _scan_references(value, path: str) -> list[str]:
    """Paths inside *value* that hold by-reference stubs to other sites."""
    hits: list[str] = []
    stack: list[tuple[object, str]] = [(value, path)]
    while stack:
        current, where = stack.pop()
        if isinstance(current, Reference):
            hits.append(where)
        elif isinstance(current, Mapping):
            for key, nested in current.items():
                stack.append((nested, f"{where}[{key!r}]"))
        elif isinstance(current, (list, tuple, set, frozenset)):
            for position, nested in enumerate(current):
                stack.append((nested, f"{where}[{position}]"))
    return hits


def _check_value(name: str, value, label: str) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for where in _scan_references(value, name):
        findings.append(
            _finding(
                "adm.external-reference",
                Severity.WARNING,
                f"data item {where} holds a by-reference stub to another "
                "site; the object is not self-contained",
                label,
                hint="resolve or drop the reference before migrating",
            )
        )
    try:
        marshal(value)
    except (MarshalError, RecursionError) as exc:
        findings.append(
            _finding(
                "adm.unmarshalable-value",
                Severity.ERROR,
                f"data item {name!r} cannot be marshalled: {exc}",
                label,
            )
        )
    return findings


def _check_acl_coverage(
    item_name: str, acl: AccessControlList, label: str
) -> list[Diagnostic]:
    if len(acl) == 0 and not acl.default_allow:
        return [
            _finding(
                "adm.unreachable-item",
                Severity.WARNING,
                f"item {item_name!r} has an empty default-deny ACL; after "
                "migration only the runtime itself can use it",
                label,
                hint="grant the owner or a domain before shipping",
            )
        ]
    return []


def _check_meta_openness(
    surface: str, acl: AccessControlList, label: str
) -> list[Diagnostic]:
    open_permissions = [
        permission.name
        for permission in (Permission.META, Permission.SET)
        if acl.permits(ANONYMOUS, permission)
    ]
    if not open_permissions:
        return []
    return [
        _finding(
            "adm.open-meta",
            Severity.WARNING,
            f"{surface} grants {'/'.join(open_permissions)} to anonymous "
            "callers; any host can rewrite the object",
            label,
            hint="restrict the meta ACL to the owner or a trust domain",
        )
    ]


# ---------------------------------------------------------------------------
# live-object analysis (sender side)
# ---------------------------------------------------------------------------


def analyze_object(obj, concurrency: bool = False) -> list[Diagnostic]:
    """Pre-flight a live :class:`~repro.core.mobject.MROMObject`.

    The sender-side mirror of :func:`analyze_package`: everything found
    here would bounce (or warrant a warning) at a destination running the
    admission gate, so a migrating application can lint itself *before*
    paying for the round trip.

    With *concurrency* (what the admission gate passes), the
    interprocedural race/recursion rules also run over the object's
    portable methods, reported under the ``adm.race.*``/``adm.cycle.*``
    ids; they stay opt-in because a read-modify-write counter is a
    perfectly admissible object — the findings are advice unless the
    gate is strict.
    """
    from ..core.items import DataItem, MROMMethod

    label = f"object:{obj.guid}"
    findings: list[Diagnostic] = []
    findings.extend(_check_meta_openness("the meta ACL", obj._meta_acl, label))
    for item, category, section in obj.containers.iter_with_sections():
        if isinstance(item, MROMMethod) and item.metadata.get("meta"):
            if item.name != "invoke":  # invoke is the public entry point
                findings.extend(
                    _check_meta_openness(
                        f"meta-method {item.name!r}", item.acl, label
                    )
                )
            continue
        findings.extend(_check_acl_coverage(item.name, item.acl, label))
        if isinstance(item, DataItem):
            findings.extend(_check_value(item.name, item.peek(), label))
        elif isinstance(item, MROMMethod):
            findings.extend(_analyze_live_method(item, item.name, label))
    tower = obj.meta_invoke_chain()
    if tower and not obj.extensible_meta:
        findings.append(
            _finding(
                "adm.tower-breach",
                Severity.ERROR,
                f"object carries a {len(tower)}-level meta-invoke tower "
                "but its meta section is not extensible",
                label,
            )
        )
    for level, method in enumerate(tower, start=1):
        findings.extend(
            _analyze_live_method(method, f"invoke@level{level}", label)
        )
    if concurrency:
        from .races import effects_of_live_object

        findings.extend(
            _concurrency_findings(
                effects_of_live_object(obj),
                label,
                obj.principal.display_name or str(obj.guid),
            )
        )
    return findings


def _concurrency_findings(effects, label: str, subject: str) -> list[Diagnostic]:
    """Race/recursion findings over *effects*, re-tagged ``adm.*``.

    The same engines the ``repro analyze`` CLI runs — one ground truth,
    two reporting surfaces — with the rule ids prefixed so the refusal
    report says which gate said no.
    """
    import dataclasses

    from .deadlock import recursion_findings
    from .races import conflicts

    raw = conflicts(effects, label, subject)
    raw += recursion_findings(effects, label, subject)
    return [dataclasses.replace(d, rule=f"adm.{d.rule}") for d in raw]


def _analyze_live_method(method, name: str, label: str) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for role, carrier in (
        ("body", method.body),
        ("pre", method.pre),
        ("post", method.post),
    ):
        if carrier is None:
            continue
        where = f"{label}:{name}.{role}"
        if not carrier.portable:
            findings.append(
                _finding(
                    "adm.native-code",
                    Severity.ERROR,
                    f"method {name!r} carries a native {role} component; "
                    "the object cannot leave this runtime",
                    where,
                    hint="rewrite the component as portable source",
                )
            )
            continue
        findings.extend(_audit_portable(carrier.source, role, where))
    return findings


# ---------------------------------------------------------------------------
# package analysis (receiver side)
# ---------------------------------------------------------------------------


def analyze_package(
    package: Mapping, concurrency: bool = False
) -> list[Diagnostic]:
    """Audit a raw transfer package before anything is unpacked.

    This is what the PREPARE admission gate runs: the input is the
    untrusted mapping straight off the wire, so every access is guarded
    and structural surprises become ``adm.bad-package`` findings instead
    of exceptions. With *concurrency*, the race/recursion rules also run
    over the packed portable method sources (``adm.race.*``/
    ``adm.cycle.*``, warnings).
    """
    from ..mobility.package import FORMAT

    if not isinstance(package, Mapping):
        return [
            _finding(
                "adm.bad-package",
                Severity.ERROR,
                f"package is {type(package).__name__}, not a mapping",
                "package",
            )
        ]
    guid = str(package.get("guid") or "")
    label = f"package:{guid or '<no guid>'}"
    findings: list[Diagnostic] = []
    if package.get("format") != FORMAT:
        findings.append(
            _finding(
                "adm.bad-package",
                Severity.ERROR,
                f"unknown package format {package.get('format')!r} "
                f"(expected {FORMAT!r})",
                label,
            )
        )
    if not guid:
        findings.append(
            _finding(
                "adm.bad-package",
                Severity.ERROR,
                "package carries no guid; identity must travel with the object",
                label,
            )
        )
    findings.extend(
        _check_meta_openness(
            "the meta ACL", _acl_of(package.get("meta_acl")), label
        )
    )
    for section in ("fixed_data", "ext_data"):
        for raw in _raw_items(package, section, findings, label):
            name = str(raw.get("name", "<unnamed>"))
            findings.extend(_check_acl_coverage(name, _acl_of(raw.get("acl")), label))
            findings.extend(_check_value(name, raw.get("value"), label))
    for section in ("fixed_methods", "ext_methods"):
        for raw in _raw_items(package, section, findings, label):
            name = str(raw.get("name", "<unnamed>"))
            findings.extend(_check_acl_coverage(name, _acl_of(raw.get("acl")), label))
            findings.extend(_analyze_packed_method(raw, name, label))
    tower = package.get("tower") or []
    if not isinstance(tower, (list, tuple)):
        findings.append(
            _finding(
                "adm.bad-package",
                Severity.ERROR,
                f"tower is {type(tower).__name__}, not a sequence",
                label,
            )
        )
        tower = []
    if tower and not package.get("extensible_meta"):
        findings.append(
            _finding(
                "adm.tower-breach",
                Severity.ERROR,
                f"package carries a {len(tower)}-level meta-invoke tower "
                "but declares the meta section fixed; installing it would "
                "fail (or worse, be forced)",
                label,
            )
        )
    for level, raw in enumerate(tower, start=1):
        if isinstance(raw, Mapping):
            findings.extend(
                _analyze_packed_method(raw, f"invoke@level{level}", label)
            )
    if concurrency:
        findings.extend(
            _concurrency_findings(
                _packed_effects(package),
                label,
                str(package.get("display_name") or guid or "<package>"),
            )
        )
    return findings


def _packed_effects(package: Mapping) -> dict:
    """Effect sets for a package's portable base-level methods."""
    from ..lang.effects import effects_of_portable

    effects: dict = {}
    for section in ("fixed_methods", "ext_methods"):
        raw_section = package.get(section, [])
        if not isinstance(raw_section, (list, tuple)):
            continue
        for raw in raw_section:
            if not isinstance(raw, Mapping):
                continue
            if isinstance(raw.get("metadata"), Mapping) and raw["metadata"].get(
                "meta"
            ):
                continue
            components = raw.get("components")
            if not isinstance(components, Mapping):
                continue
            body = components.get("body")
            if not isinstance(body, Mapping):
                continue
            source = body.get("source")
            if body.get("flavour") == "portable" and isinstance(source, str):
                name = str(raw.get("name", "<unnamed>"))
                effects[name] = effects_of_portable(source, name)
    return effects


def _raw_items(package: Mapping, section: str, findings, label) -> list[Mapping]:
    raw_section = package.get(section, [])
    if not isinstance(raw_section, (list, tuple)):
        findings.append(
            _finding(
                "adm.bad-package",
                Severity.ERROR,
                f"section {section!r} is {type(raw_section).__name__}, "
                "not a sequence",
                label,
            )
        )
        return []
    usable = []
    for raw in raw_section:
        if isinstance(raw, Mapping):
            usable.append(raw)
        else:
            findings.append(
                _finding(
                    "adm.bad-package",
                    Severity.ERROR,
                    f"section {section!r} holds a non-mapping entry",
                    label,
                )
            )
    return usable


def _acl_of(description) -> AccessControlList:
    if not isinstance(description, Mapping):
        return AccessControlList()
    try:
        return AccessControlList.from_description(dict(description))
    except (KeyError, ValueError, TypeError):
        return AccessControlList()


def _analyze_packed_method(raw: Mapping, name: str, label: str) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    components = raw.get("components")
    if not isinstance(components, Mapping) or "body" not in components:
        findings.append(
            _finding(
                "adm.bad-package",
                Severity.ERROR,
                f"method {name!r} has no body component",
                label,
            )
        )
        return findings
    for role, description in components.items():
        where = f"{label}:{name}.{role}"
        if role not in _ROLE_NAMES and role not in ("pre", "post", "body"):
            findings.append(
                _finding(
                    "adm.bad-package",
                    Severity.ERROR,
                    f"method {name!r} has unknown component role {role!r}",
                    where,
                )
            )
            continue
        if not isinstance(description, Mapping):
            findings.append(
                _finding(
                    "adm.bad-package",
                    Severity.ERROR,
                    f"component {name}.{role} is not a description mapping",
                    where,
                )
            )
            continue
        flavour = description.get("flavour")
        if flavour == "native":
            findings.append(
                _finding(
                    "adm.native-code",
                    Severity.ERROR,
                    f"component {name}.{role} is a native-code stub; it "
                    "cannot be reconstructed here",
                    where,
                )
            )
        elif flavour == "portable":
            source_text = description.get("source")
            if not isinstance(source_text, str):
                findings.append(
                    _finding(
                        "adm.bad-package",
                        Severity.ERROR,
                        f"portable component {name}.{role} carries no source",
                        where,
                    )
                )
            else:
                code_role = description.get("role", role if role != "body" else "body")
                findings.extend(_audit_portable(source_text, str(code_role), where))
        else:
            findings.append(
                _finding(
                    "adm.bad-package",
                    Severity.ERROR,
                    f"component {name}.{role} has unknown flavour {flavour!r}",
                    where,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# the admission-gate policy
# ---------------------------------------------------------------------------


def admission_policy(strict: bool = False, concurrency: bool = True):
    """An ``AdmissionPolicy`` callable running :func:`analyze_package`.

    Plug into :class:`~repro.mobility.transfer.MobilityManager` (or pass
    ``verify_arrivals=True`` to have the manager do it): at PREPARE the
    raw package is analyzed and a failing report raises
    :class:`AdmissionRefusal` — the migration bounces with the findings
    attached, and nothing was unpacked or imported. With *strict*,
    warnings (open meta surfaces, unreachable items, external references,
    and the ``adm.race.*``/``adm.cycle.*`` concurrency findings the gate
    checks by default) also refuse admission.
    """

    def policy(package: Mapping, src: str) -> None:
        findings = analyze_package(package, concurrency=concurrency)
        if fails(findings, strict=strict):
            guid = ""
            if isinstance(package, Mapping):
                guid = str(package.get("guid") or "")
            raise AdmissionRefusal(
                findings, subject=f"{guid or 'object'} from {src!r}"
            )

    return policy
