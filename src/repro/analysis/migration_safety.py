"""Static migration-safety dataflow over host files (``migration.*``).

The durability journal (PR 6) records ``skipped_unportable`` whenever a
site image cannot pack an object — native method bodies, values with no
wire representation. That counter fires at PREPARE time, after the
operator already committed to the handoff. This pass finds the same
state *statically*, in the host file that builds the object, before any
transfer starts.

The dataflow is deliberately simple: track which variables are bound to
objects (``create_object``/``MROMObject`` constructions), which of those
flow into a migration sink (``manager.migrate``/``deploy_copy`` first
argument), and flag the definitions that would make the pack fail:

* ``migration.native-code`` — a method defined from anything but a
  string literal (a function object cannot cross the wire; the journal
  would strip it and the destination would refuse it);
* ``migration.unmarshalable-value`` — a data value with no marshal form
  (set literals and comprehensions, lambdas, generators, file handles —
  the shapes :mod:`repro.net.marshal` rejects);
* ``migration.external-ref`` — a data value obtained from ``ref_to`` or
  a ``remote_*`` verb: a by-reference stub that silently re-binds to the
  origin site after the move (the warning twin of the admission gate's
  ``adm.external-reference``).

Objects that never migrate are left alone — a native helper on a
stationary object is idiomatic, not a hazard.
"""

from __future__ import annotations

import ast as pyast

from .diagnostics import Diagnostic, Severity

__all__ = ["MIGRATION_RULES", "analyze_host_source"]

MIGRATION_RULES = {
    "migration.native-code": (
        "a migrated object carries a method defined from a non-string "
        "body; native code has no wire representation and the journal "
        "marks the object skipped_unportable at PREPARE"
    ),
    "migration.unmarshalable-value": (
        "a migrated object carries a data value with no wire "
        "representation (set, lambda, generator, handle)"
    ),
    "migration.external-ref": (
        "a migrated object carries a by-reference stub that re-binds to "
        "the origin site after the move"
    ),
}

#: define/add verbs whose second positional argument is a method body
_METHOD_DEFS = frozenset(
    {"define_fixed_method", "define_method", "add_method"}
)
#: define/add verbs whose second positional argument is a data value
_DATA_DEFS = frozenset(
    {"define_fixed_data", "define_data", "add_data", "set_data", "set"}
)
_MIGRATE_SINKS = frozenset({"migrate", "deploy_copy"})
_OBJECT_CTORS = frozenset({"MROMObject", "create_object"})
_UNMARSHALABLE_CALLS = frozenset(
    {"set", "frozenset", "open", "object", "iter", "memoryview"}
)
_REF_VERBS = frozenset({"ref_to"})


def _is_unmarshalable_literal(node) -> bool:
    if isinstance(node, (pyast.Set, pyast.SetComp, pyast.GeneratorExp,
                         pyast.Lambda)):
        return True
    if isinstance(node, pyast.Call):
        func = node.func
        name = func.id if isinstance(func, pyast.Name) else ""
        return name in _UNMARSHALABLE_CALLS
    return False


def _is_ref_producer(node) -> bool:
    if not isinstance(node, pyast.Call):
        return False
    func = node.func
    if not isinstance(func, pyast.Attribute):
        return False
    return func.attr in _REF_VERBS or func.attr.startswith("remote_")


def analyze_host_source(source: str, label: str = "<host>") -> list:
    """Migration-safety findings for one host python file."""
    try:
        tree = pyast.parse(source)
    except SyntaxError:
        return []

    object_vars: set = set()
    ref_vars: set = set()
    migrated: set = set()
    definitions: list = []  # (var, verb, call node) in program order

    for node in pyast.walk(tree):
        if isinstance(node, pyast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, pyast.Name):
                value = node.value
                if isinstance(value, pyast.Call):
                    func = value.func
                    ctor = (
                        func.id if isinstance(func, pyast.Name)
                        else func.attr if isinstance(func, pyast.Attribute)
                        else ""
                    )
                    if ctor in _OBJECT_CTORS:
                        object_vars.add(target.id)
                    elif _is_ref_producer(value):
                        ref_vars.add(target.id)
        elif isinstance(node, pyast.Call):
            func = node.func
            if not (
                isinstance(func, pyast.Attribute)
                and isinstance(func.value, pyast.Name)
            ):
                continue
            owner, verb = func.value.id, func.attr
            if verb in _MIGRATE_SINKS and node.args:
                first = node.args[0]
                if isinstance(first, pyast.Name):
                    migrated.add(first.id)
            elif verb in _METHOD_DEFS or verb in _DATA_DEFS:
                definitions.append((owner, verb, node))

    if not migrated:
        return []

    out: list = []
    for owner, verb, call in sorted(
        definitions, key=lambda d: (d[2].lineno, d[2].col_offset)
    ):
        if owner not in object_vars or owner not in migrated:
            continue
        line, column = call.lineno, call.col_offset + 1
        if verb in _METHOD_DEFS:
            body = call.args[1] if len(call.args) >= 2 else None
            for kw in call.keywords:
                if kw.arg == "body":
                    body = kw.value
            bodies = [body] if body is not None else []
            bodies += [
                kw.value for kw in call.keywords if kw.arg in ("pre", "post")
            ]
            for candidate in bodies:
                if not (
                    isinstance(candidate, pyast.Constant)
                    and isinstance(candidate.value, str)
                ):
                    out.append(Diagnostic(
                        rule="migration.native-code",
                        severity=Severity.ERROR,
                        message=(
                            f"object '{owner}' migrates but method defined "
                            f"here has a non-string body; native code "
                            f"cannot cross the wire and the journal will "
                            f"mark the object skipped_unportable"
                        ),
                        source=label,
                        line=line,
                        column=column,
                        hint="write the body in the portable dialect (a "
                             "string the compiler accepts) before migrating",
                        extra={"object": owner},
                    ))
                    break
        else:
            value = call.args[1] if len(call.args) >= 2 else None
            if value is None:
                continue
            if _is_unmarshalable_literal(value):
                out.append(Diagnostic(
                    rule="migration.unmarshalable-value",
                    severity=Severity.ERROR,
                    message=(
                        f"object '{owner}' migrates but this data value "
                        f"has no wire representation; PREPARE will fail "
                        f"to pack it"
                    ),
                    source=label,
                    line=line,
                    column=column,
                    hint="store a marshalable shape (list/dict/scalars) "
                         "and rebuild the runtime value on arrival",
                    extra={"object": owner},
                ))
            elif _is_ref_producer(value) or (
                isinstance(value, pyast.Name) and value.id in ref_vars
            ):
                out.append(Diagnostic(
                    rule="migration.external-ref",
                    severity=Severity.WARNING,
                    message=(
                        f"object '{owner}' migrates carrying a by-"
                        f"reference stub; after the move it re-binds to "
                        f"the origin site on every use"
                    ),
                    source=label,
                    line=line,
                    column=column,
                    hint="resolve the reference to a value before the "
                         "move, or re-acquire it at the destination",
                    extra={"object": owner},
                ))
    return out
