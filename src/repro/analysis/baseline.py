"""Baseline suppression for the lint/analyze CLIs.

Turning a new analyzer on over a mature tree surfaces a wall of
pre-existing findings; fixing them all before CI can gate is a flag-day
nobody schedules. A *baseline* breaks the deadlock: the first run with
``--baseline file.json`` records every current finding and exits clean;
every later run subtracts the recorded set and fails only on findings
the baseline has never seen. The debt stays visible (it is a committed
JSON file with a count in plain sight) while the gate holds the line at
"no new ones".

A finding matches a baseline entry on ``(rule, source, line)`` — the
same identity the dedupe pass uses. Line numbers do drift when files are
edited above a finding; that re-surfaces the finding as "new", which is
the right failure mode for a gate (stale suppressions die loudly, not
silently).
"""

from __future__ import annotations

import json
from pathlib import Path

from .diagnostics import Diagnostic

__all__ = ["load_baseline", "write_baseline", "suppress", "baseline_key"]

_FORMAT = "repro-baseline/1"


def baseline_key(diagnostic: Diagnostic) -> str:
    return f"{diagnostic.rule}|{diagnostic.source}|{diagnostic.line}"


def write_baseline(path: str | Path, diagnostics: list) -> int:
    """Record *diagnostics* as the accepted debt; returns the count."""
    entries = sorted({baseline_key(d) for d in diagnostics})
    payload = {"format": _FORMAT, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)


def load_baseline(path: str | Path) -> set:
    """The recorded finding keys, or None when the file does not exist."""
    file = Path(path)
    if not file.exists():
        return None
    payload = json.loads(file.read_text())
    if payload.get("format") != _FORMAT:
        raise ValueError(
            f"{file} is not a recognized baseline file "
            f"(format {payload.get('format')!r}, expected {_FORMAT!r})"
        )
    return set(payload.get("findings", ()))


def suppress(diagnostics: list, baseline: set) -> tuple:
    """Split findings into (new, suppressed) against a baseline set."""
    new: list = []
    suppressed: list = []
    for diagnostic in diagnostics:
        if baseline_key(diagnostic) in baseline:
            suppressed.append(diagnostic)
        else:
            new.append(diagnostic)
    return new, suppressed
