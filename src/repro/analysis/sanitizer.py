"""The happens-before sanitizer: the analyzer's differential oracle.

A static race analyzer that is never checked against reality drifts
into either noise (findings nobody can reproduce) or blindness (hazard
classes it never models). This module closes the loop: during a chaos
or soak run it reconstructs the *actual* partial order of the execution
with vector clocks, watches every extensible-item access the kernel
performs, and records each pair of accesses that were (a) conflicting
and (b) unordered — a dynamic race witness. At the end of the run,
:meth:`Sanitizer.crosscheck` demands that every witness maps back to a
static ``race.*`` finding over the same item and methods, and every
observed sync-wait cycle to a ``cycle.*`` finding. An unmatched witness
means the static analysis has a hole; that is a test failure, not a
log line.

Clock plumbing follows the kernel's own edges:

* each logical activity (a driver issuing a request, a site serving
  one, an ActiveObject worker) is a *task* with a vector clock;
* ``note_sent`` snapshots the sender's clock under the wire message id;
  ``begin_serve`` forks the serving task from that snapshot (the
  send→receive edge); ``end_serve`` publishes the serving clock under
  the same id so the requester's ``absorb_reply`` can join it (the
  reply edge);
* ActiveObject submissions carry the submitter's snapshot into the
  worker's clock; the worker task itself persists across items, which
  encodes mailbox serialization as a happens-before edge — exactly the
  ordering guarantee the wrapper exists to provide.

Like the telemetry plane, the sanitizer is a module-level ``ACTIVE``
switch: every hook is one attribute read plus an identity test when it
is off, and ``bench_perf13_analysis.py`` holds that to the same <2%
budget telemetry lives under.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

__all__ = [
    "Sanitizer",
    "ObservedRace",
    "ObservedCycle",
    "ACTIVE",
    "enable",
    "disable",
]

#: the installed sanitizer, or None (the common case: every hook is one
#: module-attribute read + identity test when no sanitizer is active)
ACTIVE: "Sanitizer | None" = None


def enable(sanitizer: "Sanitizer | None" = None) -> "Sanitizer":
    """Install (and return) a sanitizer as the process-wide ACTIVE one."""
    global ACTIVE
    ACTIVE = sanitizer if sanitizer is not None else Sanitizer()
    return ACTIVE


def disable() -> "Sanitizer | None":
    """Uninstall the active sanitizer and return it for inspection."""
    global ACTIVE
    sanitizer, ACTIVE = ACTIVE, None
    return sanitizer


@dataclass(frozen=True)
class ObservedRace:
    """Two unordered conflicting accesses to one extensible item."""

    guid: str
    subject: str
    item: str
    methods: tuple  # sorted pair of method names
    writers: tuple  # the subset of `methods` that wrote

    def describe(self) -> str:
        a, b = self.methods
        return (
            f"dynamic race on {self.subject}.{self.item!r} between "
            f"'{a}' and '{b}' (writers: {', '.join(self.writers)})"
        )


@dataclass(frozen=True)
class ObservedCycle:
    """A sync-wait dependency ring observed between sites at run time."""

    sites: tuple  # canonical (sorted) site ids

    def describe(self) -> str:
        return f"dynamic sync-wait cycle through sites {list(self.sites)}"


_UNSET = object()


class Sanitizer:
    """Vector-clock happens-before tracking over kernel activities."""

    def __init__(self, history: int = 32, stash_cap: int = 8192):
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._clocks: dict = {}          # task id -> {task id: counter}
        self._labels: dict = {}          # task id -> debug label
        self._history_cap = history
        self._stash_cap = stash_cap
        self._sent: OrderedDict = OrderedDict()   # msg id -> clock snapshot
        self._done: OrderedDict = OrderedDict()   # msg id -> serve clock
        self._accesses: dict = {}        # (guid, item) -> deque of accesses
        self._effects_cache: dict = {}   # (guid, method) -> effects | None
        self._object_effects: dict = {}  # guid -> {method: effects}
        self._subjects: dict = {}        # guid -> display label
        self._waits: dict = {}           # (src, dst) -> outstanding count
        self.races: list = []
        self.cycles: list = []
        self._race_keys: set = set()
        self._cycle_keys: set = set()
        # run counters, for reports and the non-vacuity assertions
        self.tasks_created = 0
        self.access_count = 0
        self.send_count = 0
        self.sync_count = 0

    # ------------------------------------------------------------------
    # tasks and clocks
    # ------------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self):
        stack = self._stack()
        return stack[-1] if stack else None

    def fork(self, label: str = "", parent=_UNSET):
        """New task; its clock inherits *parent*'s (default: current)."""
        if parent is _UNSET:
            parent = self.current()
        with self._lock:
            task = next(self._ids)
            clock = dict(self._clocks.get(parent, ())) if parent else {}
            clock[task] = 1
            self._clocks[task] = clock
            self._labels[task] = label
            self.tasks_created += 1
        return task

    def push(self, task) -> None:
        self._stack().append(task)

    def pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def snapshot(self, task=None):
        """A copy of *task*'s clock (default: the current task's)."""
        if task is None:
            task = self.current()
        if task is None:
            return None
        with self._lock:
            return dict(self._clocks.get(task, ()))

    def merge(self, task, clock) -> None:
        """Join *clock* into *task*'s clock (a happens-before edge)."""
        if task is None or not clock:
            return
        with self._lock:
            mine = self._clocks.setdefault(task, {})
            for other, counter in clock.items():
                if counter > mine.get(other, 0):
                    mine[other] = counter
            self.sync_count += 1

    # ------------------------------------------------------------------
    # message edges (wired from net/site.py and net/rmi.py)
    # ------------------------------------------------------------------

    def _stash(self, table: OrderedDict, key, clock) -> None:
        with self._lock:
            table[key] = clock
            while len(table) > self._stash_cap:
                table.popitem(last=False)

    def note_sent(self, msg_id, fallback=None) -> None:
        """Record the sender's clock under the wire message id.

        *fallback* covers resends fired from scheduled events with no
        current task (async retries): the original issuer's snapshot
        still orders the serve after everything the issuer had seen.
        """
        clock = self.snapshot()
        if clock is None:
            clock = fallback
        if clock is not None:
            self.send_count += 1
            self._stash(self._sent, msg_id, dict(clock))

    def begin_serve(self, msg_id, label: str = ""):
        """Fork the serving task for one delivered request and enter it."""
        task = self.fork(label=label, parent=None)
        with self._lock:
            clock = self._sent.get(msg_id)
        if clock:
            self.merge(task, clock)
        self.push(task)
        return task

    def end_serve(self, msg_id, task) -> None:
        """Leave the serving task, publishing its clock for the reply."""
        self.pop()
        clock = self.snapshot(task)
        if clock:
            self._stash(self._done, msg_id, clock)

    def reply_clock(self, msg_id):
        with self._lock:
            return self._done.get(msg_id)

    def absorb_reply(self, msg_id) -> None:
        """Join the serve clock of *msg_id* into the current task."""
        task = self.current()
        if task is None:
            return
        clock = self.reply_clock(msg_id)
        if clock:
            self.merge(task, clock)

    # ------------------------------------------------------------------
    # data accesses
    # ------------------------------------------------------------------

    def access(
        self, guid: str, item: str, kind: str, method: str,
        subject: str = "",
    ) -> None:
        """One read/write of an extensible item by the current task."""
        task = self.current()
        if task is None:
            return
        with self._lock:
            clock = self._clocks[task]
            clock[task] = clock.get(task, 0) + 1
            local_time = clock[task]
            self.access_count += 1
            history = self._accesses.get((guid, item))
            if history is None:
                history = deque(maxlen=self._history_cap)
                self._accesses[(guid, item)] = history
            for prior_task, prior_time, prior_kind, prior_method in history:
                if prior_task == task:
                    continue
                if kind != "write" and prior_kind != "write":
                    continue
                if clock.get(prior_task, 0) >= prior_time:
                    continue  # ordered: prior happens-before this access
                methods = tuple(sorted((method, prior_method)))
                writers = tuple(sorted(
                    m for m, k in (
                        (method, kind), (prior_method, prior_kind),
                    ) if k == "write"
                ))
                key = (guid, item, methods)
                if key not in self._race_keys:
                    self._race_keys.add(key)
                    self.races.append(ObservedRace(
                        guid=guid,
                        subject=subject or self._subjects.get(guid, guid),
                        item=item,
                        methods=methods,
                        writers=writers,
                    ))
            history.append((task, local_time, kind, method))

    def invoke(self, obj, method: str) -> None:
        """Expand one method invocation into its modeled item accesses."""
        effects = self._effects_of(obj, method)
        guid = str(obj.guid)
        subject = self._subjects.get(guid, guid)
        # every dispatch reads the structure through the Lookup/Match pins
        self.access(guid, "##structure", "read", method, subject)
        if effects is None:
            return
        for item in effects.reads:
            self.access(guid, item, "read", method, subject)
        for item in effects.writes:
            self.access(guid, item, "write", method, subject)
        if effects.structural:
            self.access(guid, "##structure", "write", method, subject)

    def data_read(self, obj, item: str) -> None:
        """A protocol-level get_data read (no method body involved)."""
        guid = str(obj.guid)
        self._remember(obj)
        self.access(
            guid, item, "read", "get_data", self._subjects.get(guid, guid)
        )

    def _remember(self, obj) -> None:
        guid = str(obj.guid)
        if guid not in self._subjects:
            with self._lock:
                display = getattr(obj.principal, "display_name", "") or guid
                self._subjects[guid] = display

    def _effects_of(self, obj, method: str):
        key = (str(obj.guid), method)
        cached = self._effects_cache.get(key, _UNSET)
        if cached is not _UNSET:
            return cached
        from .races import effects_of_live_object

        self._remember(obj)
        guid = str(obj.guid)
        with self._lock:
            if guid not in self._object_effects:
                try:
                    self._object_effects[guid] = effects_of_live_object(obj)
                except Exception:
                    self._object_effects[guid] = {}
            effects = self._object_effects[guid].get(method)
            self._effects_cache[key] = effects
        return effects

    # ------------------------------------------------------------------
    # sync-wait cycles
    # ------------------------------------------------------------------

    def wait_begin(self, src: str, dst: str) -> None:
        """The caller at *src* starts blocking on a sync reply from *dst*."""
        with self._lock:
            ring = self._find_wait_path(dst, src)
            self._waits[(src, dst)] = self._waits.get((src, dst), 0) + 1
            if ring is None and src != dst:
                return
            sites = tuple(sorted(set([src, dst] + (ring or []))))
            if sites in self._cycle_keys:
                return
            self._cycle_keys.add(sites)
            self.cycles.append(ObservedCycle(sites=sites))

    def wait_end(self, src: str, dst: str) -> None:
        with self._lock:
            count = self._waits.get((src, dst), 0) - 1
            if count > 0:
                self._waits[(src, dst)] = count
            else:
                self._waits.pop((src, dst), None)

    def _find_wait_path(self, start: str, goal: str):
        """Path start -> ... -> goal over outstanding waits, or None."""
        edges: dict = {}
        for (src, dst), count in self._waits.items():
            if count > 0:
                edges.setdefault(src, set()).add(dst)
        stack = [(start, [start])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for succ in sorted(edges.get(node, ())):
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    # ------------------------------------------------------------------
    # the differential oracle
    # ------------------------------------------------------------------

    def static_diagnostics(self) -> list:
        """The race findings the static pass produces for every object
        this run actually touched — the same effect sets, the same
        conflict engine, so the comparison is apples to apples."""
        from .deadlock import recursion_findings
        from .races import conflicts

        out: list = []
        with self._lock:
            snapshot = {
                guid: dict(effects)
                for guid, effects in self._object_effects.items()
            }
        for guid in sorted(snapshot):
            effects = {
                name: eff
                for name, eff in snapshot[guid].items()
                if eff is not None
            }
            subject = self._subjects.get(guid, guid)
            source = f"object:{guid}"
            out.extend(conflicts(effects, source, subject))
            out.extend(recursion_findings(effects, source, subject))
        return out

    def unmatched_races(self, diagnostics: list) -> list:
        """Observed races with no static ``race.*`` finding to blame."""
        index: dict = {}  # (guid, item) -> set of implicated methods
        for diag in diagnostics:
            if "race." not in diag.rule:
                continue
            guid = diag.source.split(":", 1)[-1]
            item = diag.extra.get("item")
            methods = index.setdefault((guid, item), set())
            methods.update(diag.extra.get("methods", ()))
        unmatched = []
        for race in self.races:
            implicated = index.get((race.guid, race.item), set())
            # protocol reads (get_data) have no method body to implicate;
            # the static side is on the hook for the writers only
            writers = set(race.writers) or set(race.methods)
            if "*" in implicated or writers <= implicated:
                continue
            unmatched.append(race)
        return unmatched

    def unmatched_cycles(self, diagnostics: list) -> list:
        """Observed cycles with no static ``cycle.*`` finding to blame."""
        static_rings = {
            frozenset(diag.extra.get("sites", ()))
            for diag in diagnostics
            if "cycle." in diag.rule
        }
        return [
            cycle
            for cycle in self.cycles
            if frozenset(cycle.sites) not in static_rings
        ]

    def crosscheck(self, diagnostics: list | None = None) -> dict:
        """The differential verdict; extra static findings are fine,
        unmatched dynamic witnesses are the analyzer's bugs."""
        if diagnostics is None:
            diagnostics = self.static_diagnostics()
        unmatched_races = self.unmatched_races(diagnostics)
        unmatched_cycles = self.unmatched_cycles(diagnostics)
        return {
            "observed_races": len(self.races),
            "observed_cycles": len(self.cycles),
            "static_findings": len(diagnostics),
            "unmatched_races": [r.describe() for r in unmatched_races],
            "unmatched_cycles": [c.describe() for c in unmatched_cycles],
            "tasks": self.tasks_created,
            "accesses": self.access_count,
            "sends": self.send_count,
            "syncs": self.sync_count,
            "ok": not unmatched_races and not unmatched_cycles,
        }
