"""Cross-object call graphs over MPL programs and host scenarios.

Two graph builders feed the interprocedural passes:

* :func:`from_program` — intra-program edges: sibling invocations inside
  MPL method bodies (``self.call`` and the ``self.m()`` sugar) and
  top-level script invocations on ``new``-bound objects.
* :func:`scan_host` — a python-AST scan of a host scenario file: the
  ``Site``/``MobilityManager`` wiring, per-site admission windows
  (``inflight_limit``), and every RMI edge a site issues — sync verbs
  (``request``/``remote_invoke``/…), their ``*_async`` variants, batched
  frames (``RequestBatch``/``BatchedRef``) and migrations. Edges carry
  their source line in program order, which is exactly what the
  incremental wait-for cycle check in :mod:`.deadlock` needs to anchor a
  finding at the edge that *closes* a cycle.

The scan is best-effort by design: it resolves destinations that are
string literals or names bound to sites in the same file, and silently
skips anything dynamic. A static deadlock pass that guessed at computed
destinations would drown its real findings in noise.
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass, field

__all__ = ["Edge", "CallGraph", "HostScan", "from_program", "scan_host"]

#: site verbs that block the caller until the reply arrives
SYNC_VERBS = frozenset(
    {
        "request", "remote_invoke", "remote_get_data", "remote_describe",
        "remote_resolve", "ping",
    }
)
#: site verbs that return a future immediately
ASYNC_VERBS = frozenset(
    {"request_async", "remote_invoke_async", "remote_get_data_async"}
)
#: manager verbs that move an object (the sender blocks on the handoff)
MIGRATE_VERBS = frozenset({"migrate", "deploy_copy"})


@dataclass(frozen=True)
class Edge:
    src: str
    dst: str
    kind: str  # "invoke" | "rmi" | "rmi_async" | "batch" | "migrate"
    line: int = 0
    column: int = 0


@dataclass
class CallGraph:
    nodes: set = field(default_factory=set)
    edges: list = field(default_factory=list)

    def add(self, edge: Edge) -> None:
        self.nodes.add(edge.src)
        self.nodes.add(edge.dst)
        self.edges.append(edge)

    def successors(self, node: str, kinds=None) -> set:
        return {
            e.dst
            for e in self.edges
            if e.src == node and (kinds is None or e.kind in kinds)
        }


def from_program(program, label: str = "<mpl>") -> CallGraph:
    """Call graph of one MPL program: ``Object.method`` nodes.

    Sibling calls come from the effect extractor; top-level script
    statements add ``<main> -> Object.method`` edges for invocations on
    ``let x = new Object`` bindings.
    """
    from ..lang import ast_nodes as mpl
    from ..lang.effects import effects_of_object
    from ..lang.parser import span_of

    graph = CallGraph()
    for decl in program.objects:
        for method, eff in effects_of_object(decl).items():
            src = f"{decl.name}.{method}"
            graph.nodes.add(src)
            for callee, (line, column) in sorted(eff.self_calls.items()):
                graph.add(Edge(
                    src, f"{decl.name}.{callee}", "invoke", line, column,
                ))

    bindings: dict = {}  # top-level var -> declared object name

    def walk_script(node) -> None:
        if isinstance(node, mpl.Let) and isinstance(node.value, mpl.NewObject):
            bindings[node.name] = node.value.decl_name
        if isinstance(node, mpl.MethodCall) and isinstance(
            node.target, mpl.Name
        ):
            target = bindings.get(node.target.ident)
            if target is not None:
                line, column = span_of(node)
                graph.add(Edge(
                    "<main>", f"{target}.{node.name}", "invoke", line, column,
                ))
        for attr in ("value", "condition", "iterable", "target", "index"):
            child = getattr(node, attr, None)
            if child is not None and not isinstance(child, str):
                walk_script(child)
        for attr in ("then_body", "else_body", "body", "args", "elements"):
            for child in getattr(node, attr, ()) or ():
                walk_script(child)

    for stmt in program.statements:
        walk_script(stmt)
    return graph


# ---------------------------------------------------------------------------
# host scenario scan
# ---------------------------------------------------------------------------


@dataclass
class HostScan:
    """What a host-file scan learned: the site topology and RMI edges."""

    label: str
    sites: dict = field(default_factory=dict)      # var name -> site id
    windows: dict = field(default_factory=dict)    # site id -> inflight limit
    managers: dict = field(default_factory=dict)   # var name -> home site id
    graph: CallGraph = field(default_factory=CallGraph)

    def site_node(self, site_id: str) -> str:
        return f"site:{site_id}"


def _const_str(node) -> str | None:
    if isinstance(node, pyast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def scan_host(source: str, label: str = "<host>") -> HostScan:
    """Scan one host python file for sites, windows and RMI edges."""
    scan = HostScan(label=label)
    try:
        tree = pyast.parse(source)
    except SyntaxError:
        return scan

    calls: list = []
    for node in pyast.walk(tree):
        if isinstance(node, pyast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if isinstance(target, pyast.Name) and isinstance(value, pyast.Call):
                func = value.func
                ctor = func.id if isinstance(func, pyast.Name) else (
                    func.attr if isinstance(func, pyast.Attribute) else ""
                )
                if ctor == "Site" and len(value.args) >= 2:
                    site_id = _const_str(value.args[1])
                    if site_id is not None:
                        scan.sites[target.id] = site_id
                elif ctor == "MobilityManager" and value.args:
                    home = value.args[0]
                    if isinstance(home, pyast.Name) and home.id in scan.sites:
                        scan.managers[target.id] = scan.sites[home.id]
            elif (
                isinstance(target, pyast.Attribute)
                and isinstance(target.value, pyast.Name)
                and target.attr == "inflight_limit"
                and target.value.id in scan.sites
                and isinstance(node.value, pyast.Constant)
                and isinstance(node.value.value, int)
            ):
                scan.windows[scan.sites[target.value.id]] = node.value.value
        elif isinstance(node, pyast.Call):
            calls.append(node)

    def resolve(dst_expr) -> str | None:
        dst = _const_str(dst_expr)
        if dst is not None:
            return dst
        if isinstance(dst_expr, pyast.Name):
            return scan.sites.get(dst_expr.id)
        return None

    # program order matters: a cycle is reported at the edge closing it
    for call in sorted(calls, key=lambda c: (c.lineno, c.col_offset)):
        func = call.func
        if not (
            isinstance(func, pyast.Attribute)
            and isinstance(func.value, pyast.Name)
        ):
            continue
        owner, verb = func.value.id, func.attr
        if owner in scan.sites and call.args:
            kind = (
                "rmi" if verb in SYNC_VERBS
                else "rmi_async" if verb in ASYNC_VERBS
                else "batch" if verb == "batch"
                else None
            )
            dst = resolve(call.args[0])
            if kind is not None and dst is not None:
                scan.graph.add(Edge(
                    scan.site_node(scan.sites[owner]),
                    scan.site_node(dst),
                    kind, call.lineno, call.col_offset + 1,
                ))
        elif owner in scan.managers and verb in MIGRATE_VERBS:
            if len(call.args) >= 2:
                dst = resolve(call.args[1])
                if dst is not None:
                    scan.graph.add(Edge(
                        scan.site_node(scan.managers[owner]),
                        scan.site_node(dst),
                        "migrate", call.lineno, call.col_offset + 1,
                    ))
    return scan
