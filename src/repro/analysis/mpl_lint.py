"""Static analysis for MPL programs: dataflow and structure lint passes.

The verifier in :mod:`repro.mobility.sandbox` judges *compiled portable
source* after the bytes already moved; this module judges the *MPL
program itself*, before it is compiled, packed or shipped — the
language-level static checking.

Passes (each finding carries a stable rule id from :data:`RULES`):

* **name resolution** — undefined names, use before ``let``, assignment
  to parameters, shadowing, reserved and sandbox-hostile names;
* **structure** — duplicate members/parameters, collisions with the
  bundled meta-method names;
* **dataflow** — unused ``let``/``for`` bindings, unreachable statements
  after a ``return``;
* **self references** — ``self.get``/``set``/``delete_data``... against
  undeclared data items, calls to missing methods, arity mismatches,
  structural writes to fixed-section items;
* **portability** — constructs that compile locally but that the
  destination sandbox verifier would reject on arrival.

Entry points: :func:`lint_source` (text) and :func:`lint_program`
(a parsed :class:`~repro.lang.ast_nodes.Program`).
"""

from __future__ import annotations

from ..core.errors import MPLSyntaxError
from ..core.mobject import META_METHOD_NAMES
from ..lang import ast_nodes as ast
from ..lang.compiler import BUILTINS, SELFVIEW_API, _RESERVED
from ..lang.parser import parse, span_of
from ..mobility.sandbox import _FORBIDDEN_NAMES
from .diagnostics import Diagnostic, Severity

__all__ = ["RULES", "lint_source", "lint_program"]


#: Every MPL lint rule id and what it means. Severity in parentheses.
RULES: dict[str, str] = {
    "mpl.syntax": "the source text does not parse (error)",
    "mpl.undefined-name": "a name that is no parameter, local, data item or builtin (error)",
    "mpl.use-before-let": "a local read or assigned before its 'let' runs (error)",
    "mpl.unused-binding": "a 'let'/'for' binding that is never read (warning)",
    "mpl.unreachable-code": "a statement that can never run (after 'return') (warning)",
    "mpl.undeclared-item": "self.get/set/delete of a data item the object never declares (error)",
    "mpl.unknown-method": "a self-call to a method the object does not have (error)",
    "mpl.arity-mismatch": "a call whose argument count cannot match the target (error)",
    "mpl.fixed-item-write": "a structural write (add/delete) targeting a fixed-section item (error)",
    "mpl.shadowed-name": "a 'let' that shadows a parameter or data item (error)",
    "mpl.reserved-name": "a parameter or local using a reserved runtime name (error)",
    "mpl.meta-collision": "a member named after a bundled meta-method (error)",
    "mpl.duplicate-member": "two members or parameters with the same name (error)",
    "mpl.assign-to-parameter": "assignment to a method parameter (error)",
    "mpl.nonportable-name": "a local name the destination sandbox verifier rejects (error)",
    "mpl.invalid-construct": "a construct used where the language forbids it (error)",
    "mpl.toplevel-misuse": "'return' or 'self' in top-level script code (error)",
    "mpl.unknown-object": "'new' of an object declaration that does not exist (error)",
}

#: facade / meta operations taking a fixed argument range: name -> (min, max)
#: (max None = unbounded)
_FACADE_ARITY: dict[str, tuple[int, int | None]] = {
    "get": (1, 1),
    "set": (2, 2),
    "call": (1, None),
    "has_data": (1, 1),
    "has_method": (1, 1),
    "add_data": (2, 3),
    "delete_data": (1, 1),
    "add_method": (2, 3),
    "delete_method": (1, 1),
    "data_names": (0, 0),
    "method_names": (0, 0),
}

_META_ARITY: dict[str, tuple[int, int | None]] = {
    "getDataItem": (1, 1),
    "setDataItem": (2, 2),
    "addDataItem": (2, 3),
    "deleteDataItem": (1, 1),
    "getMethod": (1, 1),
    "setMethod": (2, 2),
    "addMethod": (2, 3),
    "deleteMethod": (1, 1),
    "invoke": (1, 2),
}

#: facade/meta operations that *read or write the value* of a data item
#: named by their first (literal) argument
_DATA_NAME_OPS = frozenset({"get", "set", "delete_data", "getDataItem",
                            "deleteDataItem", "setDataItem"})
#: operations that structurally remove an item — illegal on fixed items
_DATA_DELETE_OPS = frozenset({"delete_data", "deleteDataItem"})
_METHOD_DELETE_OPS = frozenset({"delete_method", "deleteMethod"})
#: operations that add an item — illegal when colliding with a fixed item
_DATA_ADD_OPS = frozenset({"add_data", "addDataItem"})
_METHOD_ADD_OPS = frozenset({"add_method", "addMethod"})


def lint_source(
    source: str,
    path: str = "<mpl>",
    allow_unknown_toplevel: bool = False,
) -> list[Diagnostic]:
    """Lint MPL source text; a parse failure is itself a diagnostic.

    *allow_unknown_toplevel* treats unknown top-level names as bindings
    the host will seed (``Interpreter.run(source, bindings=...)``) — the
    right mode for program fragments embedded in host applications.
    """
    try:
        program = parse(source)
    except MPLSyntaxError as exc:
        return [
            Diagnostic(
                rule="mpl.syntax",
                severity=Severity.ERROR,
                message=str(exc),
                source=path,
                line=exc.line,
                column=exc.column,
            )
        ]
    return lint_program(
        program, path=path, allow_unknown_toplevel=allow_unknown_toplevel
    )


def lint_program(
    program: ast.Program,
    path: str = "<mpl>",
    allow_unknown_toplevel: bool = False,
) -> list[Diagnostic]:
    """Lint a parsed program; returns diagnostics in source order."""
    linter = _Linter(path, allow_unknown_toplevel)
    linter.run(program)
    return linter.diagnostics


class _ObjectContext:
    """Everything the method passes need to know about one object."""

    def __init__(self, decl: ast.ObjectDecl):
        self.decl = decl
        self.data = {d.name: d for d in decl.data}
        self.methods = {m.name: m for m in decl.methods}
        self.fixed_data = {d.name for d in decl.data if d.fixed}
        self.fixed_methods = {m.name for m in decl.methods if m.fixed}
        # items added at run time via add_data/add_method with literal
        # names anywhere in the object count as declared for lookups —
        # the add-then-get idiom must not trip undeclared-item
        self.dynamic_data: set[str] = set()
        self.dynamic_methods: set[str] = set()

    def collect_dynamic_names(self) -> None:
        for method in self.decl.methods:
            for node in _walk_method(method):
                if not (
                    isinstance(node, ast.MethodCall)
                    and isinstance(node.target, ast.SelfRef)
                    and node.args
                    and isinstance(node.args[0], ast.Literal)
                    and isinstance(node.args[0].value, str)
                ):
                    continue
                name = node.args[0].value
                if node.name in _DATA_ADD_OPS:
                    self.dynamic_data.add(name)
                elif node.name in _METHOD_ADD_OPS:
                    self.dynamic_methods.add(name)


def _walk_method(method: ast.MethodDecl):
    """Yield every AST node in a method's body and clauses."""
    stack: list = list(method.body)
    if method.requires is not None:
        stack.append(method.requires)
    if method.ensures is not None:
        stack.append(method.ensures)
    while stack:
        node = stack.pop()
        yield node
        stack.extend(_children(node))


def _children(node) -> list:
    kids: list = []
    for attr in ("value", "condition", "iterable", "target", "index",
                 "operand", "left", "right", "func", "initial"):
        child = getattr(node, attr, None)
        if child is not None and not isinstance(child, str):
            kids.append(child)
    for seq_attr in ("elements", "args", "then_body", "else_body", "body"):
        kids.extend(getattr(node, seq_attr, ()))
    for key, value in getattr(node, "pairs", ()):
        kids.append(key)
        kids.append(value)
    return kids


class _Linter:
    def __init__(self, path: str, allow_unknown_toplevel: bool):
        self.path = path
        self.allow_unknown_toplevel = allow_unknown_toplevel
        self.diagnostics: list[Diagnostic] = []

    # -- reporting ---------------------------------------------------------

    def report(
        self,
        rule: str,
        node,
        message: str,
        severity: Severity = Severity.ERROR,
        hint: str = "",
    ) -> None:
        line, column = span_of(node)
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                source=self.path,
                line=line,
                column=column,
                hint=hint,
            )
        )

    # -- program -----------------------------------------------------------

    def run(self, program: ast.Program) -> None:
        contexts = {}
        for decl in program.objects:
            contexts[decl.name] = self.lint_object(decl)
        self.lint_toplevel(program, contexts)

    # -- object declarations -------------------------------------------------

    def lint_object(self, decl: ast.ObjectDecl) -> _ObjectContext:
        context = _ObjectContext(decl)
        context.collect_dynamic_names()
        seen: dict[tuple[str, str], object] = {}
        for member in list(decl.data) + list(decl.methods):
            category = "data" if isinstance(member, ast.DataDecl) else "method"
            key = (category, member.name)
            if key in seen:
                self.report(
                    "mpl.duplicate-member",
                    member,
                    f"object {decl.name!r} declares {category} item "
                    f"{member.name!r} twice",
                )
            seen[key] = member
            if member.name in META_METHOD_NAMES:
                self.report(
                    "mpl.meta-collision",
                    member,
                    f"member {member.name!r} collides with a bundled "
                    "meta-method; the object cannot be built",
                    hint="rename the member",
                )
        for data_decl in decl.data:
            if data_decl.initial is not None:
                self.lint_initializer(data_decl.initial)
        for method in decl.methods:
            self.lint_method(method, context)
        return context

    def lint_initializer(self, expr) -> None:
        """Data initializers run in a fresh evaluator: literals/builtins only."""
        for node in _iter_expr(expr):
            if isinstance(node, ast.Name) and node.ident not in BUILTINS:
                self.report(
                    "mpl.undefined-name",
                    node,
                    f"name {node.ident!r} is not available in a data "
                    "initializer (only literals and builtins are)",
                )
            elif isinstance(node, ast.SelfRef):
                self.report(
                    "mpl.invalid-construct",
                    node,
                    "'self' cannot appear in a data initializer",
                )
            elif isinstance(node, ast.NewObject):
                self.report(
                    "mpl.invalid-construct",
                    node,
                    "'new' cannot appear in a data initializer",
                )

    # -- methods -------------------------------------------------------------

    def lint_method(self, method: ast.MethodDecl, context: _ObjectContext) -> None:
        seen_params: set[str] = set()
        for param in method.params:
            if param in seen_params:
                self.report(
                    "mpl.duplicate-member",
                    method,
                    f"method {method.name!r} declares parameter "
                    f"{param!r} twice",
                )
            seen_params.add(param)
            if param in _RESERVED:
                self.report(
                    "mpl.reserved-name",
                    method,
                    f"parameter name {param!r} is reserved by the runtime",
                )
        scope = _MethodScope(method, context)
        self.lint_block(method.body, scope)
        for name, node in scope.unread_bindings():
            if not name.startswith("_"):
                self.report(
                    "mpl.unused-binding",
                    node,
                    f"binding {name!r} is never read",
                    severity=Severity.WARNING,
                    hint="remove it, or prefix with '_' if intentional",
                )
        if method.requires is not None:
            self.lint_clause(method.requires, scope, with_result=False)
        if method.ensures is not None:
            self.lint_clause(method.ensures, scope, with_result=True)

    def lint_clause(self, expr, scope: "_MethodScope", with_result: bool) -> None:
        clause_scope = scope.clause_view(with_result)
        self.lint_expr(expr, clause_scope)

    def lint_block(self, body, scope: "_MethodScope") -> bool:
        """Lint statements in order; True when the block always returns."""
        returned = False
        for statement in body:
            if returned:
                self.report(
                    "mpl.unreachable-code",
                    statement,
                    "statement is unreachable (every prior path returned)",
                    severity=Severity.WARNING,
                )
                returned = False  # flag once per block, keep analysing
            if self.lint_stmt(statement, scope):
                returned = True
        return returned

    def lint_stmt(self, node, scope: "_MethodScope") -> bool:
        """Lint one statement; True when it always returns."""
        if isinstance(node, ast.Let):
            self.lint_expr(node.value, scope)
            self.declare_local(node, scope)
            return False
        if isinstance(node, ast.Assign):
            self.lint_expr(node.value, scope)
            self.lint_assign_target(node, scope)
            return False
        if isinstance(node, ast.IndexAssign):
            self.lint_expr(node.target, scope)
            self.lint_expr(node.index, scope)
            self.lint_expr(node.value, scope)
            return False
        if isinstance(node, ast.Return):
            if node.value is not None:
                self.lint_expr(node.value, scope)
            return True
        if isinstance(node, ast.If):
            self.lint_expr(node.condition, scope)
            then_returns = self.lint_block(node.then_body, scope)
            else_returns = (
                self.lint_block(node.else_body, scope)
                if node.else_body
                else False
            )
            return then_returns and else_returns
        if isinstance(node, ast.While):
            self.lint_expr(node.condition, scope)
            self.lint_block(node.body, scope)
            return False
        if isinstance(node, ast.ForEach):
            self.lint_expr(node.iterable, scope)
            self.declare_local(node, scope)
            self.lint_block(node.body, scope)
            return False
        if isinstance(node, ast.Print):
            self.lint_expr(node.value, scope)
            return False
        if isinstance(node, ast.ExprStmt):
            self.lint_expr(node.value, scope)
            return False
        return False

    def declare_local(self, node, scope: "_MethodScope") -> None:
        name = node.name
        if name in _RESERVED:
            self.report(
                "mpl.reserved-name",
                node,
                f"local name {name!r} is reserved by the runtime",
            )
            return
        if name in scope.params or name in scope.context.data:
            self.report(
                "mpl.shadowed-name",
                node,
                f"'let {name}' shadows a parameter or data item",
                hint="pick a different local name",
            )
            return
        if name in _FORBIDDEN_NAMES or name.startswith("__"):
            self.report(
                "mpl.nonportable-name",
                node,
                f"local name {name!r} compiles, but the destination "
                "sandbox verifier rejects it on arrival",
                hint="rename the local",
            )
        scope.declare(name, node)

    def lint_assign_target(self, node: ast.Assign, scope: "_MethodScope") -> None:
        name = node.name
        if name in scope.context.data:
            return  # a value write — legal even for fixed items
        if name in scope.params:
            self.report(
                "mpl.assign-to-parameter",
                node,
                f"cannot assign to parameter {name!r}",
                hint="copy it into a local with 'let' first",
            )
            return
        if name in scope.defined:
            return
        if name in scope.all_lets:
            self.report(
                "mpl.use-before-let",
                node,
                f"{name!r} is assigned before its 'let' runs",
            )
            return
        self.report(
            "mpl.undefined-name",
            node,
            f"assignment to undeclared name {name!r}",
            hint="declare it with 'let'",
        )

    # -- expressions -----------------------------------------------------------

    def lint_expr(self, node, scope: "_MethodScope") -> None:
        if isinstance(node, ast.Literal):
            return
        if isinstance(node, ast.Name):
            self.resolve_name(node, scope)
            return
        if isinstance(node, ast.SelfRef):
            self.report(
                "mpl.invalid-construct",
                node,
                "'self' can only be used as a call target",
            )
            return
        if isinstance(node, ast.ListExpr):
            for element in node.elements:
                self.lint_expr(element, scope)
            return
        if isinstance(node, ast.MapExpr):
            for key, value in node.pairs:
                self.lint_expr(key, scope)
                self.lint_expr(value, scope)
            return
        if isinstance(node, ast.Unary):
            self.lint_expr(node.operand, scope)
            return
        if isinstance(node, ast.Binary):
            self.lint_expr(node.left, scope)
            self.lint_expr(node.right, scope)
            return
        if isinstance(node, ast.Index):
            self.lint_expr(node.target, scope)
            self.lint_expr(node.index, scope)
            return
        if isinstance(node, ast.MethodCall):
            self.lint_method_call(node, scope)
            return
        if isinstance(node, ast.FuncCall):
            self.lint_func_call(node, scope)
            return
        if isinstance(node, ast.NewObject):
            self.report(
                "mpl.invalid-construct",
                node,
                "'new' is only available in top-level script code",
            )
            return

    def resolve_name(self, node: ast.Name, scope: "_MethodScope") -> None:
        name = node.ident
        if name in scope.params:
            return
        if name in scope.defined:
            scope.mark_read(name)
            return
        if name in scope.context.data:
            return
        if name == "result":
            if scope.allow_result:
                return
            self.report(
                "mpl.undefined-name",
                node,
                "'result' is only available in an 'ensures' clause",
            )
            return
        if name in BUILTINS:
            return
        if name in scope.all_lets:
            self.report(
                "mpl.use-before-let",
                node,
                f"{name!r} is read before its 'let' runs",
            )
            scope.mark_read(name)
            return
        self.report(
            "mpl.undefined-name",
            node,
            f"unknown name {name!r} in method body",
        )

    def lint_func_call(self, node: ast.FuncCall, scope: "_MethodScope") -> None:
        for argument in node.args:
            self.lint_expr(argument, scope)
        if isinstance(node.func, ast.Name) and node.func.ident in BUILTINS:
            return
        self.report(
            "mpl.invalid-construct",
            node,
            "only builtin functions can be called directly in methods",
            hint="use self.x(...) or target.x(...) for method invocation",
        )

    def lint_method_call(self, node: ast.MethodCall, scope: "_MethodScope") -> None:
        for argument in node.args:
            self.lint_expr(argument, scope)
        if not isinstance(node.target, ast.SelfRef):
            self.lint_expr(node.target, scope)
            return
        self.lint_self_call(node, scope.context)

    # -- self.<op>(...) analysis ------------------------------------------------

    def lint_self_call(self, node: ast.MethodCall, context: _ObjectContext) -> None:
        name = node.name
        if name in SELFVIEW_API:
            self.check_arity(node, _FACADE_ARITY[name], f"self.{name}")
            self.check_item_reference(node, context)
            return
        if name in context.methods:
            declared = len(context.methods[name].params)
            self.check_arity(node, (declared, declared), f"self.{name}")
            return
        if name in _META_ARITY:
            self.check_arity(node, _META_ARITY[name], f"self.{name}")
            self.check_item_reference(node, context)
            return
        if name in context.dynamic_methods:
            return
        self.report(
            "mpl.unknown-method",
            node,
            f"object {context.decl.name!r} has no method {name!r}",
            hint="declare it, or add it at run time before calling",
        )

    def check_arity(
        self, node: ast.MethodCall, bounds: tuple[int, int | None], label: str
    ) -> None:
        low, high = bounds
        count = len(node.args)
        if node.name == "call" and node.args:
            # self.call("m", ...) — re-dispatch the check onto method "m"
            return
        if count < low or (high is not None and count > high):
            wanted = (
                str(low) if high == low
                else f"{low}..{'*' if high is None else high}"
            )
            self.report(
                "mpl.arity-mismatch",
                node,
                f"{label} expects {wanted} argument(s), got {count}",
            )

    def check_item_reference(
        self, node: ast.MethodCall, context: _ObjectContext
    ) -> None:
        """Literal first arguments name items — resolve them statically."""
        if not (
            node.args
            and isinstance(node.args[0], ast.Literal)
            and isinstance(node.args[0].value, str)
        ):
            return
        name = node.args[0].value
        op = node.name
        if op == "call":
            self._lint_indirect_call(node, name, context)
            return
        if op in _DATA_NAME_OPS:
            if name not in context.data and name not in context.dynamic_data:
                self.report(
                    "mpl.undeclared-item",
                    node,
                    f"object {context.decl.name!r} declares no data item "
                    f"{name!r}",
                )
            elif op in _DATA_DELETE_OPS and name in context.fixed_data:
                self.report(
                    "mpl.fixed-item-write",
                    node,
                    f"data item {name!r} is in the fixed section; it "
                    "cannot be deleted",
                )
        elif op in _DATA_ADD_OPS and name in context.fixed_data:
            self.report(
                "mpl.fixed-item-write",
                node,
                f"cannot add data item {name!r}: a fixed item with that "
                "name exists",
            )
        elif op in _METHOD_DELETE_OPS:
            if name in context.fixed_methods:
                self.report(
                    "mpl.fixed-item-write",
                    node,
                    f"method {name!r} is in the fixed section; it cannot "
                    "be deleted",
                )
        elif op in _METHOD_ADD_OPS and name in context.fixed_methods:
            self.report(
                "mpl.fixed-item-write",
                node,
                f"cannot add method {name!r}: a fixed method with that "
                "name exists",
            )

    def _lint_indirect_call(
        self, node: ast.MethodCall, target_name: str, context: _ObjectContext
    ) -> None:
        """self.call("m", args...) — the literal target resolves like self.m."""
        if target_name in context.methods:
            declared = len(context.methods[target_name].params)
            count = len(node.args) - 1
            if count != declared:
                self.report(
                    "mpl.arity-mismatch",
                    node,
                    f"self.call({target_name!r}, ...) passes {count} "
                    f"argument(s); method expects {declared}",
                )
            return
        if (
            target_name in _META_ARITY
            or target_name in context.dynamic_methods
        ):
            return
        self.report(
            "mpl.unknown-method",
            node,
            f"object {context.decl.name!r} has no method {target_name!r}",
        )

    # -- top-level script code ----------------------------------------------

    def lint_toplevel(self, program: ast.Program, contexts: dict) -> None:
        scope = _ToplevelScope(program, self.allow_unknown_toplevel)
        for statement in program.statements:
            self.lint_toplevel_stmt(statement, scope, contexts)

    def lint_toplevel_stmt(self, node, scope, contexts) -> None:
        if isinstance(node, ast.Let):
            self.lint_toplevel_expr(node.value, scope, contexts)
            scope.define(node.name)
            if (
                isinstance(node.value, ast.NewObject)
                and node.value.decl_name in contexts
            ):
                scope.types[node.name] = contexts[node.value.decl_name]
            return
        if isinstance(node, ast.Assign):
            self.lint_toplevel_expr(node.value, scope, contexts)
            scope.types.pop(node.name, None)
            if not scope.is_defined(node.name):
                if node.name in scope.all_lets:
                    self.report(
                        "mpl.use-before-let",
                        node,
                        f"{node.name!r} is assigned before its 'let' runs",
                    )
                else:
                    self.report(
                        "mpl.undefined-name",
                        node,
                        f"assignment to undeclared variable {node.name!r}",
                        hint="declare it with 'let'",
                    )
                scope.define(node.name)  # report once
            return
        if isinstance(node, ast.IndexAssign):
            for child in (node.target, node.index, node.value):
                self.lint_toplevel_expr(child, scope, contexts)
            return
        if isinstance(node, ast.Return):
            self.report(
                "mpl.toplevel-misuse", node, "'return' outside a method body"
            )
            return
        if isinstance(node, (ast.Print, ast.ExprStmt)):
            self.lint_toplevel_expr(node.value, scope, contexts)
            return
        if isinstance(node, ast.If):
            self.lint_toplevel_expr(node.condition, scope, contexts)
            for statement in list(node.then_body) + list(node.else_body):
                self.lint_toplevel_stmt(statement, scope, contexts)
            return
        if isinstance(node, ast.While):
            self.lint_toplevel_expr(node.condition, scope, contexts)
            for statement in node.body:
                self.lint_toplevel_stmt(statement, scope, contexts)
            return
        if isinstance(node, ast.ForEach):
            self.lint_toplevel_expr(node.iterable, scope, contexts)
            scope.define(node.name)
            for statement in node.body:
                self.lint_toplevel_stmt(statement, scope, contexts)
            return

    def lint_toplevel_expr(self, node, scope, contexts) -> None:
        if isinstance(node, ast.Name):
            if scope.is_defined(node.ident):
                return
            if node.ident in BUILTINS:
                return
            if scope.assume_bindings:
                scope.define(node.ident)  # a host-seeded binding
                return
            if node.ident in scope.all_lets:
                self.report(
                    "mpl.use-before-let",
                    node,
                    f"{node.ident!r} is read before its 'let' runs",
                )
            else:
                self.report(
                    "mpl.undefined-name",
                    node,
                    f"unknown name {node.ident!r}",
                )
            scope.define(node.ident)  # report once per name
            return
        if isinstance(node, ast.SelfRef):
            self.report(
                "mpl.toplevel-misuse",
                node,
                "'self' is only meaningful inside methods",
            )
            return
        if isinstance(node, ast.NewObject):
            if node.decl_name not in contexts:
                self.report(
                    "mpl.unknown-object",
                    node,
                    f"no object declaration {node.decl_name!r}",
                )
            return
        if isinstance(node, ast.MethodCall):
            for argument in node.args:
                self.lint_toplevel_expr(argument, scope, contexts)
            self.lint_toplevel_expr(node.target, scope, contexts)
            # dataflow: 'let v = new X' pins v's declaration, so v.m(...)
            # resolves against X's members
            if isinstance(node.target, ast.Name):
                context = scope.types.get(node.target.ident)
                if context is not None:
                    self.lint_known_target_call(node, context)
            return
        for child in _children(node):
            self.lint_toplevel_expr(child, scope, contexts)

    def lint_known_target_call(
        self, node: ast.MethodCall, context: _ObjectContext
    ) -> None:
        name = node.name
        if name in context.methods:
            declared = len(context.methods[name].params)
            if len(node.args) != declared:
                self.report(
                    "mpl.arity-mismatch",
                    node,
                    f"{context.decl.name}.{name} expects {declared} "
                    f"argument(s), got {len(node.args)}",
                )
            return
        if name in _META_ARITY:
            self.check_arity(node, _META_ARITY[name], name)
            return
        if name in context.dynamic_methods:
            return
        self.report(
            "mpl.unknown-method",
            node,
            f"object {context.decl.name!r} has no method {name!r}",
        )


def _iter_expr(expr):
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(_children(node))


class _MethodScope:
    """Sequential definite-assignment state for one method body."""

    def __init__(self, method: ast.MethodDecl, context: _ObjectContext):
        self.method = method
        self.context = context
        self.params = set(method.params)
        self.defined: set[str] = set()
        self.read: set[str] = set()
        self.bindings: dict[str, object] = {}
        self.allow_result = False
        self.all_lets = {
            node.name
            for node in _walk_method(method)
            if isinstance(node, (ast.Let, ast.ForEach))
        }

    def declare(self, name: str, node) -> None:
        self.defined.add(name)
        self.bindings.setdefault(name, node)

    def mark_read(self, name: str) -> None:
        self.read.add(name)

    def unread_bindings(self):
        for name, node in self.bindings.items():
            if name not in self.read:
                yield name, node

    def clause_view(self, with_result: bool) -> "_MethodScope":
        view = _MethodScope.__new__(_MethodScope)
        view.method = self.method
        view.context = self.context
        view.params = self.params
        view.defined = set()  # clauses cannot see body locals
        view.read = set()
        view.bindings = {}
        view.allow_result = with_result
        view.all_lets = set()
        return view


class _ToplevelScope:
    def __init__(self, program: ast.Program, assume_bindings: bool):
        self.variables: set[str] = set()
        self.assume_bindings = assume_bindings
        self.types: dict[str, _ObjectContext] = {}
        self.all_lets: set[str] = set()
        stack = list(program.statements)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Let, ast.ForEach)):
                self.all_lets.add(node.name)
            stack.extend(_children(node))

    def define(self, name: str) -> None:
        self.variables.add(name)

    def is_defined(self, name: str) -> bool:
        return name in self.variables
