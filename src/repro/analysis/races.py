"""Race detection over per-method effect sets (``race.*`` rules).

An MROM object is a shared mutable record: any client with a reference
can invoke any public method, and the ActiveObject wrapper, async RMI
futures and batched frames all make *concurrent* invocation the normal
case rather than the exception. The object model itself serializes
nothing — two invocations interleave at the granularity of individual
``get``/``set`` operations on extensible items.

This pass flags the interleavings that lose data. It is deliberately
method-pair coarse: a finding says "these two methods conflict on this
item", not "this schedule loses this value" — the happens-before
sanitizer (:mod:`.sanitizer`) provides the dynamic witness, and the
differential contract between the two is that every race the sanitizer
observes at run time maps back to a finding this pass produced.

All race findings are warnings: a conflict is a hazard, not a proof of
corruption (the deployment may serialize invocations externally). The
strict admission gate promotes them to vetoes.
"""

from __future__ import annotations

from typing import Mapping

from ..lang.effects import STRUCTURE_ITEM, MethodEffects, effects_of_object
from .diagnostics import Diagnostic, Severity

__all__ = ["RACE_RULES", "conflicts", "analyze_program", "effects_of_live_object"]

RACE_RULES = {
    "race.lost-update": (
        "a method reads and writes the same extensible item in one "
        "invocation; two concurrent invocations can interleave between "
        "the read and the write and lose an update"
    ),
    "race.write-write": (
        "two methods write the same extensible item with no ordering "
        "between concurrent invocations; the final value depends on the "
        "schedule"
    ),
    "race.read-write": (
        "a method reads an extensible item another method writes "
        "concurrently; the reader can observe and act on a stale value"
    ),
    "race.unsynced-structural": (
        "a method mutates the object's structure (add/delete of members) "
        "while concurrent invocations dispatch through cached Lookup/"
        "Match generation pins; the mutation races the pinned lookups"
    ),
}


def _finding(
    rule: str,
    message: str,
    source: str,
    span,
    subject: str,
    item: str,
    methods,
    hint: str = "",
) -> Diagnostic:
    line, column = span
    return Diagnostic(
        rule=rule,
        severity=Severity.WARNING,
        message=message,
        source=source,
        line=line,
        column=column,
        hint=hint,
        extra={"object": subject, "item": item, "methods": sorted(methods)},
    )


def conflicts(
    effects: Mapping[str, MethodEffects],
    source: str = "",
    subject: str = "<object>",
) -> list:
    """Run the pairwise conflict analysis over one object's effect sets.

    Deterministic output order: methods in sorted name order, items in
    sorted order within a method — the corpus exact-match tests and the
    baseline key format both rely on it.
    """
    out: list = []
    names = sorted(effects)

    # lost updates: read-modify-write inside a single method
    for name in names:
        eff = effects[name]
        for item in sorted(set(eff.reads) & set(eff.writes)):
            out.append(_finding(
                "race.lost-update",
                f"method '{name}' of {subject} reads and writes item "
                f"'{item}' in one invocation; concurrent invocations can "
                f"interleave and lose an update",
                source, eff.writes[item], subject, item, [name, name],
                hint="serialize invocations (ActiveObject) or fold the "
                     "update into a single set",
            ))

    # cross-method write/write and read/write conflicts
    for i, a in enumerate(names):
        ea = effects[a]
        for b in names[i + 1:]:
            eb = effects[b]
            for item in sorted(set(ea.writes) & set(eb.writes)):
                out.append(_finding(
                    "race.write-write",
                    f"methods '{a}' and '{b}' of {subject} both write item "
                    f"'{item}'; the final value depends on the schedule",
                    source, eb.writes[item], subject, item, [a, b],
                ))
            for reader, writer in ((ea, eb), (eb, ea)):
                for item in sorted(set(reader.reads) & set(writer.writes)):
                    if item in reader.writes and item in writer.writes:
                        continue  # already a write-write finding
                    out.append(_finding(
                        "race.read-write",
                        f"method '{reader.name}' of {subject} reads item "
                        f"'{item}' while '{writer.name}' can write it "
                        f"concurrently; a stale read can escape",
                        source, reader.reads[item], subject, item,
                        [reader.name, writer.name],
                    ))

    # structural mutation racing generation-pinned dispatch
    for name in names:
        eff = effects[name]
        if eff.structural:
            op, span = sorted(
                eff.structural.items(), key=lambda kv: (kv[1], kv[0])
            )[0]
            out.append(_finding(
                "race.unsynced-structural",
                f"method '{name}' of {subject} mutates the object's "
                f"structure ({op}); concurrent invocations running against "
                f"cached Lookup/Match pins race the mutation",
                source, span, subject, STRUCTURE_ITEM, [name, "*"],
                hint="quiesce invocations around structural evolution, or "
                     "route it through a meta-method the callers serialize on",
            ))
    return out


def analyze_program(program, label: str = "<mpl>") -> list:
    """Race findings for every object declared in one MPL program."""
    out: list = []
    for decl in program.objects:
        out.extend(conflicts(effects_of_object(decl), label, decl.name))
    return out


def effects_of_live_object(obj) -> dict:
    """Effect sets for a live object's portable public methods.

    Native-code methods are opaque (skipped — the admission pass already
    refuses them on their own rule); meta-section methods never race
    base-level items. Shared by the admission gate and the sanitizer's
    static-side oracle, so both compare against the same ground truth.
    """
    from ..core.items import MROMMethod
    from ..lang.effects import effects_of_portable

    effects: dict = {}
    for item, _category, _section in obj.containers.iter_with_sections():
        if not isinstance(item, MROMMethod) or item.metadata.get("meta"):
            continue
        carrier = item.body
        if getattr(carrier, "portable", False):
            effects[item.name] = effects_of_portable(
                carrier.source, item.name
            )
    return effects
