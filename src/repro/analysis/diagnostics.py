"""The shared diagnostic core of the static-analysis subsystem.

Every front end — the MPL linter, the sandbox verifier, the migration
admission analyzer — reports findings as :class:`Diagnostic` values: a
stable rule id, a severity, a source span, a human message and an
optional fix hint. One diagnostic type means one rendering pipeline
(:func:`render_text` / :func:`render_json`), one exit-code policy
(:func:`worst_severity`), and one structured refusal format for the
mobility admission gate.

This module deliberately imports nothing from the rest of the package so
any layer (core, lang, mobility, net) may depend on it without cycles.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = [
    "Severity",
    "Diagnostic",
    "render_text",
    "render_json",
    "worst_severity",
    "fails",
    "dedupe",
]


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (ERROR > WARNING)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    *rule* is a stable dotted identifier (``mpl.undefined-name``,
    ``sandbox.forbidden-name``, ``adm.native-code``); *source* names the
    artifact the span refers to (a file path, an embedded-program label,
    an object guid or an item name). ``line``/``column`` are 1-based;
    0 means "no precise location".
    """

    rule: str
    severity: Severity
    message: str
    source: str = ""
    line: int = 0
    column: int = 0
    hint: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def location(self) -> str:
        if self.line:
            place = f"{self.source or '<input>'}:{self.line}"
            return f"{place}:{self.column}" if self.column else place
        return self.source or "<input>"

    def format(self) -> str:
        text = f"{self.location}: {self.severity.label}[{self.rule}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_mapping(self) -> dict:
        payload = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "source": self.source,
            "line": self.line,
            "column": self.column,
        }
        if self.hint:
            payload["hint"] = self.hint
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload


def _ordered(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    return sorted(
        diagnostics,
        key=lambda d: (d.source, d.line, d.column, d.rule),
    )


def render_text(diagnostics: list[Diagnostic]) -> list[str]:
    """Human-facing report, one line per diagnostic plus a summary."""
    lines = [diagnostic.format() for diagnostic in _ordered(diagnostics)]
    errors = sum(1 for d in diagnostics if d.severity >= Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity == Severity.WARNING)
    if diagnostics:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    return lines


def render_json(diagnostics: list[Diagnostic]) -> str:
    """Machine-facing report: a single JSON document."""
    return json.dumps(
        {
            "diagnostics": [d.to_mapping() for d in _ordered(diagnostics)],
            "summary": {
                "errors": sum(
                    1 for d in diagnostics if d.severity >= Severity.ERROR
                ),
                "warnings": sum(
                    1 for d in diagnostics if d.severity == Severity.WARNING
                ),
                "total": len(diagnostics),
            },
        },
        indent=2,
        sort_keys=True,
    )


def dedupe(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Collapse findings that agree on (rule, source, line).

    Different front ends can report the same defect — a path listed
    twice, an object both linted from source and analyzed live — and a
    reader should see it once. The first occurrence wins (front ends run
    in pipeline order, so the first carries the earliest context); column
    and message wording are deliberately not part of the key, since two
    passes rarely phrase one defect identically.
    """
    seen: set = set()
    out: list[Diagnostic] = []
    for diagnostic in diagnostics:
        key = (diagnostic.rule, diagnostic.source, diagnostic.line)
        if key in seen:
            continue
        seen.add(key)
        out.append(diagnostic)
    return out


def worst_severity(diagnostics: list[Diagnostic]) -> Severity | None:
    """The highest severity present, or None for a clean report."""
    return max((d.severity for d in diagnostics), default=None)


def fails(diagnostics: list[Diagnostic], strict: bool = False) -> bool:
    """Exit-code policy: errors always fail; warnings fail under strict."""
    threshold = Severity.WARNING if strict else Severity.ERROR
    return any(d.severity >= threshold for d in diagnostics)
