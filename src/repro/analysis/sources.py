"""Discovery of lintable MPL program units in files and trees.

MPL programs live in two habitats: standalone ``.mpl`` files, and string
constants embedded in Python hosts (the idiom throughout ``examples/``
and ``repro.apps`` — an agent's source shipped as a module-level
constant). :func:`iter_units` finds both, so ``repro lint <path>`` works
on either a file or a whole tree.

Telling an embedded MPL program apart from any other string uses the
languages themselves: a candidate counts as MPL iff it **parses as MPL
and does not compile as Python**. The compiled "portable dialect" that
method bodies are lowered to is valid Python, so it is never re-linted;
``let``/``object`` source is not valid Python, so it always is.

Embedded units are linted with ``allow_unknown_toplevel`` — their
top-level free names are bindings the host seeds at ``Interpreter.run``
time — and their diagnostics are shifted by the string's position so
they point into the real host file.
"""

from __future__ import annotations

import ast as python_ast
import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..core.errors import MPLSyntaxError
from ..lang.parser import parse
from .diagnostics import Diagnostic
from .mpl_lint import lint_source

__all__ = ["LintUnit", "iter_units", "lint_unit", "lint_paths"]


@dataclass(frozen=True)
class LintUnit:
    """One MPL program to lint, with provenance.

    *line_offset* maps the unit's line 1 onto ``line_offset + 1`` of the
    containing file (0 for standalone files).
    """

    label: str
    source: str
    line_offset: int = 0
    embedded: bool = False


def _looks_like_mpl(text: str) -> bool:
    """True iff *text* parses as MPL but not as Python (see module doc)."""
    if "\n" not in text.strip():
        return False  # one-liners are never whole programs here
    try:
        program = parse(text)
    except MPLSyntaxError:
        return False
    if not program.objects and not program.statements:
        return False
    # The portable dialect is, by definition, a Python *function body*
    # (it may use bare 'return'), so that is the compile target to test
    # against — a module-level compile would misclassify bodies with
    # top-level returns as MPL.
    indented = "\n".join("    " + line for line in text.splitlines())
    try:
        compile(f"def probe():\n{indented}\n", "<candidate>", "exec")
    except (SyntaxError, ValueError):
        return True
    return False


def _embedded_units(path: Path, text: str) -> Iterator[LintUnit]:
    try:
        module = python_ast.parse(text)
    except SyntaxError:
        return
    skip: set[int] = set()  # f-string fragments are never whole programs
    for node in python_ast.walk(module):
        if isinstance(node, python_ast.JoinedStr):
            for part in python_ast.walk(node):
                skip.add(id(part))
    named: dict[int, str] = {}
    for node in python_ast.walk(module):
        if isinstance(node, python_ast.Assign) and isinstance(
            node.value, python_ast.Constant
        ):
            for target in node.targets:
                if isinstance(target, python_ast.Name):
                    named[id(node.value)] = target.id
    for node in python_ast.walk(module):
        if (
            not isinstance(node, python_ast.Constant)
            or not isinstance(node.value, str)
            or id(node) in skip
        ):
            continue
        if not _looks_like_mpl(node.value):
            continue
        name = named.get(id(node), f"L{node.lineno}")
        yield LintUnit(
            label=f"{path}#{name}",
            source=node.value,
            # a triple-quoted constant opening on line N usually starts its
            # content with a newline, so unit line k is file line N + k - 1
            line_offset=node.lineno - 1,
            embedded=True,
        )


def iter_units(paths: Iterable[str | Path]) -> Iterator[LintUnit]:
    """Every lintable MPL unit under *paths* (files or directories)."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files = sorted(
                candidate
                for pattern in ("*.mpl", "*.py")
                for candidate in entry.rglob(pattern)
            )
        else:
            files = [entry]
        for file in files:
            if file.suffix == ".mpl":
                yield LintUnit(label=str(file), source=file.read_text())
            elif file.suffix == ".py":
                yield from _embedded_units(file, file.read_text())
            else:
                # an explicit non-.py path is taken to be MPL text
                yield LintUnit(label=str(file), source=file.read_text())


def lint_unit(unit: LintUnit) -> list[Diagnostic]:
    """Lint one unit, re-anchoring diagnostics into the containing file."""
    findings = lint_source(
        unit.source,
        path=unit.label,
        allow_unknown_toplevel=unit.embedded,
    )
    if not unit.line_offset:
        return findings
    return [
        dataclasses.replace(
            finding,
            line=finding.line + unit.line_offset if finding.line else 0,
        )
        for finding in findings
    ]


def lint_paths(paths: Iterable[str | Path]) -> list[Diagnostic]:
    """Lint every unit under *paths*; the one-call form the CLI uses."""
    findings: list[Diagnostic] = []
    for unit in iter_units(paths):
        findings.extend(lint_unit(unit))
    return findings
