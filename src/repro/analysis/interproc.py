"""The whole-system analysis driver behind ``repro analyze``.

``repro lint`` checks each MPL program in isolation; this driver runs
the *interprocedural* passes over everything reachable from the given
paths:

* every MPL unit (standalone ``.mpl`` files and programs embedded in
  python hosts, discovered by the same walker the linter uses) goes
  through the race pass and the self-recursion pass, with embedded
  findings re-anchored into the containing file;
* every host ``.py`` file goes through the cross-site wait-for cycle
  pass and the migration-safety dataflow.

Units that fail to parse are skipped silently — ``repro lint`` owns
syntax reporting, and double-reporting a parse error from two commands
would defeat the dedupe satellite this driver honors on its way out.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable

from ..core.errors import MPLSyntaxError
from . import deadlock, migration_safety, races
from .diagnostics import Diagnostic, dedupe
from .sources import iter_units

__all__ = ["analyze_paths"]


def _shift(findings: list, offset: int) -> list:
    if not offset:
        return findings
    return [
        dataclasses.replace(f, line=f.line + offset if f.line else 0)
        for f in findings
    ]


def _host_files(paths: Iterable[str | Path]) -> list:
    files: list = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            files.append(entry)
    return files


def analyze_paths(
    paths: Iterable[str | Path],
    *,
    check_races: bool = True,
    check_deadlocks: bool = True,
    check_migration: bool = True,
) -> list:
    """Run the selected interprocedural passes over *paths*."""
    from ..lang.parser import parse

    findings: list[Diagnostic] = []
    if check_races or check_deadlocks:
        for unit in iter_units(paths):
            try:
                program = parse(unit.source)
            except MPLSyntaxError:
                continue  # `repro lint` owns syntax reporting
            unit_findings: list = []
            if check_races:
                unit_findings.extend(
                    races.analyze_program(program, unit.label)
                )
            if check_deadlocks:
                unit_findings.extend(
                    deadlock.analyze_program(program, unit.label)
                )
            findings.extend(_shift(unit_findings, unit.line_offset))
    if check_deadlocks or check_migration:
        for file in _host_files(paths):
            try:
                text = file.read_text()
            except OSError:
                continue
            if check_deadlocks:
                findings.extend(
                    deadlock.analyze_host_source(text, str(file))
                )
            if check_migration:
                findings.extend(
                    migration_safety.analyze_host_source(text, str(file))
                )
    return dedupe(findings)
