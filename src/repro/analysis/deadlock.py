"""Wait-for cycle detection across sites and objects (``cycle.*`` rules).

The kernel's sync RMI pump nests: a handler that issues its own
``request`` parks its site's serving slot until the inner reply lands.
Two sites whose handlers call back into each other can therefore form a
wait-for cycle with no lock anywhere in sight — and when both sites also
carry finite admission windows (``inflight_limit``), the cycle is worse
than slow: each site's window can fill with requests parked on the
other, after which *nothing* drains and the shed path is the only exit.
That is why :data:`CYCLE_RULES` grades a plain await cycle as a warning
but an admission-window cycle as an error.

Detection is incremental over the host scan's edges in program order:
each sync edge is added to the wait-for graph and a cycle is reported at
the edge that *closes* it — the line a reader would point at when asked
"where did this become circular?". Async edges do not park a slot and do
not join the graph; migration handoffs block the sender and do.

The MPL-level pass reports unbounded self-recursion through the
``self.call`` dispatch chain — the single-object analogue of the site
cycle, and the shape the admission gate re-tags as ``adm.cycle.*``.
"""

from __future__ import annotations

from typing import Mapping

from ..lang.effects import MethodEffects, effects_of_object
from .callgraph import scan_host
from .diagnostics import Diagnostic, Severity

__all__ = [
    "CYCLE_RULES",
    "analyze_program",
    "analyze_host_source",
    "recursion_findings",
]

CYCLE_RULES = {
    "cycle.await": (
        "sync RMI wait-for edges between sites form a cycle; nested "
        "request pumps can park every participant on the others"
    ),
    "cycle.admission": (
        "a wait-for cycle runs entirely through sites with finite "
        "admission windows; the windows can mutually exhaust and the "
        "cycle hard-deadlocks into the shed path"
    ),
    "cycle.recursion": (
        "a method's self-call chain reaches itself; every invocation "
        "recurses without a terminating dispatch"
    ),
}


# ---------------------------------------------------------------------------
# MPL: self-call recursion
# ---------------------------------------------------------------------------


def recursion_findings(
    effects: Mapping[str, MethodEffects],
    source: str = "",
    subject: str = "<object>",
) -> list:
    """Self-call cycles within one object's method table.

    One finding per distinct cycle (as a set of methods), anchored at
    the call edge of the first participating method in name order.
    """
    graph = {
        name: sorted(eff.self_calls) for name, eff in effects.items()
    }
    seen_cycles: set = set()
    out: list = []

    def find_cycle(start: str) -> list | None:
        stack = [(start, [start])]
        visited = set()
        while stack:
            node, path = stack.pop()
            for callee in graph.get(node, ()):
                if callee == start:
                    return path
                if callee in visited or callee not in graph:
                    continue
                visited.add(callee)
                stack.append((callee, path + [callee]))
        return None

    for name in sorted(graph):
        cycle = find_cycle(name)
        if cycle is None:
            continue
        key = frozenset(cycle)
        if key in seen_cycles:
            continue
        seen_cycles.add(key)
        first_hop = cycle[1] if len(cycle) > 1 else name
        line, column = effects[name].self_calls.get(
            first_hop, effects[name].self_calls.get(name, (0, 0))
        )
        ring = " -> ".join(cycle + [name])
        out.append(Diagnostic(
            rule="cycle.recursion",
            severity=Severity.WARNING,
            message=(
                f"method '{name}' of {subject} reaches itself through its "
                f"self-call chain ({ring}); every invocation recurses"
            ),
            source=source,
            line=line,
            column=column,
            hint="guard the recursive dispatch with a terminating branch "
                 "the analysis can see, or break the cycle",
            extra={"object": subject, "methods": sorted(key)},
        ))
    return out


def analyze_program(program, label: str = "<mpl>") -> list:
    """Recursion findings for every object declared in one MPL program."""
    out: list = []
    for decl in program.objects:
        out.extend(
            recursion_findings(effects_of_object(decl), label, decl.name)
        )
    return out


# ---------------------------------------------------------------------------
# host scenarios: cross-site wait-for cycles
# ---------------------------------------------------------------------------

#: edge kinds that park the caller until the callee replies
_WAITING_KINDS = frozenset({"rmi", "migrate"})


def analyze_host_source(source: str, label: str = "<host>") -> list:
    """Wait-for cycle findings for one host scenario file."""
    scan = scan_host(source, label)
    waits: dict = {}  # src site node -> set of dst site nodes
    reported: set = set()
    out: list = []

    def path_between(start: str, goal: str) -> list | None:
        stack = [(start, [start])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            for succ in sorted(waits.get(node, ())):
                if succ == goal:
                    return path + [succ]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    for edge in scan.graph.edges:
        if edge.kind not in _WAITING_KINDS:
            continue
        back_path = path_between(edge.dst, edge.src)
        waits.setdefault(edge.src, set()).add(edge.dst)
        if back_path is None and edge.src != edge.dst:
            continue
        # the edge closes a cycle: src -> dst -> ... -> src
        ring = [edge.src] + (back_path if back_path else [edge.dst])
        sites = tuple(sorted({n.split(":", 1)[1] for n in ring}))
        if sites in reported:
            continue
        reported.add(sites)
        pretty = " -> ".join(n.split(":", 1)[1] for n in ring)
        out.append(Diagnostic(
            rule="cycle.await",
            severity=Severity.WARNING,
            message=(
                f"sync RMI edges form a wait-for cycle ({pretty}); nested "
                f"request pumps can park every site on the others"
            ),
            source=label,
            line=edge.line,
            column=edge.column,
            hint="break the cycle with an async verb or route one leg "
                 "through a reply instead of a nested request",
            extra={"sites": list(sites)},
        ))
        if all(site in scan.windows for site in sites):
            limits = {site: scan.windows[site] for site in sites}
            out.append(Diagnostic(
                rule="cycle.admission",
                severity=Severity.ERROR,
                message=(
                    f"the wait-for cycle ({pretty}) runs entirely through "
                    f"sites with finite admission windows "
                    f"({', '.join(f'{s}={limits[s]}' for s in sites)}); "
                    f"the windows can mutually exhaust and hard-deadlock"
                ),
                source=label,
                line=edge.line,
                column=edge.column,
                hint="raise one window, or make one leg async so a parked "
                     "slot cannot hold the only capacity",
                extra={"sites": list(sites)},
            ))
    return out
