"""Pre-flight static analysis: MPL lint and migration admission checks.

Two front ends over one diagnostic core:

* :mod:`repro.analysis.mpl_lint` — language-level lint passes over MPL
  programs (:func:`lint_source`, the :data:`RULES` registry);
* :mod:`repro.analysis.admission` — self-containment/ACL/tower analysis
  of migrating objects (:func:`analyze_object`, :func:`analyze_package`,
  the :func:`admission_policy` PREPARE gate);

plus the interprocedural layer (``repro analyze``): per-method effect
sets feeding :mod:`.races` (``race.*``), wait-for cycle detection in
:mod:`.deadlock` (``cycle.*``), the migration-safety dataflow in
:mod:`.migration_safety` (``migration.*``), the :mod:`.callgraph`
builders they share, the :mod:`.baseline` suppression format, and the
runtime happens-before :mod:`.sanitizer` that differentially validates
the race verdicts during chaos/soak runs.

All of it reports :class:`~repro.analysis.diagnostics.Diagnostic`
findings rendered by :func:`render_text` / :func:`render_json`.

Attribute access is lazy (PEP 562): :mod:`repro.mobility.sandbox`
imports the diagnostics core from this package while the admission
analyzer imports the mobility layer, so eager re-exports here would be a
cycle. Only ``diagnostics`` is imported at package-import time.
"""

from __future__ import annotations

from .diagnostics import (  # noqa: F401  (the cycle-free core)
    Diagnostic,
    Severity,
    dedupe,
    fails,
    render_json,
    render_text,
    worst_severity,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "dedupe",
    "fails",
    "render_json",
    "render_text",
    "worst_severity",
    "RULES",
    "lint_source",
    "lint_program",
    "LintUnit",
    "iter_units",
    "lint_unit",
    "lint_paths",
    "ADMISSION_RULES",
    "AdmissionRefusal",
    "analyze_object",
    "analyze_package",
    "admission_policy",
    "RACE_RULES",
    "CYCLE_RULES",
    "MIGRATION_RULES",
    "analyze_paths",
    "Sanitizer",
    "load_baseline",
    "write_baseline",
    "suppress",
    "all_rule_ids",
]

_LAZY = {
    "RULES": "mpl_lint",
    "lint_source": "mpl_lint",
    "lint_program": "mpl_lint",
    "LintUnit": "sources",
    "iter_units": "sources",
    "lint_unit": "sources",
    "lint_paths": "sources",
    "ADMISSION_RULES": "admission",
    "AdmissionRefusal": "admission",
    "analyze_object": "admission",
    "analyze_package": "admission",
    "admission_policy": "admission",
    "RACE_RULES": "races",
    "CYCLE_RULES": "deadlock",
    "MIGRATION_RULES": "migration_safety",
    "analyze_paths": "interproc",
    "Sanitizer": "sanitizer",
    "load_baseline": "baseline",
    "write_baseline": "baseline",
    "suppress": "baseline",
}


def __getattr__(name: str):
    if name == "all_rule_ids":
        return all_rule_ids
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for the next access
    return value


def all_rule_ids() -> dict[str, str]:
    """Every rule id the subsystem can emit, with its description.

    Unions the MPL lint registry, the sandbox verifier, the admission
    registry and the interprocedural pass registries (races, cycles,
    migration safety) — the docs test keys off this so no rule ships
    undocumented.
    """
    from ..mobility.sandbox import SANDBOX_RULES
    from .admission import ADMISSION_RULES
    from .deadlock import CYCLE_RULES
    from .migration_safety import MIGRATION_RULES
    from .mpl_lint import RULES
    from .races import RACE_RULES

    combined: dict[str, str] = {}
    combined.update(RULES)
    combined.update(SANDBOX_RULES)
    combined.update(ADMISSION_RULES)
    combined.update(RACE_RULES)
    combined.update(CYCLE_RULES)
    combined.update(MIGRATION_RULES)
    return combined
