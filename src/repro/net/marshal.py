"""The wire format: a self-contained tagged binary marshal.

The paper's HADAS used Java serialization; a self-contained object model
deserves a self-contained wire format, so this module implements one from
scratch rather than borrowing :mod:`pickle` (whose by-reference class
semantics would smuggle *non*-self-contained state across sites, and
whose decoder executes arbitrary constructors — exactly what a host
receiving a hostile mobile object must never do).

Encoding: one tag byte per value, followed by a payload.

=====  ==========  =============================================
tag    kind        payload
=====  ==========  =============================================
``N``  null        —
``T``  true        —
``F``  false       —
``I``  integer     varint (zig-zag signed)
``R``  real        8-byte IEEE-754 big-endian
``S``  text        varint length + UTF-8 bytes
``H``  html        varint length + UTF-8 bytes
``B``  binary      varint length + raw bytes
``L``  list        varint count + elements
``M``  mapping     varint count + key/value pairs
``G``  reference   varint length + guid text (UTF-8)
=====  ==========  =============================================

A complete message is ``MRM1`` + one value. Decoding is strict: unknown
tags, truncated payloads and trailing garbage all raise
:class:`~repro.core.errors.MarshalError` — a hostile peer cannot make the
decoder misbehave, only fail.
"""

from __future__ import annotations

import struct
import threading
from typing import Any, Iterator, Mapping, Sequence

from ..core.errors import MarshalError
from ..core.values import HtmlText, LazyCell

__all__ = [
    "marshal",
    "marshal_frame",
    "MarshalFrame",
    "unmarshal",
    "unmarshal_lazy",
    "materialize_deep",
    "LazyValue",
    "LazyList",
    "LazyMapping",
    "marshalled_size",
    "Reference",
    "MAGIC",
    "TRACE_FIELD",
    "attach_trace",
    "extract_trace",
]

MAGIC = b"MRM1"

#: Envelope key a request's telemetry trace context travels under. The
#: leading ``~`` keeps it out of the application namespace (protocol
#: payload fields are plain identifiers); handlers that enumerate known
#: keys simply never look at it. The value is the plain string mapping
#: of :meth:`repro.telemetry.context.TraceContext.to_wire`, so it rides
#: the tagged marshal like any other payload data.
TRACE_FIELD = "~trace"


def attach_trace(payload: Any, wire_context: dict) -> Any:
    """A copy of *payload* carrying *wire_context* (mappings only —
    non-mapping payloads have nowhere to put an envelope field)."""
    if not isinstance(payload, dict):
        return payload
    stamped = dict(payload)
    stamped[TRACE_FIELD] = wire_context
    return stamped


def extract_trace(payload: Any) -> Any:
    """The wire trace context of *payload*, or None."""
    if isinstance(payload, dict):
        return payload.get(TRACE_FIELD)
    return None

_TAG_NULL = ord("N")
_TAG_TRUE = ord("T")
_TAG_FALSE = ord("F")
_TAG_INT = ord("I")
_TAG_REAL = ord("R")
_TAG_TEXT = ord("S")
_TAG_HTML = ord("H")
_TAG_BINARY = ord("B")
_TAG_LIST = ord("L")
_TAG_MAPPING = ord("M")
_TAG_REFERENCE = ord("G")

#: Safety bound: a single collection may not claim more elements than
#: this, so a forged length prefix cannot make the decoder allocate
#: unbounded memory before the "truncated payload" check trips.
MAX_COLLECTION = 1_000_000


# ---------------------------------------------------------------------------
# encode/decode fast-paths
#
# None of these change a single wire byte — they trade memory for the
# allocations that dominate marshalling cost on hot RMI paths:
#
# * a small pool of output buffers, so marshal() stops allocating (and
#   growing) a fresh bytearray per message — list pop/append are atomic,
#   so the pool is safe under the threaded TCP gateway;
# * precomputed encodings for small integers (args, counts, lamport
#   clocks are overwhelmingly small);
# * an interning table for short strings and references (method names,
#   payload keys and GUIDs recur endlessly), bounded and dropped
#   wholesale on overflow so a hostile peer cannot grow it unboundedly;
# * decode-side interning of short text payloads keyed by the raw bytes,
#   so the same method name decoded a thousand times is one str object.
# ---------------------------------------------------------------------------

#: pooled buffers as (weight, buffer) pairs — the weight is the frame
#: size the buffer last held, a proxy for the capacity it may still pin
_BUFFER_POOL: list[tuple[int, bytearray]] = []
_BUFFER_POOL_CAP = 8
#: buffers that grew beyond this are not pooled (one giant migration
#: package must not pin its footprint forever)
_BUFFER_RETAIN = 1 << 16
#: total weight the pool may retain across all buffers — the count cap
#: alone would let eight maximum-size frames pin 8x64KiB indefinitely
_BUFFER_POOL_BYTES = 1 << 18

#: serializes the (rare) eviction pass; pop/append stay lockless
_POOL_LOCK = threading.Lock()


def _release_buffer(buf: bytearray) -> None:
    """Return a checked-out buffer to the pool, keeping the pool bounded.

    Oversized frames are never retained; within the size bound, the pool
    is held to both a buffer count and a total retained weight, evicting
    the *largest* buffers first — small hot-path frames are the ones
    worth keeping, and one burst of irregular large frames must not
    displace them or pin their capacity.
    """
    weight = len(buf)
    if weight > _BUFFER_RETAIN:
        return
    buf.clear()
    pool = _BUFFER_POOL
    pool.append((weight, buf))  # atomic: safe under gateway threads
    if len(pool) > _BUFFER_POOL_CAP or sum(w for w, _ in pool) > _BUFFER_POOL_BYTES:
        with _POOL_LOCK:
            try:
                while pool and (
                    len(pool) > _BUFFER_POOL_CAP
                    or sum(w for w, _ in pool) > _BUFFER_POOL_BYTES
                ):
                    largest = max(range(len(pool)), key=lambda i: pool[i][0])
                    pool.pop(largest)
            except (IndexError, ValueError):  # pragma: no cover - races
                pass  # a concurrent pop shrank the pool under us: bounded anyway


def _checkout_buffer() -> bytearray:
    try:
        return _BUFFER_POOL.pop()[1]  # atomic: safe under gateway threads
    except IndexError:
        return bytearray()


def _pool_snapshot() -> tuple[int, int]:
    """(buffer count, total retained weight) — for the regression tests."""
    entries = list(_BUFFER_POOL)
    return len(entries), sum(weight for weight, _ in entries)

_INTERN_MAX_CHARS = 64
_INTERN_CAP = 4096


def _encode_int(value: int) -> bytes:
    out = bytearray((_TAG_INT,))
    _write_varint(out, _zigzag(value))
    return bytes(out)


_SMALL_INTS: dict[int, bytes] = {}
_TEXT_INTERN: dict[str, bytes] = {}
_REF_INTERN: dict[tuple[str, str], bytes] = {}
_DECODE_INTERN: dict[bytes, str] = {}


def _reset_fastpath_state() -> None:
    """Drop all pooled buffers and interning tables (tests, tuning)."""
    _BUFFER_POOL.clear()
    _TEXT_INTERN.clear()
    _REF_INTERN.clear()
    _DECODE_INTERN.clear()
    _SMALL_INTS.clear()
    for n in range(-64, 257):
        _SMALL_INTS[n] = _encode_int(n)


class Reference:
    """A by-identity value on the wire: "this guid, at this site".

    Objects never marshal by value implicitly — that is what the explicit
    mobility package (:mod:`repro.mobility.package`) is for. When an MROM
    object (anything with a ``guid``) appears inside arguments or results,
    it travels as a :class:`Reference`, which the receiving site turns
    into a remote proxy.
    """

    __slots__ = ("guid", "site")

    def __init__(self, guid: str, site: str = ""):
        self.guid = guid
        self.site = site

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Reference)
            and other.guid == self.guid
            and other.site == self.site
        )

    def __hash__(self) -> int:
        return hash((self.guid, self.site))

    def __repr__(self) -> str:
        return f"Reference({self.guid!r}, site={self.site!r})"


# ---------------------------------------------------------------------------
# varint (unsigned LEB128) and zig-zag helpers
# ---------------------------------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise MarshalError(f"varint cannot encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise MarshalError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 1024:
            raise MarshalError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> (value.bit_length() + 1)) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


_reset_fastpath_state()  # populate the small-int table


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def _encode(out: bytearray, value: Any, depth: int) -> None:
    if depth > 64:
        raise MarshalError("value nesting exceeds 64 levels")
    if value is None:
        out.append(_TAG_NULL)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        cached = _SMALL_INTS.get(value)
        if cached is not None:
            out += cached
        else:
            out.append(_TAG_INT)
            _write_varint(out, _zigzag(value))
    elif isinstance(value, float):
        out.append(_TAG_REAL)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, HtmlText):
        raw = str(value).encode("utf-8")
        out.append(_TAG_HTML)
        _write_varint(out, len(raw))
        out.extend(raw)
    elif isinstance(value, str):
        if len(value) <= _INTERN_MAX_CHARS:
            cached = _TEXT_INTERN.get(value)
            if cached is None:
                raw = value.encode("utf-8")
                head = bytearray((_TAG_TEXT,))
                _write_varint(head, len(raw))
                cached = bytes(head) + raw
                if len(_TEXT_INTERN) >= _INTERN_CAP:
                    _TEXT_INTERN.clear()
                _TEXT_INTERN[value] = cached
            out += cached
        else:
            raw = value.encode("utf-8")
            out.append(_TAG_TEXT)
            _write_varint(out, len(raw))
            out.extend(raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_TAG_BINARY)
        _write_varint(out, len(raw))
        out.extend(raw)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        _write_varint(out, len(value))
        for element in value:
            _encode(out, element, depth + 1)
    elif isinstance(value, dict):
        out.append(_TAG_MAPPING)
        _write_varint(out, len(value))
        for key, val in value.items():
            _encode(out, key, depth + 1)
            _encode(out, val, depth + 1)
    elif isinstance(value, Reference):
        key = (value.guid, value.site)
        cached = _REF_INTERN.get(key)
        if cached is None:
            payload = f"{value.site}|{value.guid}".encode("utf-8")
            head = bytearray((_TAG_REFERENCE,))
            _write_varint(head, len(payload))
            cached = bytes(head) + payload
            if len(_REF_INTERN) >= _INTERN_CAP:
                _REF_INTERN.clear()
            _REF_INTERN[key] = cached
        out += cached
    elif hasattr(value, "guid"):
        # an object: by-identity, tagged with its home site if it has one
        site = getattr(value, "site_id", "") or getattr(value, "site", "")
        _encode(out, Reference(str(value.guid), str(site)), depth)
    else:
        raise MarshalError(
            f"value of type {type(value).__name__} has no wire representation"
        )


def marshal(value: Any) -> bytes:
    """Encode one weakly-typed value as a complete wire message."""
    out = _checkout_buffer()
    try:
        out += MAGIC
        _encode(out, value, 0)
        return bytes(out)
    finally:
        _release_buffer(out)


class MarshalFrame:
    """A complete wire message exposed as a memoryview over a pooled
    buffer — the zero-copy sibling of :func:`marshal`.

    ``frame.view`` is byte-identical to ``marshal(value)`` but involves
    no ``bytes`` copy; a consumer that can write a memoryview (socket
    ``sendall``, file ``write``) ships the pooled buffer directly.
    The buffer stays checked out of the pool until :meth:`release`
    (or context-manager exit) — releasing invalidates the view, so a
    consumer that needs the bytes past the frame's lifetime must
    :meth:`tobytes` first.
    """

    __slots__ = ("view", "_buf")

    def __init__(self, buf: bytearray):
        self._buf = buf
        self.view: memoryview = memoryview(buf)

    def __len__(self) -> int:
        return len(self._buf) if self._buf is not None else 0

    def tobytes(self) -> bytes:
        return bytes(self.view)

    def release(self) -> None:
        """Return the buffer to the pool (idempotent)."""
        buf, self._buf = self._buf, None
        if buf is None:
            return
        self.view.release()  # a live export would block the pool's clear()
        _release_buffer(buf)

    def __enter__(self) -> "MarshalFrame":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def marshal_frame(value: Any) -> MarshalFrame:
    """Encode *value* into a pooled buffer without the final copy."""
    out = _checkout_buffer()
    try:
        out += MAGIC
        _encode(out, value, 0)
    except BaseException:
        _release_buffer(out)
        raise
    return MarshalFrame(out)


def marshalled_size(value: Any) -> int:
    """Size in bytes of the wire form (the network cost model input)."""
    return len(marshal(value))


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


def _decode(data: bytes, offset: int, depth: int) -> tuple[Any, int]:
    if depth > 64:
        raise MarshalError("value nesting exceeds 64 levels")
    if offset >= len(data):
        raise MarshalError("truncated message")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        raw, offset = _read_varint(data, offset)
        return _unzigzag(raw), offset
    if tag == _TAG_REAL:
        if offset + 8 > len(data):
            raise MarshalError("truncated real")
        return struct.unpack(">d", data[offset:offset + 8])[0], offset + 8
    if tag in (_TAG_TEXT, _TAG_HTML, _TAG_BINARY, _TAG_REFERENCE):
        length, offset = _read_varint(data, offset)
        if offset + length > len(data):
            raise MarshalError("truncated payload")
        raw = data[offset:offset + length]
        offset += length
        if tag == _TAG_BINARY:
            return bytes(raw), offset
        if type(raw) is not bytes:  # memoryview input (zero-copy frames)
            raw = bytes(raw)
        if tag == _TAG_TEXT and length <= _INTERN_MAX_CHARS:
            interned = _DECODE_INTERN.get(raw)
            if interned is not None:
                return interned, offset
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MarshalError(f"invalid UTF-8 payload: {exc}") from exc
        if tag == _TAG_TEXT and length <= _INTERN_MAX_CHARS:
            if len(_DECODE_INTERN) >= _INTERN_CAP:
                _DECODE_INTERN.clear()
            _DECODE_INTERN[raw] = text
            return text, offset
        if tag == _TAG_HTML:
            return HtmlText(text), offset
        if tag == _TAG_REFERENCE:
            site, _sep, guid = text.partition("|")
            if not guid:
                raise MarshalError(f"malformed reference payload {text!r}")
            return Reference(guid, site), offset
        return text, offset
    if tag == _TAG_LIST:
        count, offset = _read_varint(data, offset)
        if count > MAX_COLLECTION:
            raise MarshalError(f"list length {count} exceeds limit")
        elements = []
        for _ in range(count):
            element, offset = _decode(data, offset, depth + 1)
            elements.append(element)
        return elements, offset
    if tag == _TAG_MAPPING:
        count, offset = _read_varint(data, offset)
        if count > MAX_COLLECTION:
            raise MarshalError(f"mapping length {count} exceeds limit")
        mapping = {}
        for _ in range(count):
            key, offset = _decode(data, offset, depth + 1)
            value, offset = _decode(data, offset, depth + 1)
            try:
                mapping[key] = value
            except TypeError as exc:
                raise MarshalError(f"unhashable mapping key {key!r}") from exc
        return mapping, offset
    raise MarshalError(f"unknown tag byte 0x{tag:02x}")


def unmarshal(message: bytes | bytearray | memoryview) -> Any:
    """Decode a complete wire message; strict about framing.

    Accepts a :class:`memoryview` (e.g. a :class:`MarshalFrame` view)
    as well as bytes, so zero-copy producers feed the decoder without
    an intermediate copy.
    """
    if bytes(message[: len(MAGIC)]) != MAGIC:
        raise MarshalError("bad magic: not an MRM1 message")
    value, offset = _decode(message, len(MAGIC), 0)
    if offset != len(message):
        raise MarshalError(f"{len(message) - offset} bytes of trailing garbage")
    return value


# ---------------------------------------------------------------------------
# lazy decoding: skip-scan framing, decode on first touch
# ---------------------------------------------------------------------------
#
# A migration package is a mapping of sections of items, and a receiving
# site typically touches a handful of them before the object's first
# call (or none: a checkpoint restore that is never read again). The
# lazy path decodes structure on demand: containers become LazyList/
# LazyMapping wrappers that know only the *offsets* of their children
# (computed by a skip-scan that validates framing without building
# objects), and an untouched item value stays a LazyValue slice of the
# original message until something reads it. Unmarshal cost then scales
# with the state actually touched, not the object's size — while the
# wire bytes, and the values eventually produced, are identical to the
# eager path.


def _skip(data, offset: int, depth: int) -> int:
    """Advance past one encoded value, validating bounds only."""
    if depth > 64:
        raise MarshalError("value nesting exceeds 64 levels")
    if offset >= len(data):
        raise MarshalError("truncated message")
    tag = data[offset]
    offset += 1
    if tag in (_TAG_NULL, _TAG_TRUE, _TAG_FALSE):
        return offset
    if tag == _TAG_INT:
        _, offset = _read_varint(data, offset)
        return offset
    if tag == _TAG_REAL:
        if offset + 8 > len(data):
            raise MarshalError("truncated real")
        return offset + 8
    if tag in (_TAG_TEXT, _TAG_HTML, _TAG_BINARY, _TAG_REFERENCE):
        length, offset = _read_varint(data, offset)
        if offset + length > len(data):
            raise MarshalError("truncated payload")
        return offset + length
    if tag == _TAG_LIST:
        count, offset = _read_varint(data, offset)
        if count > MAX_COLLECTION:
            raise MarshalError(f"list length {count} exceeds limit")
        for _ in range(count):
            offset = _skip(data, offset, depth + 1)
        return offset
    if tag == _TAG_MAPPING:
        count, offset = _read_varint(data, offset)
        if count > MAX_COLLECTION:
            raise MarshalError(f"mapping length {count} exceeds limit")
        for _ in range(count):
            offset = _skip(data, offset, depth + 1)
            offset = _skip(data, offset, depth + 1)
        return offset
    raise MarshalError(f"unknown tag byte 0x{tag:02x}")


class LazyValue(LazyCell):
    """One deferred value: a (message, offset) slice decoded on demand."""

    __slots__ = ("_data", "_offset", "_value", "_materialized")

    def __init__(self, data: bytes, offset: int):
        self._data = data
        self._offset = offset
        self._value: Any = None
        self._materialized = False

    def materialize(self) -> Any:
        if not self._materialized:
            self._value, _ = _decode(self._data, self._offset, 0)
            self._materialized = True
            self._data = b""  # drop the message reference once decoded
        return self._value

    def __repr__(self) -> str:
        if self._materialized:
            return f"LazyValue({self._value!r})"
        return f"LazyValue(<wire @{self._offset}>)"


def _lazy_view(data: bytes, offset: int) -> Any:
    """The value at *offset*: containers wrapped lazily, scalars decoded.

    Building a container view skip-scans exactly its own subtree (so a
    corrupt subtree raises here, not at first touch), recording where
    each element starts; elements decode only when accessed.
    """
    tag = data[offset] if offset < len(data) else None
    if tag == _TAG_LIST:
        count, cursor = _read_varint(data, offset + 1)
        if count > MAX_COLLECTION:
            raise MarshalError(f"list length {count} exceeds limit")
        offsets = []
        for _ in range(count):
            offsets.append(cursor)
            cursor = _skip(data, cursor, 1)
        return LazyList(data, offset, cursor, offsets)
    if tag == _TAG_MAPPING:
        count, cursor = _read_varint(data, offset + 1)
        if count > MAX_COLLECTION:
            raise MarshalError(f"mapping length {count} exceeds limit")
        slots: dict[Any, int] = {}
        for _ in range(count):
            key, cursor = _decode(data, cursor, 1)  # keys decode eagerly
            try:
                slots[key] = cursor  # duplicate keys: later wins, as eager
            except TypeError as exc:
                raise MarshalError(f"unhashable mapping key {key!r}") from exc
            cursor = _skip(data, cursor, 1)
        return LazyMapping(data, offset, cursor, slots)
    value, _ = _decode(data, offset, 0)
    return value


class LazyList(Sequence):
    """A wire list whose elements decode on first access."""

    __slots__ = ("_data", "_start", "_end", "_offsets", "_cache")

    def __init__(self, data: bytes, start: int, end: int, offsets: list[int]):
        self._data = data
        self._start = start
        self._end = end
        self._offsets = offsets
        self._cache: dict[int, Any] = {}

    def __len__(self) -> int:
        return len(self._offsets)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self._offsets)
        if index in self._cache:
            return self._cache[index]
        value = _lazy_view(self._data, self._offsets[index])
        self._cache[index] = value
        return value

    def __repr__(self) -> str:
        return f"LazyList({len(self._offsets)} elements)"


class LazyMapping(Mapping):
    """A wire mapping: keys eager (they index), values decode on touch.

    ``lazy(key)`` hands out the value as a :class:`LazyValue` cell
    without decoding it at all — the hook the mobility layer uses to
    keep untouched item values as undisturbed wire slices.
    """

    __slots__ = ("_data", "_start", "_end", "_slots", "_cache")

    def __init__(self, data: bytes, start: int, end: int, slots: dict[Any, int]):
        self._data = data
        self._start = start
        self._end = end
        self._slots = slots
        self._cache: dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator:
        return iter(self._slots)

    def __getitem__(self, key):
        if key in self._cache:
            return self._cache[key]
        value = _lazy_view(self._data, self._slots[key])
        self._cache[key] = value
        return value

    def __contains__(self, key) -> bool:
        # the Mapping default probes __getitem__, which would *decode*
        # the value — membership must stay a pure slot lookup
        return key in self._slots

    def lazy(self, key) -> LazyValue:
        """The value under *key* as an undecoded cell."""
        return LazyValue(self._data, self._slots[key])

    def __repr__(self) -> str:
        return f"LazyMapping({list(self._slots)!r})"


def unmarshal_lazy(message: bytes | bytearray | memoryview) -> Any:
    """Decode a wire message lazily: framing validated now (same bounds
    checks as the eager decoder, via the skip-scan), values on demand.

    The message is snapshotted to immutable bytes if it arrived as a
    mutable buffer — lazy slices must outlive any pooled buffer they
    were read from.
    """
    if not isinstance(message, bytes):
        message = bytes(message)
    if not message.startswith(MAGIC):
        raise MarshalError("bad magic: not an MRM1 message")
    start = len(MAGIC)
    if start >= len(message):
        raise MarshalError("truncated message")
    # one pass only: building a container view skip-validates its whole
    # subtree, so the top-level view's end doubles as the framing check
    if message[start] in (_TAG_LIST, _TAG_MAPPING):
        view = _lazy_view(message, start)
        end = view._end
    else:
        view, end = _decode(message, start, 0)
    if end != len(message):
        raise MarshalError(f"{len(message) - end} bytes of trailing garbage")
    return view


def materialize_deep(value: Any) -> Any:
    """Recursively force a (possibly lazy) decoded value to plain data."""
    if isinstance(value, LazyCell):
        return materialize_deep(value.materialize())
    if isinstance(value, (LazyMapping, LazyList)):
        # decode the whole subtree straight off the wire — one tight
        # eager pass instead of element-by-element lazy dispatch
        plain, _ = _decode(value._data, value._start, 0)
        return plain
    if isinstance(value, dict):
        return {key: materialize_deep(val) for key, val in value.items()}
    if isinstance(value, list):
        return [materialize_deep(element) for element in value]
    return value
