"""Message transport over the simulated internetwork.

The transport enforces *by-value* semantics: every payload is marshalled
to the wire format at send time and unmarshalled at delivery, so no
Python object identity ever crosses a site boundary — the same guarantee
real serialization gives, and the property that makes the mobility layer
honest (an object that "migrated" is a genuinely independent copy).

A :class:`Network` optionally carries a fault plane (see
:mod:`repro.faults`): when attached, every send is submitted to it for a
*verdict* — deliver, drop, duplicate, reorder, jitter — and the verdict
travels on the :class:`Message` so tests can assert exactly what the
wire did. Without a plane, behaviour is byte-identical to the unfaulted
transport.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Protocol, TYPE_CHECKING

from ..core.errors import NetworkError
from ..sim import Simulator
from ..telemetry import state as _telemetry
from .marshal import marshal, unmarshal
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plane import FaultPlane

__all__ = ["Message", "Network", "Endpoint"]


@dataclass(frozen=True)
class Message:
    """A delivered message (payload already decoded)."""

    kind: str
    src: str
    dst: str
    payload: Any
    msg_id: int
    reply_to: int | None
    lamport: int
    size: int  # wire size in bytes, for accounting
    request_id: str = ""  # stable across retries of one logical request
    verdict: str = "ok"  # what the fault plane did to this message


class Endpoint(Protocol):
    """What the network delivers to: any site-like object."""

    site_id: str

    def receive(self, message: Message) -> None: ...

    def witness_lamport(self, remote: int) -> None: ...


class Network:
    """Topology + simulator + registered endpoints.

    >>> from repro.sim import Simulator
    >>> network = Network(Simulator())
    >>> network.topology.add_node("haifa")
    """

    def __init__(self, simulator: Simulator | None = None):
        self.simulator = simulator if simulator is not None else Simulator()
        self.topology = Topology()
        self._endpoints: dict[str, Endpoint] = {}
        self._msg_ids = itertools.count(1)
        self._incarnations = itertools.count(1)
        self.fault_plane: "FaultPlane | None" = None
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.bytes_dropped = 0
        self.messages_duplicated = 0
        self.messages_undeliverable = 0

    # -- endpoints -----------------------------------------------------------

    def register(self, endpoint: Endpoint) -> int:
        """Attach a site; returns its *incarnation* number.

        Incarnations increase monotonically across the whole network
        lifetime, so a site that crashes and re-registers under the same
        id can mint request identifiers that never collide with those of
        its previous life.
        """
        site_id = endpoint.site_id
        if site_id in self._endpoints:
            raise NetworkError(f"site {site_id!r} is already registered")
        if not self.topology.has_node(site_id):
            self.topology.add_node(site_id)
        self._endpoints[site_id] = endpoint
        return next(self._incarnations)

    def endpoint(self, site_id: str) -> Endpoint:
        try:
            return self._endpoints[site_id]
        except KeyError:
            raise NetworkError(f"unknown site {site_id!r}") from None

    def unregister(self, site_id: str) -> Endpoint:
        """Detach a site (crash/shutdown). Topology and links remain — a
        replacement endpoint with the same id may register later (the
        restart scenario); messages sent meanwhile fail at send time, and
        in-flight deliveries that land during the outage are dropped."""
        try:
            return self._endpoints.pop(site_id)
        except KeyError:
            raise NetworkError(f"unknown site {site_id!r}") from None

    def is_live(self, site_id: str) -> bool:
        return site_id in self._endpoints

    def sites(self) -> tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    # -- sending --------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: Any,
        reply_to: int | None = None,
        lamport: int = 0,
        request_id: str = "",
    ) -> int:
        """Marshal, price, and schedule delivery of one message.

        Raises :class:`~repro.core.errors.PartitionError` immediately when
        *dst* is unreachable — the simulated analog of a connect failure.
        With a fault plane attached, the scheduled deliveries follow its
        verdict: none (drop), one (possibly delayed), or several
        (duplication); the verdict is stamped on the message.
        """
        if src not in self._endpoints:
            # fail-stop: a crashed (unregistered) incarnation must not
            # keep emitting traffic under its old identity
            raise NetworkError(f"site {src!r} is not attached")
        self.endpoint(dst)  # raises for unknown sites
        wire = marshal(payload)
        size = len(wire)
        delay = self.topology.path_cost(src, dst, size)
        msg_id = next(self._msg_ids)
        verdict = "ok"
        delays = [delay]
        if self.fault_plane is not None:
            verdict, delays = self.fault_plane.intercept(
                kind=kind, src=src, dst=dst, msg_id=msg_id,
                size=size, base_delay=delay,
            )
        decoded = unmarshal(wire)  # by-value: identity never crosses sites
        message = Message(
            kind=kind,
            src=src,
            dst=dst,
            payload=decoded,
            msg_id=msg_id,
            reply_to=reply_to,
            lamport=lamport,
            size=size,
            request_id=request_id,
            verdict=verdict,
        )
        self.messages_sent += 1
        self.bytes_sent += size
        if not delays:
            self.messages_dropped += 1
            self.bytes_dropped += size
        elif len(delays) > 1:
            self.messages_duplicated += len(delays) - 1
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("net.messages").inc()
            tel.metrics.counter("net.bytes").inc(size)
            if not delays:
                tel.metrics.counter("net.dropped").inc()
            elif len(delays) > 1:
                tel.metrics.counter("net.duplicated").inc(len(delays) - 1)

        def deliver() -> None:
            # resolved at delivery time: a site that crashed after the
            # send must not receive into its dead incarnation (and its
            # replacement legitimately receives what was in flight)
            target = self._endpoints.get(dst)
            if target is None:
                self.messages_undeliverable += 1
                return
            target.witness_lamport(message.lamport)
            target.receive(message)

        for when in delays:
            self.simulator.schedule(when, deliver, label=f"{kind} {src}->{dst}")
        return msg_id

    # -- convenience ------------------------------------------------------------

    def run(self) -> int:
        """Drain all pending traffic; returns events processed."""
        return self.simulator.run()

    def run_while(self, condition: Callable[[], bool]) -> int:
        return self.simulator.run_while(condition)

    @property
    def now(self) -> float:
        return self.simulator.now

    def __repr__(self) -> str:
        return (
            f"Network({len(self._endpoints)} sites, "
            f"{self.messages_sent} msgs, {self.bytes_sent} bytes)"
        )
