"""Message transport over the simulated internetwork.

The transport enforces *by-value* semantics: every payload is marshalled
to the wire format at send time and unmarshalled at delivery, so no
Python object identity ever crosses a site boundary — the same guarantee
real serialization gives, and the property that makes the mobility layer
honest (an object that "migrated" is a genuinely independent copy).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from ..core.errors import NetworkError
from ..sim import Simulator
from .marshal import marshal, unmarshal
from .topology import Topology

__all__ = ["Message", "Network", "Endpoint"]


@dataclass(frozen=True)
class Message:
    """A delivered message (payload already decoded)."""

    kind: str
    src: str
    dst: str
    payload: Any
    msg_id: int
    reply_to: int | None
    lamport: int
    size: int  # wire size in bytes, for accounting


class Endpoint(Protocol):
    """What the network delivers to: any site-like object."""

    site_id: str

    def receive(self, message: Message) -> None: ...

    def witness_lamport(self, remote: int) -> None: ...


class Network:
    """Topology + simulator + registered endpoints.

    >>> from repro.sim import Simulator
    >>> network = Network(Simulator())
    >>> network.topology.add_node("haifa")
    """

    def __init__(self, simulator: Simulator | None = None):
        self.simulator = simulator if simulator is not None else Simulator()
        self.topology = Topology()
        self._endpoints: dict[str, Endpoint] = {}
        self._msg_ids = itertools.count(1)
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- endpoints -----------------------------------------------------------

    def register(self, endpoint: Endpoint) -> None:
        site_id = endpoint.site_id
        if site_id in self._endpoints:
            raise NetworkError(f"site {site_id!r} is already registered")
        if not self.topology.has_node(site_id):
            self.topology.add_node(site_id)
        self._endpoints[site_id] = endpoint

    def endpoint(self, site_id: str) -> Endpoint:
        try:
            return self._endpoints[site_id]
        except KeyError:
            raise NetworkError(f"unknown site {site_id!r}") from None

    def unregister(self, site_id: str) -> Endpoint:
        """Detach a site (crash/shutdown). Topology and links remain — a
        replacement endpoint with the same id may register later (the
        restart scenario); messages sent meanwhile fail at send time."""
        try:
            return self._endpoints.pop(site_id)
        except KeyError:
            raise NetworkError(f"unknown site {site_id!r}") from None

    def sites(self) -> tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    # -- sending --------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: Any,
        reply_to: int | None = None,
        lamport: int = 0,
    ) -> int:
        """Marshal, price, and schedule delivery of one message.

        Raises :class:`~repro.core.errors.PartitionError` immediately when
        *dst* is unreachable — the simulated analog of a connect failure.
        """
        destination = self.endpoint(dst)  # raises for unknown sites
        wire = marshal(payload)
        size = len(wire)
        delay = self.topology.path_cost(src, dst, size)
        msg_id = next(self._msg_ids)
        decoded = unmarshal(wire)  # by-value: identity never crosses sites
        message = Message(
            kind=kind,
            src=src,
            dst=dst,
            payload=decoded,
            msg_id=msg_id,
            reply_to=reply_to,
            lamport=lamport,
            size=size,
        )
        self.messages_sent += 1
        self.bytes_sent += size

        def deliver() -> None:
            destination.witness_lamport(message.lamport)
            destination.receive(message)

        self.simulator.schedule(delay, deliver, label=f"{kind} {src}->{dst}")
        return msg_id

    # -- convenience ------------------------------------------------------------

    def run(self) -> int:
        """Drain all pending traffic; returns events processed."""
        return self.simulator.run()

    def run_while(self, condition: Callable[[], bool]) -> int:
        return self.simulator.run_while(condition)

    @property
    def now(self) -> float:
        return self.simulator.now

    def __repr__(self) -> str:
        return (
            f"Network({len(self._endpoints)} sites, "
            f"{self.messages_sent} msgs, {self.bytes_sent} bytes)"
        )
