"""The simulated internetwork: topology, transport, marshal, sites, RMI."""

from .gateway import TcpGateway, TcpGatewayClient
from .marshal import (
    MAGIC,
    MarshalFrame,
    Reference,
    marshal,
    marshal_frame,
    marshalled_size,
    materialize_deep,
    unmarshal,
    unmarshal_lazy,
)
from .rmi import (
    AsyncCall,
    BatchFuture,
    BatchedRef,
    RemoteRef,
    RequestBatch,
    RetryPolicy,
    SendQueue,
)
from .site import Site
from .topology import LAN, Link, MODEM, Topology, WAN
from .transport import Message, Network

__all__ = [
    "marshal",
    "marshal_frame",
    "MarshalFrame",
    "unmarshal",
    "unmarshal_lazy",
    "materialize_deep",
    "marshalled_size",
    "Reference",
    "MAGIC",
    "Topology",
    "Link",
    "LAN",
    "WAN",
    "MODEM",
    "Network",
    "Message",
    "Site",
    "RemoteRef",
    "RetryPolicy",
    "AsyncCall",
    "BatchFuture",
    "BatchedRef",
    "RequestBatch",
    "SendQueue",
    "TcpGateway",
    "TcpGatewayClient",
]
