"""The simulated internetwork: topology, transport, marshal, sites, RMI."""

from .gateway import TcpGateway, TcpGatewayClient
from .marshal import MAGIC, Reference, marshal, marshalled_size, unmarshal
from .rmi import (
    AsyncCall,
    BatchFuture,
    BatchedRef,
    RemoteRef,
    RequestBatch,
    RetryPolicy,
    SendQueue,
)
from .site import Site
from .topology import LAN, Link, MODEM, Topology, WAN
from .transport import Message, Network

__all__ = [
    "marshal",
    "unmarshal",
    "marshalled_size",
    "Reference",
    "MAGIC",
    "Topology",
    "Link",
    "LAN",
    "WAN",
    "MODEM",
    "Network",
    "Message",
    "Site",
    "RemoteRef",
    "RetryPolicy",
    "AsyncCall",
    "BatchFuture",
    "BatchedRef",
    "RequestBatch",
    "SendQueue",
    "TcpGateway",
    "TcpGatewayClient",
]
