"""The simulated internetwork: nodes, links, routing, partitions.

This is the substitution for the paper's real wide-area testbed. Links
carry a propagation **latency** (seconds) and a **bandwidth** (bytes per
second); delivering a message of size *s* over a path costs::

    sum(latency_i) + s / min(bandwidth_i)        # bottleneck model

Routing is shortest-path by latency over the live links, recomputed when
the topology changes — which makes partitions first-class: take a link
down and messages between the separated halves raise
:class:`~repro.core.errors.PartitionError` at send time, exactly the
failure a mobile-object system must survive.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import re

from ..core.errors import NetworkError, PartitionError

__all__ = ["Link", "Topology", "LAN", "WAN", "MODEM"]

#: node identifiers appear inside guids (``mrom://<site>/...``) and wire
#: references (``<site>|<guid>``), so their alphabet is restricted
_NODE_ID_RE = re.compile(r"^[A-Za-z0-9_.-]+$")


@dataclass
class Link:
    """A bidirectional link between two nodes."""

    a: str
    b: str
    latency: float  # seconds, one-way
    bandwidth: float  # bytes per second
    up: bool = True

    def endpoints(self) -> frozenset:
        return frozenset((self.a, self.b))

    def other(self, node: str) -> str:
        return self.b if node == self.a else self.a


#: Convenience presets (latency seconds, bandwidth bytes/s) evoking the
#: paper's era: campus LAN, transatlantic WAN, dial-up modem.
LAN = (0.001, 1_250_000.0)
WAN = (0.080, 125_000.0)
MODEM = (0.150, 3_500.0)


class Topology:
    """An undirected weighted graph of sites with live/down links."""

    def __init__(self) -> None:
        self._nodes: set[str] = set()
        self._links: dict[frozenset, Link] = {}
        self._routes: dict[str, dict[str, tuple[float, float, str]]] = {}
        self._dirty = True

    # -- construction -----------------------------------------------------

    def add_node(self, node: str) -> None:
        if not _NODE_ID_RE.match(node or ""):
            raise NetworkError(
                f"invalid node identifier {node!r} "
                "(allowed: letters, digits, '_', '.', '-')"
            )
        if node in self._nodes:
            raise NetworkError(f"node {node!r} already exists")
        self._nodes.add(node)
        self._dirty = True

    def has_node(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def connect(
        self, a: str, b: str, latency: float = LAN[0], bandwidth: float = LAN[1]
    ) -> Link:
        for node in (a, b):
            if node not in self._nodes:
                raise NetworkError(f"unknown node {node!r}")
        if a == b:
            raise NetworkError("self-links are not allowed")
        if latency < 0 or bandwidth <= 0:
            raise NetworkError("latency must be >= 0 and bandwidth > 0")
        key = frozenset((a, b))
        if key in self._links:
            raise NetworkError(f"link {a!r}<->{b!r} already exists")
        link = Link(a, b, latency, bandwidth)
        self._links[key] = link
        self._dirty = True
        return link

    def links(self) -> tuple[Link, ...]:
        """Every link, in a deterministic (sorted-endpoint) order."""
        return tuple(
            sorted(self._links.values(), key=lambda link: (link.a, link.b))
        )

    def link_between(self, a: str, b: str) -> Link:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a!r}<->{b!r}") from None

    # -- failures -----------------------------------------------------------

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        self.link_between(a, b).up = up
        self._dirty = True

    def partition(self, group_a: set[str] | list[str], group_b: set[str] | list[str]) -> int:
        """Cut every link crossing the two groups; returns the cut size."""
        cut = 0
        group_a, group_b = set(group_a), set(group_b)
        for link in self._links.values():
            crosses = (link.a in group_a and link.b in group_b) or (
                link.a in group_b and link.b in group_a
            )
            if crosses and link.up:
                link.up = False
                cut += 1
        self._dirty = True
        return cut

    def heal(self) -> None:
        """Bring every link back up."""
        for link in self._links.values():
            link.up = True
        self._dirty = True

    # -- routing ------------------------------------------------------------

    def _recompute(self) -> None:
        """All-sources Dijkstra by latency over live links."""
        adjacency: dict[str, list[Link]] = {node: [] for node in self._nodes}
        for link in self._links.values():
            if link.up:
                adjacency[link.a].append(link)
                adjacency[link.b].append(link)
        self._routes = {}
        for source in self._nodes:
            best: dict[str, tuple[float, float, str]] = {
                source: (0.0, float("inf"), source)
            }
            frontier: list[tuple[float, str, float, str]] = [
                (0.0, source, float("inf"), source)
            ]
            while frontier:
                latency, node, bottleneck, first_hop = heapq.heappop(frontier)
                if best.get(node, (float("inf"),))[0] < latency:
                    continue
                for link in adjacency[node]:
                    neighbour = link.other(node)
                    candidate = latency + link.latency
                    if candidate < best.get(neighbour, (float("inf"),))[0]:
                        hop = neighbour if node == source else first_hop
                        narrow = min(bottleneck, link.bandwidth)
                        best[neighbour] = (candidate, narrow, hop)
                        heapq.heappush(
                            frontier, (candidate, neighbour, narrow, hop)
                        )
            self._routes[source] = best
        self._dirty = False

    def path_cost(self, src: str, dst: str, size: int) -> float:
        """Delivery time for *size* bytes from *src* to *dst*."""
        for node in (src, dst):
            if node not in self._nodes:
                raise NetworkError(f"unknown node {node!r}")
        if src == dst:
            return 0.0
        if self._dirty:
            self._recompute()
        route = self._routes.get(src, {}).get(dst)
        if route is None:
            raise PartitionError(f"{src!r} cannot reach {dst!r}")
        latency, bottleneck, _first_hop = route
        return latency + size / bottleneck

    def reachable(self, src: str, dst: str) -> bool:
        if self._dirty:
            self._recompute()
        return src == dst or dst in self._routes.get(src, {})

    def __repr__(self) -> str:
        live = sum(1 for link in self._links.values() if link.up)
        return f"Topology({len(self._nodes)} nodes, {live}/{len(self._links)} links up)"
