"""A site: one logical host on the simulated internetwork.

A :class:`Site` owns a guid mint, a name service, and a registry of the
MROM objects living there, and speaks the request/response protocol over
:class:`~repro.net.transport.Network`:

* ``invoke`` — run a method on a registered object on behalf of a remote
  caller (the caller's principal travels with the request and is what the
  Match phase sees);
* ``get_data`` — ordinary remote value access;
* ``describe`` — visibility-filtered interrogation of a registered object;
* ``resolve`` — remote name lookup (federated naming);
* ``ping`` — liveness and clock exchange.

Higher layers (mobility, HADAS) register additional message kinds with
:meth:`Site.add_handler`; the site is deliberately a small kernel.

Identity is *claimed*, not authenticated: the companion papers [16, 17]
carry the paper's authentication story, and this reproduction models
authorization (ACLs, policies) on top of claimed principals.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..core.acl import Principal
from ..core.errors import MROMError, NamingError, NetworkError, RemoteInvocationError
from ..core.introspection import describe as describe_object
from ..core.items import ItemHandle
from ..core.mobject import MROMObject
from ..naming import GuidFactory, NameService
from .marshal import Reference
from .rmi import RemoteRef
from .transport import Message, Network

__all__ = ["Site"]

Handler = Callable[[Message], Any]


class Site:
    """One host: registry, naming, and the wire protocol."""

    def __init__(self, network: Network, site_id: str, domain: str = ""):
        self.network = network
        self.site_id = site_id
        self.domain = domain or site_id
        self.guids = GuidFactory(site_id)
        self.names = NameService(site_id)
        self.principal = Principal(
            guid=f"mrom://{site_id}/0.0", domain=self.domain, display_name=site_id
        )
        self._objects: dict[str, MROMObject] = {}
        self._handlers: dict[str, Handler] = {
            "invoke": self._handle_invoke,
            "get_data": self._handle_get_data,
            "describe": self._handle_describe,
            "resolve": self._handle_resolve,
            "ping": self._handle_ping,
        }
        self._pending: dict[int, Message] = {}
        network.register(self)

    # ------------------------------------------------------------------
    # object registry
    # ------------------------------------------------------------------

    def mint_guid(self) -> str:
        return self.guids.fresh_text()

    def create_object(self, display_name: str = "", **options: Any) -> MROMObject:
        """Create an object with a site-minted identity and this site's
        trust domain."""
        return MROMObject(
            guid=self.mint_guid(),
            domain=self.domain,
            display_name=display_name,
            **options,
        )

    def register_object(self, obj: MROMObject, name: str | None = None) -> MROMObject:
        """Make *obj* reachable from other sites (optionally bound to a
        name in this site's name service)."""
        if obj.guid in self._objects:
            raise NetworkError(f"object {obj.guid} already registered at {self.site_id}")
        self._objects[obj.guid] = obj
        obj.environment["site"] = self.site_id
        obj.environment.setdefault("domain", self.domain)
        if name is not None:
            self.names.bind(name, obj.guid)
        return obj

    def unregister_object(self, guid: str) -> MROMObject:
        try:
            obj = self._objects.pop(guid)
        except KeyError:
            raise NetworkError(f"object {guid} is not registered at {self.site_id}") from None
        obj.environment.pop("site", None)
        return obj

    def local_object(self, guid: str) -> MROMObject:
        try:
            return self._objects[guid]
        except KeyError:
            raise NetworkError(f"object {guid} is not at {self.site_id}") from None

    def has_object(self, guid: str) -> bool:
        return guid in self._objects

    def objects(self) -> tuple[MROMObject, ...]:
        return tuple(self._objects.values())

    def ref_to(self, obj_or_guid: "MROMObject | str", site: str | None = None) -> RemoteRef:
        """A reference usable locally and passable over the wire."""
        if isinstance(obj_or_guid, MROMObject):
            return RemoteRef(self, self.site_id, obj_or_guid.guid,
                             obj_or_guid.principal.display_name)
        return RemoteRef(self, site or self.site_id, obj_or_guid)

    # ------------------------------------------------------------------
    # protocol plumbing
    # ------------------------------------------------------------------

    def add_handler(self, kind: str, handler: Handler) -> None:
        if kind in self._handlers:
            raise NetworkError(f"handler for {kind!r} already installed")
        self._handlers[kind] = handler

    def witness_lamport(self, remote: int) -> None:
        self.guids.witness(remote)

    def receive(self, message: Message) -> None:
        """Transport delivery entry point."""
        if message.kind == "reply":
            self._pending[message.reply_to] = message
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            self._reply_error(message, NetworkError(f"unknown kind {message.kind!r}"))
            return
        try:
            result = handler(message)
        except MROMError as exc:
            self._reply_error(message, exc)
            return
        self._reply(message, {"ok": True, "result": self.export_value(result)})

    def _reply(self, request: Message, payload: Any) -> None:
        self.network.send(
            self.site_id,
            request.src,
            "reply",
            payload,
            reply_to=request.msg_id,
            lamport=self.guids.tick(),
        )

    def _reply_error(self, request: Message, error: Exception) -> None:
        self._reply(
            request,
            {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            },
        )

    def request(self, dst: str, kind: str, payload: Any) -> Any:
        """Send a request and pump the simulator until its reply arrives."""
        msg_id = self.network.send(
            self.site_id, dst, kind, self.export_value(payload),
            lamport=self.guids.tick(),
        )
        self.network.run_while(lambda: msg_id not in self._pending)
        reply = self._pending.pop(msg_id, None)
        if reply is None:
            raise NetworkError(
                f"no reply for {kind!r} from {dst!r} (simulation drained)"
            )
        body = reply.payload
        if isinstance(body, Mapping) and body.get("ok") is False:
            raise RemoteInvocationError(
                body.get("message", "remote failure"),
                remote_type=body.get("error", ""),
            )
        if isinstance(body, Mapping) and "result" in body:
            return self.import_value(body["result"])
        return self.import_value(body)

    # ------------------------------------------------------------------
    # value conversion at the boundary
    # ------------------------------------------------------------------

    def export_value(self, value: Any) -> Any:
        """Turn local object identities into wire references (recursively)."""
        if isinstance(value, MROMObject):
            site = self.site_id if value.guid in self._objects else ""
            return Reference(value.guid, site)
        if isinstance(value, RemoteRef):
            return Reference(value.guid, value.site)
        if isinstance(value, ItemHandle):
            # handles are process-local capabilities; on the wire they
            # become tokens the owning object re-validates on use
            return value.token()
        if isinstance(value, (list, tuple)):
            return [self.export_value(element) for element in value]
        if isinstance(value, dict):
            return {key: self.export_value(val) for key, val in value.items()}
        return value

    def import_value(self, value: Any) -> Any:
        """Turn wire references into local objects or remote proxies."""
        if isinstance(value, Reference):
            if value.site == self.site_id and value.guid in self._objects:
                return self._objects[value.guid]
            return RemoteRef(self, value.site or self.site_id, value.guid)
        if isinstance(value, list):
            return [self.import_value(element) for element in value]
        if isinstance(value, dict):
            return {key: self.import_value(val) for key, val in value.items()}
        return value

    # ------------------------------------------------------------------
    # caller principals on the wire
    # ------------------------------------------------------------------

    def _caller_payload(self, caller: Principal | None) -> dict:
        principal = caller if caller is not None else self.principal
        return {
            "guid": principal.guid,
            "domain": principal.domain,
            "name": principal.display_name,
        }

    @staticmethod
    def _caller_from(payload: Any) -> Principal:
        if not isinstance(payload, Mapping):
            return Principal(guid="mrom:anonymous")
        return Principal(
            guid=str(payload.get("guid", "mrom:anonymous")),
            domain=str(payload.get("domain", "")),
            display_name=str(payload.get("name", "")),
        )

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------

    def remote_invoke(
        self,
        dst: str,
        guid: str,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> Any:
        return self.request(
            dst,
            "invoke",
            {
                "target": guid,
                "method": method,
                "args": list(args),
                "caller": self._caller_payload(caller),
            },
        )

    def remote_get_data(
        self, dst: str, guid: str, name: str, caller: Principal | None = None
    ) -> Any:
        return self.request(
            dst,
            "get_data",
            {"target": guid, "name": name, "caller": self._caller_payload(caller)},
        )

    def remote_describe(
        self, dst: str, guid: str, caller: Principal | None = None
    ) -> dict:
        return self.request(
            dst, "describe", {"target": guid, "caller": self._caller_payload(caller)}
        )

    def remote_resolve(self, dst: str, path: str) -> RemoteRef:
        guid = self.request(dst, "resolve", {"path": path})
        return RemoteRef(self, dst, guid)

    def ping(self, dst: str) -> float:
        """Round-trip a tiny message; returns the simulated RTT."""
        start = self.network.now
        self.request(dst, "ping", {})
        return self.network.now - start

    def mount_remote_names(self, prefix: str, dst: str) -> None:
        """Federate: resolve ``prefix/...`` through site *dst*."""
        self.names.mount(prefix, _RemoteNames(self, dst))

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------

    def _handle_invoke(self, message: Message) -> Any:
        body = message.payload
        obj = self.local_object(str(body["target"]))
        caller = self._caller_from(body.get("caller"))
        args = self.import_value(body.get("args", []))
        return obj.invoke(str(body["method"]), args, caller=caller)

    def _handle_get_data(self, message: Message) -> Any:
        body = message.payload
        obj = self.local_object(str(body["target"]))
        caller = self._caller_from(body.get("caller"))
        return obj.get_data(str(body["name"]), caller=caller)

    def _handle_describe(self, message: Message) -> dict:
        body = message.payload
        obj = self.local_object(str(body["target"]))
        caller = self._caller_from(body.get("caller"))
        return describe_object(obj, viewer=caller).to_mapping()

    def _handle_resolve(self, message: Message) -> str:
        path = str(message.payload.get("path", ""))
        guid = self.names.try_resolve(path)
        if guid is None:
            raise NamingError(f"{self.site_id} cannot resolve {path!r}")
        return guid

    def _handle_ping(self, message: Message) -> dict:
        return {"site": self.site_id, "time": self.network.now}

    def __repr__(self) -> str:
        return (
            f"Site({self.site_id!r}, domain={self.domain!r}, "
            f"{len(self._objects)} objects)"
        )


class _RemoteNames:
    """Mount adapter: resolve names through a remote site."""

    __slots__ = ("_site", "_dst")

    def __init__(self, site: Site, dst: str):
        self._site = site
        self._dst = dst

    def resolve(self, path: str) -> str:
        return self._site.request(self._dst, "resolve", {"path": path})

    def list_bindings(self, prefix: str = "") -> list[tuple[str, str]]:
        # remote enumeration is deliberately not supported: a site
        # advertises resolution, not its whole directory
        return []
