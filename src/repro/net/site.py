"""A site: one logical host on the simulated internetwork.

A :class:`Site` owns a guid mint, a name service, and a registry of the
MROM objects living there, and speaks the request/response protocol over
:class:`~repro.net.transport.Network`:

* ``invoke`` — run a method on a registered object on behalf of a remote
  caller (the caller's principal travels with the request and is what the
  Match phase sees);
* ``get_data`` — ordinary remote value access;
* ``describe`` — visibility-filtered interrogation of a registered object;
* ``resolve`` — remote name lookup (federated naming);
* ``ping`` — liveness and clock exchange.

Higher layers (mobility, HADAS) register additional message kinds with
:meth:`Site.add_handler`; the site is deliberately a small kernel.

Identity is *claimed*, not authenticated: the companion papers [16, 17]
carry the paper's authentication story, and this reproduction models
authorization (ACLs, policies) on top of claimed principals.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Callable, Mapping, Sequence

from ..core.acl import Principal
from ..core.errors import (
    MROMError,
    NamingError,
    NetworkError,
    OverloadError,
    RemoteInvocationError,
    RequestTimeoutError,
    StaleLeaseError,
)
from ..core.introspection import describe as describe_object
from ..core.items import ItemHandle
from ..core.mobject import MROMObject
from ..analysis import sanitizer as _sanitizer
from ..naming import GuidFactory, NameService
from ..telemetry import state as _telemetry
from ..telemetry.context import TraceContext
from .marshal import Reference, attach_trace, extract_trace
from .rmi import (
    AsyncCall,
    BatchFuture,
    BatchedRef,
    RemoteRef,
    RequestBatch,
    RetryPolicy,
    SendQueue,
)
from .transport import Message, Network

__all__ = ["Site"]

Handler = Callable[[Message], Any]


class Site:
    """One host: registry, naming, and the wire protocol."""

    def __init__(self, network: Network, site_id: str, domain: str = ""):
        self.network = network
        self.site_id = site_id
        self.domain = domain or site_id
        self.guids = GuidFactory(site_id)
        self.names = NameService(site_id)
        self.principal = Principal(
            guid=f"mrom://{site_id}/0.0", domain=self.domain, display_name=site_id
        )
        self._objects: dict[str, MROMObject] = {}
        self._handlers: dict[str, Handler] = {
            "invoke": self._handle_invoke,
            "get_data": self._handle_get_data,
            "describe": self._handle_describe,
            "resolve": self._handle_resolve,
            "ping": self._handle_ping,
            "batch": self._handle_batch,
        }
        self._pending: dict[int, Message] = {}
        self._awaiting: set[int] = set()
        #: in-flight async calls keyed by attempt msg_id; replies settle
        #: the call's future instead of parking in ``_pending``
        self._async_calls: dict[int, AsyncCall] = {}
        self._served: OrderedDict[str, Any] = OrderedDict()
        self._served_cap = 1024
        #: request ids admitted but not yet replied to — the in-flight
        #: half of at-most-once. The served ledger only covers completed
        #: requests; with ``service_delay`` > 0 a duplicate can arrive
        #: inside the service window and would re-execute the handler
        #: (a double-applied increment). Such duplicates are swallowed:
        #: the original's reply is still on its way, and a retry landing
        #: after completion hits the ledger as usual.
        self._in_progress: set[str] = set()
        self.inflight_duplicates = 0
        self._request_seq = itertools.count(1)
        #: admission window: max requests admitted and not yet replied
        #: to (None = unbounded); beyond it, requests are shed with a
        #: structured OverloadError instead of queueing without bound
        self.inflight_limit: int | None = None
        #: simulated seconds between admission and execution of a
        #: request; 0.0 serves at delivery time (legacy semantics), >0
        #: models service latency so the inflight window can fill
        self.service_delay = 0.0
        #: requests admitted and not yet replied to
        self.inflight = 0
        self.shed_requests = 0
        #: default timeout/retry schedule for outgoing requests; None
        #: keeps the legacy fail-fast semantics (wait until the
        #: simulation drains, partitions raise at send time)
        self.retry_policy: RetryPolicy | None = None
        self.stale_replies = 0
        self.replayed_requests = 0
        self.replies_unsendable = 0
        #: >0 while a handler is executing (possibly pumping nested
        #: requests); the crash injector uses it to fail-stop the site
        #: only at a quiescent instant
        self.handling_depth = 0
        #: the durability plane, when one is attached
        #: (:class:`repro.persistence.journal.SiteJournal`); None keeps
        #: every hook a single attribute test
        self.journal = None
        #: back-pointer set by :class:`repro.mobility.transfer.
        #: MobilityManager` so the journal can snapshot transfer state
        self.mobility = None
        self.incarnation = network.register(self)

    # ------------------------------------------------------------------
    # object registry
    # ------------------------------------------------------------------

    def mint_guid(self) -> str:
        return self.guids.fresh_text()

    def create_object(self, display_name: str = "", **options: Any) -> MROMObject:
        """Create an object with a site-minted identity and this site's
        trust domain."""
        return MROMObject(
            guid=self.mint_guid(),
            domain=self.domain,
            display_name=display_name,
            **options,
        )

    def register_object(self, obj: MROMObject, name: str | None = None) -> MROMObject:
        """Make *obj* reachable from other sites (optionally bound to a
        name in this site's name service)."""
        if obj.guid in self._objects:
            raise NetworkError(f"object {obj.guid} already registered at {self.site_id}")
        self._objects[obj.guid] = obj
        obj.environment["site"] = self.site_id
        obj.environment.setdefault("domain", self.domain)
        if name is not None:
            self.names.bind(name, obj.guid)
        if self.journal is not None:
            self.journal.note_register(obj)
        return obj

    def unregister_object(self, guid: str) -> MROMObject:
        try:
            obj = self._objects.pop(guid)
        except KeyError:
            raise NetworkError(f"object {guid} is not registered at {self.site_id}") from None
        obj.environment.pop("site", None)
        if self.journal is not None:
            self.journal.note_unregister(guid)
        return obj

    def local_object(self, guid: str) -> MROMObject:
        try:
            return self._objects[guid]
        except KeyError:
            raise NetworkError(f"object {guid} is not at {self.site_id}") from None

    def has_object(self, guid: str) -> bool:
        return guid in self._objects

    def objects(self) -> tuple[MROMObject, ...]:
        return tuple(self._objects.values())

    def ref_to(self, obj_or_guid: "MROMObject | str", site: str | None = None) -> RemoteRef:
        """A reference usable locally and passable over the wire."""
        if isinstance(obj_or_guid, MROMObject):
            return RemoteRef(self, self.site_id, obj_or_guid.guid,
                             obj_or_guid.principal.display_name)
        return RemoteRef(self, site or self.site_id, obj_or_guid)

    # ------------------------------------------------------------------
    # protocol plumbing
    # ------------------------------------------------------------------

    def mint_request_id(self) -> str:
        """A fresh logical-request identifier, unique across this site's
        lifetime *and* its previous incarnations (crash-restart safe)."""
        return f"{self.site_id}#{self.incarnation}:{next(self._request_seq)}"

    def add_handler(self, kind: str, handler: Handler) -> None:
        if kind in self._handlers:
            raise NetworkError(f"handler for {kind!r} already installed")
        self._handlers[kind] = handler

    def witness_lamport(self, remote: int) -> None:
        self.guids.witness(remote)

    def receive(self, message: Message) -> None:
        """Transport delivery entry point.

        Replies are matched against the set of requests still awaited
        (settling the future directly for async calls); a reply to a
        request this site has abandoned (timed out, or a previous
        incarnation's) is discarded rather than leaking into
        ``_pending`` forever. Requests carrying a ``request_id`` are
        executed **at most once**: the reply is recorded and replayed to
        any retry or duplicate delivery of the same logical request.

        Fresh requests pass admission first: with ``inflight_limit``
        set and the window full, the request is shed with a structured
        :class:`~repro.core.errors.OverloadError` (never recorded in the
        served ledger — a retry gets a fresh admission decision). With
        ``service_delay`` > 0, admitted requests execute that many
        simulated seconds after delivery, which is what lets the window
        actually fill under concurrent load.
        """
        if message.kind == "reply":
            call = self._async_calls.get(message.reply_to)
            if call is not None:
                call.on_reply(message)
                return
            if message.reply_to in self._awaiting:
                self._pending[message.reply_to] = message
            else:
                self.stale_replies += 1
            return
        tel = _telemetry.ACTIVE
        if message.request_id and message.request_id in self._served:
            self.replayed_requests += 1
            if tel is not None:
                tel.metrics.counter("rmi.dedup_hits").inc()
                tel.events.emit(
                    "rmi.replay", time=self.network.now, site=self.site_id,
                    kind=message.kind, request_id=message.request_id,
                )
            self._send_reply(message, self._served[message.request_id])
            return
        if message.request_id and message.request_id in self._in_progress:
            # a duplicate of a request still in its service window: the
            # handler ran (or will run) exactly once for the original,
            # whose reply is already on its way — answer with silence
            self.inflight_duplicates += 1
            if tel is not None:
                tel.metrics.counter("rmi.inflight_dups").inc()
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            self._reply_error(message, NetworkError(f"unknown kind {message.kind!r}"))
            return
        if not self.try_admit(message.kind, src=message.src):
            self._shed(message)
            return
        if message.request_id:
            self._in_progress.add(message.request_id)
        if self.service_delay > 0:
            self.network.simulator.schedule(
                self.service_delay,
                lambda: self._serve(message, handler),
                label=f"serve {message.kind} @ {self.site_id}",
            )
        else:
            self._serve(message, handler)

    # -- admission control ----------------------------------------------

    def try_admit(self, kind: str = "", src: str = "") -> bool:
        """Claim one slot of the inflight window (True = admitted).

        Every admission must be balanced by one :meth:`release`; the
        request paths do this when the reply goes out. The gateway
        claims a slot per external request through the same window, so
        TCP-borne and simulation-borne load share one budget.
        """
        if self.inflight_limit is not None and self.inflight >= self.inflight_limit:
            self.shed_requests += 1
            tel = _telemetry.ACTIVE
            if tel is not None:
                tel.metrics.counter("site.shed").inc()
                tel.events.emit(
                    "site.shed", time=self.network.now, site=self.site_id,
                    kind=kind, src=src, inflight=self.inflight,
                    limit=self.inflight_limit,
                )
            return False
        self.inflight += 1
        return True

    def release(self) -> None:
        """Return one admission slot (the request has been replied to)."""
        self.inflight -= 1

    def overloaded_error(self) -> OverloadError:
        return OverloadError(
            f"site {self.site_id} admission window full "
            f"({self.inflight}/{self.inflight_limit})"
        )

    def _shed(self, message: Message) -> None:
        """Refuse *message* with a structured overload reply.

        Deliberately bypasses the served ledger: nothing executed, so a
        retry of the same logical request deserves a fresh admission
        decision instead of an eternally replayed refusal.
        """
        self._send_reply(
            message,
            {
                "ok": False,
                "error": "OverloadError",
                "message": str(self.overloaded_error()),
            },
        )

    def _serve(self, message: Message, handler: Handler) -> None:
        """Execute one admitted request and send its reply."""
        san = _sanitizer.ACTIVE
        hb_task = None
        if san is not None:
            # the serving activity happens-after the send that carried
            # the request; its final clock is published under the same
            # msg id so the requester's reply absorption closes the loop
            hb_task = san.begin_serve(
                message.msg_id, label=f"serve.{message.kind}@{self.site_id}"
            )
        tel = _telemetry.ACTIVE
        span = None
        if tel is not None:
            # re-activate the caller's wire context: the server span
            # parents to the remote rmi span, stitching the trace across
            # the site boundary
            remote_ctx = TraceContext.from_wire(extract_trace(message.payload))
            span = tel.begin_span(
                f"serve.{message.kind}",
                attrs={
                    "site": self.site_id,
                    "src": message.src,
                    "msg_id": message.msg_id,
                    "sim_time": self.network.now,
                    "verdict": message.verdict,
                },
                parent=remote_ctx,
            )
            tel.metrics.counter("rmi.served").inc()
        self.handling_depth += 1
        status = "ok"
        try:
            try:
                result = handler(message)
            except MROMError as exc:
                status = "error"
                if span is not None:
                    span.set(error=type(exc).__name__)
                self._reply_error(message, exc)
                return
            self._reply(message, {"ok": True, "result": self.export_value(result)})
        except BaseException as exc:
            if status == "ok":
                status = "error"
                if span is not None:
                    span.set(error=type(exc).__name__)
            raise
        finally:
            self.handling_depth -= 1
            if span is not None:
                tel.end_span(span, status=status)
            if san is not None:
                san.end_serve(message.msg_id, hb_task)
            if message.request_id:
                self._in_progress.discard(message.request_id)
            self.release()

    def _reply(self, request: Message, payload: Any) -> None:
        if request.request_id:
            # record before sending: even if the reply is lost on the
            # wire, a retry replays the same outcome instead of
            # re-executing the handler
            self._served[request.request_id] = payload
            self._served.move_to_end(request.request_id)
            while len(self._served) > self._served_cap:
                self._served.popitem(last=False)
        if self.journal is not None:
            # reply and post-execution state become durable before the
            # reply can reach the wire: a retry landing on the next
            # incarnation replays this outcome (a request-id-less legacy
            # request still journals the state it mutated)
            self.journal.note_served(
                request.kind, request.request_id or "", payload,
                request.payload,
            )
        self._send_reply(request, payload)

    def _send_reply(self, request: Message, payload: Any) -> None:
        try:
            self.network.send(
                self.site_id,
                request.src,
                "reply",
                payload,
                reply_to=request.msg_id,
                lamport=self.guids.tick(),
            )
        except NetworkError:
            # the requester's link died between request and reply; it
            # will time out and retry — never let a reply-path partition
            # unwind an unrelated caller's simulation pump
            self.replies_unsendable += 1

    def _reply_error(self, request: Message, error: Exception) -> None:
        self._reply(
            request,
            {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            },
        )

    def request(
        self,
        dst: str,
        kind: str,
        payload: Any,
        policy: RetryPolicy | None = None,
    ) -> Any:
        """Send a request and pump the simulator until its reply arrives.

        With a :class:`RetryPolicy` (per-call, or the site's default
        ``retry_policy``), each attempt waits ``policy.timeout`` simulated
        seconds and failed attempts back off exponentially; all attempts
        share one ``request_id`` so the receiver executes the request at
        most once. Without a policy: legacy semantics (pump until the
        reply lands or the simulation drains).

        With telemetry enabled, the whole logical request is one client
        span (``rmi.<kind>``) and the span's trace context is stamped
        into the request envelope (:data:`~repro.net.marshal.TRACE_FIELD`)
        so the serving site joins the same trace; every retry carries the
        identical context.
        """
        san = _sanitizer.ACTIVE
        if san is not None:
            # the pump parks this site on dst until the reply lands — a
            # sync-wait edge; outstanding edges forming a ring is the
            # dynamic witness the cycle.* rules must have predicted
            san.wait_begin(self.site_id, dst)
            try:
                return self._request_traced(dst, kind, payload, policy)
            finally:
                san.wait_end(self.site_id, dst)
        return self._request_traced(dst, kind, payload, policy)

    def _request_traced(
        self,
        dst: str,
        kind: str,
        payload: Any,
        policy: RetryPolicy | None = None,
    ) -> Any:
        tel = _telemetry.ACTIVE
        if tel is None:
            return self._request(dst, kind, payload, policy)
        span = tel.begin_span(
            f"rmi.{kind}",
            attrs={"src": self.site_id, "dst": dst, "sim_time": self.network.now},
        )
        tel.metrics.counter("rmi.requests").inc()
        payload = attach_trace(payload, tel.context_of(span).to_wire())
        try:
            result = self._request(dst, kind, payload, policy)
        except BaseException as exc:
            span.set(error=type(exc).__name__)
            tel.end_span(span, status="error")
            raise
        span.set(sim_time_done=self.network.now)
        tel.end_span(span)
        return result

    def _request(
        self,
        dst: str,
        kind: str,
        payload: Any,
        policy: RetryPolicy | None = None,
    ) -> Any:
        policy = policy if policy is not None else self.retry_policy
        wire_payload = self.export_value(payload)
        if policy is None:
            msg_id = self.network.send(
                self.site_id, dst, kind, wire_payload, lamport=self.guids.tick()
            )
            san = _sanitizer.ACTIVE
            if san is not None:
                san.note_sent(msg_id)
            self._awaiting.add(msg_id)
            try:
                self.network.run_while(lambda: msg_id not in self._pending)
            finally:
                self._awaiting.discard(msg_id)
            reply = self._pending.pop(msg_id, None)
            if reply is None:
                raise NetworkError(
                    f"no reply for {kind!r} from {dst!r} (simulation drained)"
                )
            return self._decode_reply(reply)
        request_id = self.mint_request_id()
        simulator = self.network.simulator
        attempt_ids: list[int] = []
        sent_any = False
        last_error: NetworkError | None = None
        try:
            for attempt in range(policy.attempts):
                reply = self._claim_reply(attempt_ids)
                if reply is not None:  # a late reply landed during backoff
                    return self._decode_reply(reply)
                if attempt:
                    tel = _telemetry.ACTIVE
                    if tel is not None:
                        tel.metrics.counter("rmi.retries").inc()
                        span = tel.current_span
                        if span is not None:
                            span.event(
                                "rmi.retry",
                                attempt=attempt + 1,
                                request_id=request_id,
                                sim_time=self.network.now,
                            )
                try:
                    msg_id = self.network.send(
                        self.site_id, dst, kind, wire_payload,
                        lamport=self.guids.tick(), request_id=request_id,
                    )
                except NetworkError as exc:
                    last_error = exc
                else:
                    sent_any = True
                    san = _sanitizer.ACTIVE
                    if san is not None:
                        san.note_sent(msg_id)
                    attempt_ids.append(msg_id)
                    self._awaiting.add(msg_id)
                    expired: dict[str, bool] = {}
                    timer = simulator.schedule(
                        policy.timeout,
                        lambda expired=expired: expired.setdefault("fired", True),
                        label=f"timeout {kind} {request_id}",
                    )
                    self.network.run_while(
                        lambda: "fired" not in expired
                        and not any(m in self._pending for m in attempt_ids)
                    )
                    simulator.cancel(timer)
                    reply = self._claim_reply(attempt_ids)
                    if reply is not None:
                        return self._decode_reply(reply)
                    last_error = RequestTimeoutError(
                        f"no reply for {kind!r} from {dst!r} within "
                        f"{policy.timeout}s (attempt {attempt + 1}/{policy.attempts})"
                    )
                    tel = _telemetry.ACTIVE
                    if tel is not None:
                        tel.metrics.counter("rmi.timeouts").inc()
                        span = tel.current_span
                        if span is not None:
                            span.event(
                                "rmi.timeout",
                                attempt=attempt + 1,
                                sim_time=self.network.now,
                            )
                if attempt + 1 < policy.attempts:
                    self._sleep(policy.backoff_for(attempt))
            reply = self._claim_reply(attempt_ids)
            if reply is not None:
                return self._decode_reply(reply)
        finally:
            for msg_id in attempt_ids:
                self._awaiting.discard(msg_id)
                self._pending.pop(msg_id, None)
        assert last_error is not None
        if sent_any and not isinstance(last_error, RequestTimeoutError):
            # at least one attempt reached the wire: the outcome is
            # ambiguous even though the last failure was at send time
            raise RequestTimeoutError(
                f"request {kind!r} to {dst!r} unresolved after "
                f"{policy.attempts} attempts: {last_error}"
            ) from last_error
        raise last_error

    def request_async(
        self,
        dst: str,
        kind: str,
        payload: Any,
        policy: RetryPolicy | None = None,
    ) -> BatchFuture:
        """Send a request without pumping; returns a future.

        The future settles when the reply is delivered during *any*
        simulator pump — :meth:`wait`, a concurrent synchronous call, or
        an explicit ``network.run()``. With a :class:`RetryPolicy`
        (per-call, or the site's default), timeouts and retries are
        scheduled simulator events sharing one ``request_id``, exactly as
        deterministic as the blocking path. Remote failures settle the
        future with the typed rebuilt error (an
        :class:`~repro.core.errors.OverloadError` for shed requests).

        With telemetry enabled the call is counted and the *current*
        trace context (if any) is stamped into the envelope; no client
        span is opened — an async call is not an interval on this
        site's context stack.
        """
        policy = policy if policy is not None else self.retry_policy
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("rmi.async.requests").inc()
            context = tel.current_context()
            if context is not None:
                payload = attach_trace(payload, context.to_wire())
        future: BatchFuture = BatchFuture()
        call = AsyncCall(
            self, dst, kind, self.export_value(payload), policy, future
        )
        call.start()
        return future

    def wait(self, future: BatchFuture) -> Any:
        """Pump the simulator until *future* settles; return its result.

        Raises :class:`~repro.core.errors.NetworkError` if the
        simulation drains without the reply (mirrors the policy-free
        blocking path).
        """
        self.network.run_while(lambda: not future.done)
        if not future.done:
            raise NetworkError(
                "simulation drained before the request resolved"
            )
        return future.result()

    def wait_all(self, futures: Sequence[BatchFuture]) -> list:
        """Pump until every future settles; returns their results
        (raising the first stored failure encountered)."""
        self.network.run_while(
            lambda: any(not future.done for future in futures)
        )
        unresolved = sum(1 for future in futures if not future.done)
        if unresolved:
            raise NetworkError(
                f"simulation drained with {unresolved} request(s) unresolved"
            )
        return [future.result() for future in futures]

    def _claim_reply(self, attempt_ids: Sequence[int]) -> Message | None:
        """Pop the reply to whichever attempt of a logical request landed."""
        for msg_id in attempt_ids:
            reply = self._pending.pop(msg_id, None)
            if reply is not None:
                return reply
        return None

    def _sleep(self, duration: float) -> None:
        """Advance simulated time by *duration*, serving traffic meanwhile."""
        woken: dict[str, bool] = {}
        self.network.simulator.schedule(
            duration,
            lambda: woken.setdefault("fired", True),
            label=f"backoff {self.site_id}",
        )
        self.network.run_while(lambda: "fired" not in woken)

    def _decode_reply(self, reply: Message) -> Any:
        san = _sanitizer.ACTIVE
        if san is not None:
            # join the serving task's published clock: everything the
            # handler did happens-before this caller's next step
            san.absorb_reply(reply.reply_to)
        body = reply.payload
        if isinstance(body, Mapping) and body.get("ok") is False:
            if body.get("error") == "OverloadError":
                # a shed is a structured refusal, not a remote crash:
                # surface it under its own type so callers can back off
                raise OverloadError(body.get("message", "remote overloaded"))
            if body.get("error") == "StaleLeaseError":
                # a stale directory lease is likewise a pre-execution
                # refusal; the typed error carries the current placement
                # generation (embedded in the message) so the caller can
                # re-resolve and retry safely
                raise StaleLeaseError(body.get("message", "stale directory lease"))
            raise RemoteInvocationError(
                body.get("message", "remote failure"),
                remote_type=body.get("error", ""),
            )
        if isinstance(body, Mapping) and "result" in body:
            return self.import_value(body["result"])
        return self.import_value(body)

    # ------------------------------------------------------------------
    # value conversion at the boundary
    # ------------------------------------------------------------------

    def export_value(self, value: Any) -> Any:
        """Turn local object identities into wire references (recursively)."""
        if isinstance(value, MROMObject):
            site = self.site_id if value.guid in self._objects else ""
            return Reference(value.guid, site)
        if isinstance(value, RemoteRef):
            return Reference(value.guid, value.site)
        if isinstance(value, ItemHandle):
            # handles are process-local capabilities; on the wire they
            # become tokens the owning object re-validates on use
            return value.token()
        if isinstance(value, (list, tuple)):
            return [self.export_value(element) for element in value]
        if isinstance(value, dict):
            return {key: self.export_value(val) for key, val in value.items()}
        return value

    def import_value(self, value: Any) -> Any:
        """Turn wire references into local objects or remote proxies."""
        if isinstance(value, Reference):
            if value.site == self.site_id and value.guid in self._objects:
                return self._objects[value.guid]
            return RemoteRef(self, value.site or self.site_id, value.guid)
        if isinstance(value, list):
            return [self.import_value(element) for element in value]
        if isinstance(value, dict):
            return {key: self.import_value(val) for key, val in value.items()}
        return value

    # ------------------------------------------------------------------
    # caller principals on the wire
    # ------------------------------------------------------------------

    def _caller_payload(self, caller: Principal | None) -> dict:
        principal = caller if caller is not None else self.principal
        return {
            "guid": principal.guid,
            "domain": principal.domain,
            "name": principal.display_name,
        }

    @staticmethod
    def _caller_from(payload: Any) -> Principal:
        if not isinstance(payload, Mapping):
            return Principal(guid="mrom:anonymous")
        return Principal(
            guid=str(payload.get("guid", "mrom:anonymous")),
            domain=str(payload.get("domain", "")),
            display_name=str(payload.get("name", "")),
        )

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------

    def remote_invoke(
        self,
        dst: str,
        guid: str,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
        policy: RetryPolicy | None = None,
    ) -> Any:
        return self.request(
            dst,
            "invoke",
            {
                "target": guid,
                "method": method,
                "args": list(args),
                "caller": self._caller_payload(caller),
            },
            policy=policy,
        )

    def remote_get_data(
        self,
        dst: str,
        guid: str,
        name: str,
        caller: Principal | None = None,
        policy: RetryPolicy | None = None,
    ) -> Any:
        return self.request(
            dst,
            "get_data",
            {"target": guid, "name": name, "caller": self._caller_payload(caller)},
            policy=policy,
        )

    def remote_describe(
        self,
        dst: str,
        guid: str,
        caller: Principal | None = None,
        policy: RetryPolicy | None = None,
    ) -> dict:
        return self.request(
            dst,
            "describe",
            {"target": guid, "caller": self._caller_payload(caller)},
            policy=policy,
        )

    def remote_invoke_async(
        self,
        dst: str,
        guid: str,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
        policy: RetryPolicy | None = None,
    ) -> BatchFuture:
        return self.request_async(
            dst,
            "invoke",
            {
                "target": guid,
                "method": method,
                "args": list(args),
                "caller": self._caller_payload(caller),
            },
            policy=policy,
        )

    def remote_get_data_async(
        self,
        dst: str,
        guid: str,
        name: str,
        caller: Principal | None = None,
        policy: RetryPolicy | None = None,
    ) -> BatchFuture:
        return self.request_async(
            dst,
            "get_data",
            {"target": guid, "name": name, "caller": self._caller_payload(caller)},
            policy=policy,
        )

    def remote_describe_async(
        self,
        dst: str,
        guid: str,
        caller: Principal | None = None,
        policy: RetryPolicy | None = None,
    ) -> BatchFuture:
        return self.request_async(
            dst,
            "describe",
            {"target": guid, "caller": self._caller_payload(caller)},
            policy=policy,
        )

    def batch(self, dst: str, policy: RetryPolicy | None = None) -> RequestBatch:
        """A batch coalescing requests to *dst* into one frame per flush."""
        return RequestBatch(self, dst, policy=policy)

    def send_queue(self, policy: RetryPolicy | None = None) -> SendQueue:
        """A queue coalescing requests per destination (one frame each)."""
        return SendQueue(self, policy=policy)

    def batched_ref(self, ref: RemoteRef, batch: RequestBatch) -> BatchedRef:
        """Bind an existing reference to a batch (calls become futures)."""
        return BatchedRef(ref, batch)

    def remote_resolve(self, dst: str, path: str) -> RemoteRef:
        guid = self.request(dst, "resolve", {"path": path})
        return RemoteRef(self, dst, guid)

    def ping(self, dst: str) -> float:
        """Round-trip a tiny message; returns the simulated RTT."""
        start = self.network.now
        self.request(dst, "ping", {})
        return self.network.now - start

    def mount_remote_names(self, prefix: str, dst: str) -> None:
        """Federate: resolve ``prefix/...`` through site *dst*."""
        self.names.mount(prefix, _RemoteNames(self, dst))

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------

    def _handle_invoke(self, message: Message) -> Any:
        body = message.payload
        obj = self.local_object(str(body["target"]))
        caller = self._caller_from(body.get("caller"))
        args = self.import_value(body.get("args", []))
        san = _sanitizer.ACTIVE
        if san is not None:
            san.invoke(obj, str(body["method"]))
        return obj.invoke(str(body["method"]), args, caller=caller)

    def _handle_get_data(self, message: Message) -> Any:
        body = message.payload
        obj = self.local_object(str(body["target"]))
        caller = self._caller_from(body.get("caller"))
        san = _sanitizer.ACTIVE
        if san is not None:
            san.data_read(obj, str(body["name"]))
        return obj.get_data(str(body["name"]), caller=caller)

    def _handle_describe(self, message: Message) -> dict:
        body = message.payload
        obj = self.local_object(str(body["target"]))
        caller = self._caller_from(body.get("caller"))
        return describe_object(obj, viewer=caller).to_mapping()

    def _handle_resolve(self, message: Message) -> str:
        path = str(message.payload.get("path", ""))
        guid = self.names.try_resolve(path)
        if guid is None:
            raise NamingError(f"{self.site_id} cannot resolve {path!r}")
        return guid

    def _handle_ping(self, message: Message) -> dict:
        return {"site": self.site_id, "time": self.network.now}

    def _handle_batch(self, message: Message) -> dict:
        """Serve one coalesced frame of logical requests.

        Each inner request carries the same per-request ``request_id`` an
        individual send would, and shares the site's ``_served`` ledger:
        a logical request is executed **at most once** even when its
        frame is retried, duplicated, or its requests are later re-sent
        individually. Inner failures become per-request error envelopes —
        one bad request does not poison its neighbours. The frame itself
        is also deduplicated by :meth:`receive` via its own request_id.
        """
        body = message.payload
        entries = body.get("requests") if isinstance(body, Mapping) else None
        if not isinstance(entries, list):
            raise NetworkError("batch payload must carry a 'requests' list")
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("rmi.batch.frames").inc()
            tel.metrics.counter("rmi.batch.served").inc(len(entries))
        return {
            "replies": [self._serve_batched(message, entry) for entry in entries]
        }

    def _serve_batched(self, frame: Message, entry: Any) -> dict:
        """Execute (or replay) one logical request of a batch frame."""
        if not isinstance(entry, Mapping):
            return {
                "ok": False,
                "error": "NetworkError",
                "message": f"malformed batch entry {entry!r}",
            }
        kind = str(entry.get("kind", ""))
        request_id = str(entry.get("request_id", ""))
        tel = _telemetry.ACTIVE
        if request_id and request_id in self._served:
            self.replayed_requests += 1
            if tel is not None:
                tel.metrics.counter("rmi.dedup_hits").inc()
                tel.events.emit(
                    "rmi.replay", time=self.network.now, site=self.site_id,
                    kind=kind, request_id=request_id,
                )
            self._served.move_to_end(request_id)
            return self._served[request_id]
        handler = self._handlers.get(kind)
        if handler is None or kind == "batch":  # no nested frames
            envelope: dict = {
                "ok": False,
                "error": "NetworkError",
                "message": f"unknown kind {kind!r}",
            }
        else:
            inner = Message(
                kind=kind,
                src=frame.src,
                dst=frame.dst,
                payload=entry.get("payload"),
                msg_id=frame.msg_id,
                reply_to=None,
                lamport=frame.lamport,
                size=0,
                request_id=request_id,
                verdict=frame.verdict,
            )
            span = None
            if tel is not None:
                # nests under the frame's serve.batch span (begin_span
                # falls back to the current context), keeping the per-
                # request server spans the unbatched path would produce
                span = tel.begin_span(
                    f"serve.{kind}",
                    attrs={
                        "site": self.site_id,
                        "src": frame.src,
                        "msg_id": frame.msg_id,
                        "sim_time": self.network.now,
                        "batched": True,
                    },
                    parent=TraceContext.from_wire(extract_trace(inner.payload)),
                )
                tel.metrics.counter("rmi.served").inc()
            self.handling_depth += 1
            status = "ok"
            try:
                result = handler(inner)
                envelope = {"ok": True, "result": self.export_value(result)}
            except MROMError as exc:
                status = "error"
                if span is not None:
                    span.set(error=type(exc).__name__)
                envelope = {
                    "ok": False,
                    "error": type(exc).__name__,
                    "message": str(exc),
                }
            finally:
                self.handling_depth -= 1
                if span is not None:
                    tel.end_span(span, status=status)
        if request_id:
            # same record-before-reply discipline as _reply: a lost frame
            # reply must replay outcomes, not re-execute
            self._served[request_id] = envelope
            self._served.move_to_end(request_id)
            while len(self._served) > self._served_cap:
                self._served.popitem(last=False)
            if self.journal is not None:
                self.journal.note_served(
                    kind, request_id, envelope, entry.get("payload")
                )
        return envelope

    def __repr__(self) -> str:
        return (
            f"Site({self.site_id!r}, domain={self.domain!r}, "
            f"{len(self._objects)} objects)"
        )


class _RemoteNames:
    """Mount adapter: resolve names through a remote site."""

    __slots__ = ("_site", "_dst")

    def __init__(self, site: Site, dst: str):
        self._site = site
        self._dst = dst

    def resolve(self, path: str) -> str:
        return self._site.request(self._dst, "resolve", {"path": path})

    def list_bindings(self, prefix: str = "") -> list[tuple[str, str]]:
        # remote enumeration is deliberately not supported: a site
        # advertises resolution, not its whole directory
        return []
