"""A real-TCP gateway into a simulated site.

The reproduction's network substrate is a deterministic simulator (see
DESIGN.md §3); real deployments of the paper's system spoke RMI over real
sockets. The gateway bridges the two: it exposes one site's protocol
surface (invoke / get_data / describe / resolve / ping) over actual TCP
on localhost, so an external process — a different Python interpreter, a
different language, a netcat — can interrogate and invoke the objects
living in the simulation using the same MRM1 wire format the simulated
transport uses.

Framing: each direction sends ``4-byte big-endian length`` + one MRM1
message. Requests are mappings ``{kind, payload}``; responses follow the
transport's reply convention (``{ok, result}`` / ``{ok, error, message}``).

Requests are serialized through one lock: the simulation kernel is
single-threaded by design, and a gateway request may pump it (an invoke
that forwards across the simulated WAN does). The gateway is a doorway,
not a second scheduler.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Any

from ..core.acl import Principal
from ..core.errors import MROMError, NetworkError, error_for_name
from ..core.introspection import describe as describe_object
from .marshal import marshal_frame, unmarshal
from .site import Site

__all__ = ["TcpGateway", "TcpGatewayClient"]

_LENGTH = struct.Struct(">I")
MAX_FRAME = 16 * 1024 * 1024


def _send_frame(sock: socket.socket, value: Any) -> None:
    # zero-copy: header and body leave in one scatter-gather syscall,
    # the body as a memoryview over the pooled buffer — no concatenated
    # bytes object, and no Nagle stall from a split write
    with marshal_frame(value) as frame:
        buffers = [memoryview(_LENGTH.pack(len(frame))), frame.view]
        while buffers:
            sent = sock.sendmsg(buffers)
            while buffers and sent >= len(buffers[0]):
                sent -= len(buffers[0])
                buffers.pop(0)
            if sent:
                buffers[0] = buffers[0][sent:]


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Any | None:
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise NetworkError(f"frame of {length} bytes exceeds the gateway limit")
    body = _recv_exactly(sock, length)
    if body is None:
        return None
    return unmarshal(body)


class TcpGateway:
    """Serves one site's protocol surface on a localhost TCP port."""

    def __init__(self, site: Site, host: str = "127.0.0.1", port: int = 0):
        self.site = site
        self._lock = threading.Lock()
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(8)
        self.host, self.port = self._server.getsockname()
        self._running = True
        self.requests_served = 0
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"gateway-{site.site_id}", daemon=True
        )
        self._thread.start()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._running = False
        try:
            self._server.close()
        except OSError:  # pragma: no cover - platform noise
            pass

    def __enter__(self) -> "TcpGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving ------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                connection, _address = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(connection,), daemon=True
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            while self._running:
                try:
                    request = _recv_frame(connection)
                except MROMError as exc:
                    _send_frame(
                        connection,
                        {"ok": False, "error": type(exc).__name__,
                         "message": str(exc)},
                    )
                    return
                if request is None:
                    return
                _send_frame(connection, self._respond(request))

    def _respond(self, request: Any) -> dict:
        if not isinstance(request, dict) or "kind" not in request:
            return {"ok": False, "error": "NetworkError",
                    "message": "malformed gateway request"}
        kind = str(request["kind"])
        payload = request.get("payload", {})
        with self._lock:  # the simulation kernel is single-threaded
            # external requests share the site's admission window, so
            # TCP-borne load honours the same backpressure contract as
            # simulation-borne load
            if not self.site.try_admit(kind, src="tcp"):
                error = self.site.overloaded_error()
                return {"ok": False, "error": type(error).__name__,
                        "message": str(error)}
            try:
                result = self._dispatch(kind, payload)
            except MROMError as exc:
                return {"ok": False, "error": type(exc).__name__,
                        "message": str(exc)}
            finally:
                self.site.release()
            self.requests_served += 1
            return {"ok": True, "result": self.site.export_value(result)}

    def _dispatch(self, kind: str, payload: Any) -> Any:
        if not isinstance(payload, dict):
            payload = {}
        if kind == "ping":
            return {"site": self.site.site_id, "time": self.site.network.now}
        if kind == "resolve":
            return self.site.names.resolve(str(payload.get("path", "")))
        if kind not in ("describe", "get_data", "invoke"):
            # anything else the site itself serves (``dir.resolve``,
            # ``cluster.invoke``, ...) is reachable over TCP too — the
            # multi-process cluster driver runs entirely on this path
            return self._dispatch_handler(kind, payload)
        caller = self._external_caller(payload)
        target = str(payload.get("target", ""))
        obj = self.site.local_object(target)
        if kind == "describe":
            return describe_object(obj, viewer=caller).to_mapping()
        if kind == "get_data":
            return obj.get_data(str(payload.get("name", "")), caller=caller)
        if kind == "invoke":
            args = self.site.import_value(payload.get("args", []))
            return obj.invoke(str(payload.get("method", "")), args, caller=caller)
        raise NetworkError(f"gateway does not serve kind {kind!r}")  # pragma: no cover

    def _dispatch_handler(self, kind: str, payload: Any) -> Any:
        """Serve a registered site handler (``dir.*`` / ``cluster.*`` …)
        for a TCP-borne request, as if it arrived on the simulated wire."""
        from .transport import Message

        handler = self.site._handlers.get(kind)
        if handler is None:
            raise NetworkError(f"gateway does not serve kind {kind!r}")
        message = Message(
            kind=kind, src="tcp", dst=self.site.site_id,
            payload=payload, msg_id=0, reply_to=None, lamport=0, size=0,
        )
        return handler(message)

    @staticmethod
    def _external_caller(payload: Any) -> Principal:
        raw = payload.get("caller", {}) if isinstance(payload, dict) else {}
        if not isinstance(raw, dict):
            raw = {}
        return Principal(
            guid=str(raw.get("guid", "mrom:gateway-client")),
            domain=str(raw.get("domain", "external")),
            display_name=str(raw.get("name", "gateway-client")),
        )

    def __repr__(self) -> str:
        return f"TcpGateway({self.site.site_id} @ {self.host}:{self.port})"


class TcpGatewayClient:
    """A client for :class:`TcpGateway` — usable from any process."""

    def __init__(self, host: str, port: int, timeout: float = 5.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "TcpGatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def call(self, kind: str, payload: dict | None = None) -> Any:
        """Issue any gateway request by kind — the generic face the
        cluster driver uses for ``dir.*`` and ``cluster.*`` traffic."""
        return self._call(kind, payload or {})

    def _call(self, kind: str, payload: dict) -> Any:
        _send_frame(self._sock, {"kind": kind, "payload": payload})
        reply = _recv_frame(self._sock)
        if reply is None:
            raise NetworkError("gateway closed the connection")
        if not isinstance(reply, dict):
            raise NetworkError("malformed gateway reply")
        if not reply.get("ok"):
            # rebuild the remote failure under its own type: an external
            # caller must be able to tell denial (AccessDeniedError)
            # from absence (MethodNotFoundError) from overload
            raise error_for_name(
                str(reply.get("error", "")),
                str(reply.get("message", "gateway failure")),
            )
        return reply.get("result")

    def ping(self) -> dict:
        return self._call("ping", {})

    def resolve(self, path: str) -> str:
        return self._call("resolve", {"path": path})

    def describe(self, guid: str, caller: dict | None = None) -> dict:
        return self._call("describe", {"target": guid, "caller": caller or {}})

    def get_data(self, guid: str, name: str, caller: dict | None = None) -> Any:
        return self._call(
            "get_data", {"target": guid, "name": name, "caller": caller or {}}
        )

    def invoke(
        self, guid: str, method: str, args: list | None = None,
        caller: dict | None = None,
    ) -> Any:
        return self._call(
            "invoke",
            {"target": guid, "method": method, "args": args or [],
             "caller": caller or {}},
        )
