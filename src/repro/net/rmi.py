"""Remote references: the RMI analog over the simulated transport.

A :class:`RemoteRef` is a local proxy for an object registered at another
site. Invoking through it sends an ``invoke`` request, pumps the
simulator until the matching reply lands (synchronous semantics, like
RMI), and returns the decoded result — or re-raises the remote failure
as :class:`~repro.core.errors.RemoteInvocationError`.

Remote calls may carry a :class:`RetryPolicy`: each attempt gets a
per-request timeout (a scheduled simulator event, so timeouts are as
deterministic as everything else), failed attempts back off
exponentially, and every attempt of one logical request shares a single
``request_id`` — the receiving site executes it at most once and replays
the recorded reply to retries, which is what makes retrying
non-idempotent operations safe (see ``docs/FAULTS.md``).

Remote references are themselves weakly-typed *reference* values: they
expose a ``guid``, so they classify as :data:`repro.core.values.Kind.REFERENCE`
and can be stored in data items, passed as arguments (travelling as wire
references), and returned from methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, TYPE_CHECKING

from ..core.acl import Principal
from ..core.errors import (
    NetworkError,
    OverloadError,
    RemoteInvocationError,
    RequestTimeoutError,
    error_for_name,
)
from ..analysis import sanitizer as _sanitizer
from ..telemetry import state as _telemetry

if TYPE_CHECKING:  # pragma: no cover
    from .site import Site
    from .transport import Message

__all__ = [
    "RemoteRef",
    "RetryPolicy",
    "BatchFuture",
    "AsyncCall",
    "RequestBatch",
    "BatchedRef",
    "SendQueue",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + exponential-backoff schedule for one logical request.

    ``attempts`` bounds total tries; each waits ``timeout`` simulated
    seconds for the reply; between tries the caller sleeps ``backoff``
    seconds, multiplied by ``multiplier`` per retry and capped at
    ``max_backoff``. All values are in simulated time and contain no
    randomness, so a retried run is exactly as reproducible as a clean
    one.
    """

    attempts: int = 4
    timeout: float = 2.0
    backoff: float = 0.25
    multiplier: float = 2.0
    max_backoff: float = 4.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise NetworkError("a retry policy needs at least one attempt")
        if self.timeout <= 0 or self.backoff < 0 or self.multiplier < 1:
            raise NetworkError(
                "timeout must be > 0, backoff >= 0, multiplier >= 1"
            )
        if self.max_backoff < self.backoff:
            # a cap below the base would silently shrink every sleep to
            # the cap, defeating the configured schedule
            raise NetworkError(
                f"max_backoff ({self.max_backoff}) must be >= backoff "
                f"({self.backoff})"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (0-based)."""
        return min(self.backoff * self.multiplier**attempt, self.max_backoff)


class RemoteRef:
    """A proxy for object *guid* living at *site* (held by *holder*)."""

    __slots__ = ("holder", "site", "guid", "display_name")

    def __init__(self, holder: "Site", site: str, guid: str, display_name: str = ""):
        self.holder = holder
        self.site = site
        self.guid = guid
        self.display_name = display_name

    def invoke(
        self,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> Any:
        """Synchronously invoke *method* on the remote object.

        *policy* overrides the holder site's default retry policy for
        this one call (None = use the site's default). With telemetry
        enabled, the underlying request runs as an ``rmi.invoke`` client
        span whose trace context travels in the request envelope (see
        :data:`~repro.net.marshal.TRACE_FIELD`); this proxy layer only
        accounts the call.
        """
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("rmi.proxy_calls").inc()
        return self.holder.remote_invoke(
            self.site, self.guid, method, list(args), caller=caller, policy=policy
        )

    def get_data(
        self,
        name: str,
        caller: Principal | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> Any:
        """Read a remote data item (the remote site applies the ACL)."""
        return self.holder.remote_get_data(
            self.site, self.guid, name, caller=caller, policy=policy
        )

    def describe(
        self,
        caller: Principal | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> dict:
        """Interrogate the remote object (visibility-filtered remotely)."""
        return self.holder.remote_describe(
            self.site, self.guid, caller=caller, policy=policy
        )

    # -- non-blocking verbs (futures resolved by the event loop) ---------

    def invoke_async(
        self,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> BatchFuture:
        """Invoke without pumping; the future settles when the reply
        lands during any simulator pump (see :class:`AsyncCall`)."""
        return self.holder.remote_invoke_async(
            self.site, self.guid, method, list(args), caller=caller,
            policy=policy,
        )

    def get_data_async(
        self,
        name: str,
        caller: Principal | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> BatchFuture:
        return self.holder.remote_get_data_async(
            self.site, self.guid, name, caller=caller, policy=policy
        )

    def describe_async(
        self,
        caller: Principal | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> BatchFuture:
        return self.holder.remote_describe_async(
            self.site, self.guid, caller=caller, policy=policy
        )

    def is_local(self) -> bool:
        return self.site == self.holder.site_id

    def __deepcopy__(self, memo) -> "RemoteRef":
        # a proxy is a *pointer*: copying it must never clone the holder
        # site (let alone the network behind it)
        return RemoteRef(self.holder, self.site, self.guid, self.display_name)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RemoteRef)
            and other.site == self.site
            and other.guid == self.guid
        )

    def __hash__(self) -> int:
        return hash((self.site, self.guid))

    def __repr__(self) -> str:
        label = f" ({self.display_name})" if self.display_name else ""
        return f"RemoteRef({self.guid} @ {self.site}{label})"


def remote_error_from(payload: dict) -> RemoteInvocationError:
    """Rebuild a remote failure as a local exception."""
    return RemoteInvocationError(
        payload.get("message", "remote invocation failed"),
        remote_type=payload.get("error", ""),
    )


# ---------------------------------------------------------------------------
# async RMI: futures resolved by the event loop, not by pumping per call
# ---------------------------------------------------------------------------


class AsyncCall:
    """The client half of one non-blocking logical request.

    Where :meth:`Site.request` pumps the kernel to completion per call,
    an async call is pure event-loop state: the request is sent, the
    future is returned immediately, and the reply — whenever a pump
    delivers it — settles the future. Timeouts and retries are ordinary
    scheduled simulator events sharing one ``request_id`` (the receiver
    still executes the logical request at most once), so a site can keep
    an arbitrary window of requests in flight across the simulated WAN.

    Remote failures settle the future with the *typed* rebuilt error
    (:func:`repro.core.errors.error_for_name`): a shed request fails as
    :class:`~repro.core.errors.OverloadError`, a denial as
    ``AccessDeniedError`` — the structured contract the load drivers and
    admission tests rely on.
    """

    __slots__ = (
        "site", "dst", "kind", "wire_payload", "policy", "future",
        "request_id", "issued_at", "attempt", "attempt_ids", "sent_any",
        "_timer", "hb_clock",
    )

    def __init__(
        self,
        site: "Site",
        dst: str,
        kind: str,
        wire_payload: Any,
        policy: "RetryPolicy | None",
        future: BatchFuture,
    ):
        self.site = site
        self.dst = dst
        self.kind = kind
        self.wire_payload = wire_payload
        self.policy = policy
        self.future = future
        self.request_id = site.mint_request_id()
        self.issued_at = site.network.now
        self.attempt = 0
        self.attempt_ids: list[int] = []
        self.sent_any = False
        self._timer = None
        self.hb_clock = None  # issuer's vector clock, when sanitizing

    # -- sending ---------------------------------------------------------

    def start(self) -> None:
        self._send_attempt()

    def _send_attempt(self) -> None:
        try:
            msg_id = self.site.network.send(
                self.site.site_id, self.dst, self.kind, self.wire_payload,
                lamport=self.site.guids.tick(), request_id=self.request_id,
            )
        except NetworkError as exc:
            self._attempt_failed(exc)
            return
        self.sent_any = True
        san = _sanitizer.ACTIVE
        if san is not None:
            if self.hb_clock is None:
                self.hb_clock = san.snapshot()
            san.note_sent(msg_id, fallback=self.hb_clock)
        self.attempt_ids.append(msg_id)
        self.site._async_calls[msg_id] = self
        if self.policy is not None:
            self._timer = self.site.network.simulator.schedule(
                self.policy.timeout,
                self._on_timeout,
                label=f"async timeout {self.kind} {self.request_id}",
            )

    # -- outcomes --------------------------------------------------------

    def on_reply(self, message: "Message") -> None:
        """A reply to any attempt of this logical request landed."""
        if self._timer is not None:
            self.site.network.simulator.cancel(self._timer)
            self._timer = None
        self._unregister()
        if self.future.done:  # pragma: no cover - defensive
            return
        san = _sanitizer.ACTIVE
        hb_task = None
        if san is not None:
            # settle the future under a task that happens-after both the
            # issue point and the serving activity, so callback chains
            # (the load drivers' next request) inherit the full ordering
            hb_task = san.fork(label=f"reply.{self.kind}", parent=None)
            if self.hb_clock:
                san.merge(hb_task, self.hb_clock)
            serve_clock = san.reply_clock(message.reply_to)
            if serve_clock:
                san.merge(hb_task, serve_clock)
            san.push(hb_task)
        try:
            body = message.payload
            if isinstance(body, dict) and body.get("ok") is False:
                error = error_for_name(
                    str(body.get("error", "")),
                    str(body.get("message", "remote failure")),
                )
                if isinstance(error, OverloadError) and self.policy is not None:
                    # a shed is retryable: the refusal bypassed the served
                    # ledger, so a backed-off retry of the same request_id
                    # gets a fresh admission decision
                    self._attempt_failed(error)
                    return
                self.future._fail(error)
                return
            if isinstance(body, dict) and "result" in body:
                body = body["result"]
            self.future._resolve(self.site.import_value(body))
        finally:
            if san is not None:
                san.pop()

    def _on_timeout(self) -> None:
        self._timer = None
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("rmi.timeouts").inc()
        assert self.policy is not None
        self._attempt_failed(
            RequestTimeoutError(
                f"no reply for {self.kind!r} from {self.dst!r} within "
                f"{self.policy.timeout}s "
                f"(attempt {self.attempt + 1}/{self.policy.attempts})"
            )
        )

    def _attempt_failed(self, error: NetworkError) -> None:
        self.attempt += 1
        policy = self.policy
        if policy is not None and self.attempt < policy.attempts:
            # earlier attempts stay registered: a late reply landing
            # during the backoff still settles the future (and the
            # scheduled retry then finds it done and stands down)
            self.site.network.simulator.schedule(
                policy.backoff_for(self.attempt - 1),
                self._retry,
                label=f"async backoff {self.kind} {self.request_id}",
            )
            return
        self._unregister()
        if self.future.done:  # pragma: no cover - defensive
            return
        if self.sent_any and not isinstance(
            error, (RequestTimeoutError, OverloadError)
        ):
            # at least one attempt reached the wire: ambiguous outcome.
            # (An OverloadError is exempt: the server explicitly refused
            # before executing, so the outcome is known, not ambiguous.)
            error = RequestTimeoutError(
                f"request {self.kind!r} to {self.dst!r} unresolved after "
                f"{self.attempt} attempt(s): {error}"
            )
        self.future._fail(error)

    def _retry(self) -> None:
        if self.future.done:
            return
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("rmi.retries").inc()
        self._send_attempt()

    def _unregister(self) -> None:
        for msg_id in self.attempt_ids:
            self.site._async_calls.pop(msg_id, None)

    def __repr__(self) -> str:
        state = "done" if self.future.done else f"attempt {self.attempt + 1}"
        return f"AsyncCall({self.kind} -> {self.dst}, {state})"


# ---------------------------------------------------------------------------
# batched RMI: many logical requests, one transport frame per destination
# ---------------------------------------------------------------------------


class BatchFuture:
    """The eventual outcome of one logical request issued without waiting.

    Used both by the batched-RMI path (resolved when the owning batch is
    flushed) and by the async serving path (resolved when the reply
    message is delivered during any simulator pump); :meth:`result` then
    returns the decoded value or re-raises the remote failure exactly as
    the synchronous call would have. :meth:`when_done` registers
    completion callbacks — the hook the load drivers chain requests and
    record latencies with.
    """

    __slots__ = ("_done", "_value", "_error", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._error: Exception | None = None
        self._callbacks: list[Any] = []

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        if not self._done:
            raise NetworkError("request not resolved yet (still in flight)")
        if self._error is not None:
            raise self._error
        return self._value

    def error(self) -> Exception | None:
        """The stored failure without raising (None while pending/ok)."""
        return self._error

    def when_done(self, callback) -> None:
        """Run ``callback(future)`` at settlement (now, if already done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _settle(self) -> None:
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._settle()

    def _fail(self, error: Exception) -> None:
        self._error = error
        self._settle()

    def __repr__(self) -> str:
        if not self._done:
            return "BatchFuture(pending)"
        if self._error is not None:
            return f"BatchFuture(error={type(self._error).__name__})"
        return f"BatchFuture({self._value!r})"


class RequestBatch:
    """Coalesces logical requests to one destination into one frame.

    Each :meth:`add` mints the same per-request ``request_id`` an
    individual call would carry, so the receiving site executes every
    logical request **at most once** and replays recorded replies to
    retried or duplicated frames — the frame itself additionally has its
    own ``request_id`` (minted by :meth:`Site.request`'s retry machinery)
    for whole-frame dedup. Retry/timeout semantics and ``~trace``
    propagation are the frame's: one ``rmi.batch`` client span covers the
    flush and the serving site nests one ``serve.<kind>`` span per inner
    request under its ``serve.batch``.

    Usable as a context manager: a clean exit flushes.
    """

    def __init__(self, site: "Site", dst: str, policy: "RetryPolicy | None" = None):
        self.site = site
        self.dst = dst
        self.policy = policy
        self._entries: list[dict] = []
        self._futures: list[BatchFuture] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, kind: str, payload: Any) -> BatchFuture:
        """Queue one logical request; returns its future."""
        future = BatchFuture()
        self._entries.append(
            {
                "kind": kind,
                "request_id": self.site.mint_request_id(),
                "payload": payload,
            }
        )
        self._futures.append(future)
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("rmi.batch.calls").inc()
        return future

    # -- the protocol verbs, batched ------------------------------------

    def invoke(
        self,
        guid: str,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> BatchFuture:
        return self.add(
            "invoke",
            {
                "target": guid,
                "method": method,
                "args": list(args),
                "caller": self.site._caller_payload(caller),
            },
        )

    def get_data(
        self, guid: str, name: str, caller: Principal | None = None
    ) -> BatchFuture:
        return self.add(
            "get_data",
            {
                "target": guid,
                "name": name,
                "caller": self.site._caller_payload(caller),
            },
        )

    def describe(self, guid: str, caller: Principal | None = None) -> BatchFuture:
        return self.add(
            "describe",
            {"target": guid, "caller": self.site._caller_payload(caller)},
        )

    # -- flushing --------------------------------------------------------

    def flush(self) -> list[BatchFuture]:
        """Send the queued requests as one frame and resolve the futures.

        A frame-level failure (timeout with all retries exhausted,
        partition) fails every pending future with it and re-raises;
        per-request failures stay inside their futures.
        """
        entries, futures = self._entries, self._futures
        if not entries:
            return []
        self._entries, self._futures = [], []
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("rmi.batch.flushes").inc()
        try:
            reply = self.site.request(
                self.dst, "batch", {"requests": entries}, policy=self.policy
            )
        except Exception as exc:
            for future in futures:
                future._fail(exc)
            raise
        envelopes = reply.get("replies") if isinstance(reply, dict) else None
        if not isinstance(envelopes, list) or len(envelopes) != len(futures):
            error = NetworkError(
                f"malformed batch reply from {self.dst!r}: expected "
                f"{len(futures)} replies"
            )
            for future in futures:
                future._fail(error)
            raise error
        for future, envelope in zip(futures, envelopes):
            if isinstance(envelope, dict) and envelope.get("ok") is False:
                future._fail(remote_error_from(envelope))
            elif isinstance(envelope, dict) and "result" in envelope:
                future._resolve(envelope["result"])
            else:
                future._fail(
                    NetworkError(f"malformed batch envelope {envelope!r}")
                )
        return futures

    def __enter__(self) -> "RequestBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()


class BatchedRef:
    """A :class:`RemoteRef` whose calls queue into a batch.

    Mirrors the proxy verbs but returns :class:`BatchFuture`s; results
    land when the batch flushes.
    """

    __slots__ = ("ref", "batch")

    def __init__(self, ref: RemoteRef, batch: RequestBatch):
        if ref.site != batch.dst:
            raise NetworkError(
                f"reference lives at {ref.site!r} but the batch targets "
                f"{batch.dst!r}"
            )
        self.ref = ref
        self.batch = batch

    def invoke(
        self,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> BatchFuture:
        return self.batch.invoke(self.ref.guid, method, args, caller=caller)

    def get_data(self, name: str, caller: Principal | None = None) -> BatchFuture:
        return self.batch.get_data(self.ref.guid, name, caller=caller)

    def describe(self, caller: Principal | None = None) -> BatchFuture:
        return self.batch.describe(self.ref.guid, caller=caller)

    def __repr__(self) -> str:
        return f"BatchedRef({self.ref.guid} @ {self.ref.site}, {len(self.batch)} queued)"


class SendQueue:
    """Site-level coalescing: one frame per destination per flush.

    Where :class:`RequestBatch` targets one destination, the queue fans
    logical requests out to any number of sites and flushes each
    destination's backlog as a single frame.
    """

    def __init__(self, site: "Site", policy: "RetryPolicy | None" = None):
        self.site = site
        self.policy = policy
        self._batches: "dict[str, RequestBatch]" = {}

    def _batch_for(self, dst: str) -> RequestBatch:
        batch = self._batches.get(dst)
        if batch is None:
            batch = RequestBatch(self.site, dst, policy=self.policy)
            self._batches[dst] = batch
        return batch

    def enqueue(self, dst: str, kind: str, payload: Any) -> BatchFuture:
        return self._batch_for(dst).add(kind, payload)

    def invoke(
        self,
        ref: RemoteRef,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> BatchFuture:
        return self._batch_for(ref.site).invoke(
            ref.guid, method, args, caller=caller
        )

    def pending(self) -> int:
        return sum(len(batch) for batch in self._batches.values())

    def flush(self) -> int:
        """Flush every destination; returns the number of frames sent.

        Destinations are flushed in name order for determinism. A
        frame-level failure fails that destination's futures (as
        :meth:`RequestBatch.flush` does) but the queue keeps flushing the
        remaining destinations; the first failure is re-raised at the
        end.
        """
        frames = 0
        first_error: Exception | None = None
        for dst in sorted(self._batches):
            batch = self._batches[dst]
            if not len(batch):
                continue
            try:
                batch.flush()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
            frames += 1
        self._batches = {}
        if first_error is not None:
            raise first_error
        return frames
