"""Remote references: the RMI analog over the simulated transport.

A :class:`RemoteRef` is a local proxy for an object registered at another
site. Invoking through it sends an ``invoke`` request, pumps the
simulator until the matching reply lands (synchronous semantics, like
RMI), and returns the decoded result — or re-raises the remote failure
as :class:`~repro.core.errors.RemoteInvocationError`.

Remote calls may carry a :class:`RetryPolicy`: each attempt gets a
per-request timeout (a scheduled simulator event, so timeouts are as
deterministic as everything else), failed attempts back off
exponentially, and every attempt of one logical request shares a single
``request_id`` — the receiving site executes it at most once and replays
the recorded reply to retries, which is what makes retrying
non-idempotent operations safe (see ``docs/FAULTS.md``).

Remote references are themselves weakly-typed *reference* values: they
expose a ``guid``, so they classify as :data:`repro.core.values.Kind.REFERENCE`
and can be stored in data items, passed as arguments (travelling as wire
references), and returned from methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, TYPE_CHECKING

from ..core.acl import Principal
from ..core.errors import NetworkError, RemoteInvocationError
from ..telemetry import state as _telemetry

if TYPE_CHECKING:  # pragma: no cover
    from .site import Site

__all__ = ["RemoteRef", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + exponential-backoff schedule for one logical request.

    ``attempts`` bounds total tries; each waits ``timeout`` simulated
    seconds for the reply; between tries the caller sleeps ``backoff``
    seconds, multiplied by ``multiplier`` per retry and capped at
    ``max_backoff``. All values are in simulated time and contain no
    randomness, so a retried run is exactly as reproducible as a clean
    one.
    """

    attempts: int = 4
    timeout: float = 2.0
    backoff: float = 0.25
    multiplier: float = 2.0
    max_backoff: float = 4.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise NetworkError("a retry policy needs at least one attempt")
        if self.timeout <= 0 or self.backoff < 0 or self.multiplier < 1:
            raise NetworkError(
                "timeout must be > 0, backoff >= 0, multiplier >= 1"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (0-based)."""
        return min(self.backoff * self.multiplier**attempt, self.max_backoff)


class RemoteRef:
    """A proxy for object *guid* living at *site* (held by *holder*)."""

    __slots__ = ("holder", "site", "guid", "display_name")

    def __init__(self, holder: "Site", site: str, guid: str, display_name: str = ""):
        self.holder = holder
        self.site = site
        self.guid = guid
        self.display_name = display_name

    def invoke(
        self,
        method: str,
        args: Sequence[Any] = (),
        caller: Principal | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> Any:
        """Synchronously invoke *method* on the remote object.

        *policy* overrides the holder site's default retry policy for
        this one call (None = use the site's default). With telemetry
        enabled, the underlying request runs as an ``rmi.invoke`` client
        span whose trace context travels in the request envelope (see
        :data:`~repro.net.marshal.TRACE_FIELD`); this proxy layer only
        accounts the call.
        """
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.counter("rmi.proxy_calls").inc()
        return self.holder.remote_invoke(
            self.site, self.guid, method, list(args), caller=caller, policy=policy
        )

    def get_data(
        self,
        name: str,
        caller: Principal | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> Any:
        """Read a remote data item (the remote site applies the ACL)."""
        return self.holder.remote_get_data(
            self.site, self.guid, name, caller=caller, policy=policy
        )

    def describe(
        self,
        caller: Principal | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> dict:
        """Interrogate the remote object (visibility-filtered remotely)."""
        return self.holder.remote_describe(
            self.site, self.guid, caller=caller, policy=policy
        )

    def is_local(self) -> bool:
        return self.site == self.holder.site_id

    def __deepcopy__(self, memo) -> "RemoteRef":
        # a proxy is a *pointer*: copying it must never clone the holder
        # site (let alone the network behind it)
        return RemoteRef(self.holder, self.site, self.guid, self.display_name)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RemoteRef)
            and other.site == self.site
            and other.guid == self.guid
        )

    def __hash__(self) -> int:
        return hash((self.site, self.guid))

    def __repr__(self) -> str:
        label = f" ({self.display_name})" if self.display_name else ""
        return f"RemoteRef({self.guid} @ {self.site}{label})"


def remote_error_from(payload: dict) -> RemoteInvocationError:
    """Rebuild a remote failure as a local exception."""
    return RemoteInvocationError(
        payload.get("message", "remote invocation failed"),
        remote_type=payload.get("error", ""),
    )
