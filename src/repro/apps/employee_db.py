"""A synthetic legacy application: an employee database engine.

This stands in for the "real applications, both legacy and native-HADAS"
that APOs encapsulate (Section 5) — and specifically for the paper's
worked example: "a database APO whose methods return employees
information". It is a plain Python object with no knowledge of MROM;
the HADAS integration layer wraps it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Employee", "EmployeeDatabase", "sample_database"]


@dataclass(frozen=True)
class Employee:
    """One row of the database."""

    name: str
    department: str
    salary: int
    manager: str = ""

    def to_mapping(self) -> dict:
        return {
            "name": self.name,
            "department": self.department,
            "salary": self.salary,
            "manager": self.manager,
        }


class EmployeeDatabase:
    """An in-memory table with the query surface the example needs."""

    def __init__(self, rows: Iterable[Employee] = ()):
        self._rows: dict[str, Employee] = {}
        self.queries_served = 0
        self.online = True
        for row in rows:
            self.insert(row)

    # -- updates ---------------------------------------------------------

    def insert(self, employee: Employee) -> None:
        if employee.name in self._rows:
            raise KeyError(f"employee {employee.name!r} already exists")
        self._rows[employee.name] = employee

    def remove(self, name: str) -> Employee:
        return self._rows.pop(name)

    def give_raise(self, name: str, amount: int) -> int:
        current = self.lookup(name)
        updated = Employee(
            current.name, current.department, current.salary + amount,
            current.manager,
        )
        self._rows[name] = updated
        return updated.salary

    # -- queries ------------------------------------------------------------

    def lookup(self, name: str) -> Employee:
        self.queries_served += 1
        try:
            return self._rows[name]
        except KeyError:
            raise KeyError(f"no employee named {name!r}") from None

    def salary_of(self, name: str) -> int:
        return self.lookup(name).salary

    def by_department(self, department: str) -> list[Employee]:
        self.queries_served += 1
        return sorted(
            (row for row in self._rows.values() if row.department == department),
            key=lambda row: row.name,
        )

    def departments(self) -> list[str]:
        self.queries_served += 1
        return sorted({row.department for row in self._rows.values()})

    def payroll_total(self, department: str | None = None) -> int:
        self.queries_served += 1
        return sum(
            row.salary
            for row in self._rows.values()
            if department is None or row.department == department
        )

    def headcount(self) -> int:
        self.queries_served += 1
        return len(self._rows)

    def reports_to(self, manager: str) -> list[str]:
        self.queries_served += 1
        return sorted(
            row.name for row in self._rows.values() if row.manager == manager
        )

    # -- administration ---------------------------------------------------------

    def shut_down(self) -> None:
        """Take the engine offline (the maintenance scenario)."""
        self.online = False

    def start_up(self) -> None:
        self.online = True

    def __len__(self) -> int:
        return len(self._rows)


def sample_database() -> EmployeeDatabase:
    """A small but non-trivial dataset used by examples and tests."""
    return EmployeeDatabase(
        [
            Employee("moshe", "engineering", 4500, manager="dana"),
            Employee("dana", "engineering", 7200),
            Employee("yael", "engineering", 5100, manager="dana"),
            Employee("avi", "sales", 3900, manager="rina"),
            Employee("rina", "sales", 6000),
            Employee("noa", "research", 5600),
            Employee("eli", "research", 4800, manager="noa"),
            Employee("tamar", "sales", 4100, manager="rina"),
        ]
    )
