"""A synthetic legacy application: a document index (search tool).

The third integration target — modelled on the external tools software-
engineering environments wrap (the paper cites Oz and FIELD as wrapping-
heavy systems). An inverted index over named documents, with tf scoring:
exactly the kind of pre-existing tool a HADAS site integrates, wraps with
pre/post procedures, and exports Ambassadors for.
"""

from __future__ import annotations

import math
import re
from collections import Counter

__all__ = ["TextIndex"]

_WORD_RE = re.compile(r"[a-z0-9]+")


def _terms(text: str) -> list[str]:
    return _WORD_RE.findall(text.lower())


class TextIndex:
    """An inverted index with tf-idf ranking.

    >>> index = TextIndex()
    >>> index.add_document("a", "mobile objects travel the network")
    >>> index.add_document("b", "static objects stay put")
    >>> [hit for hit, _score in index.search("mobile network")]
    ['a']
    """

    def __init__(self) -> None:
        self._documents: dict[str, Counter] = {}
        self._postings: dict[str, set[str]] = {}
        self.searches_served = 0

    # -- corpus management ---------------------------------------------------

    def add_document(self, name: str, text: str) -> int:
        """Index a document; returns its term count."""
        if name in self._documents:
            raise KeyError(f"document {name!r} already indexed")
        counts = Counter(_terms(text))
        self._documents[name] = counts
        for term in counts:
            self._postings.setdefault(term, set()).add(name)
        return sum(counts.values())

    def remove_document(self, name: str) -> None:
        counts = self._documents.pop(name, None)
        if counts is None:
            raise KeyError(f"document {name!r} is not indexed")
        for term in counts:
            holders = self._postings.get(term)
            if holders is not None:
                holders.discard(name)
                if not holders:
                    del self._postings[term]

    def documents(self) -> list[str]:
        return sorted(self._documents)

    def vocabulary_size(self) -> int:
        return len(self._postings)

    # -- search ------------------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> list[tuple[str, float]]:
        """Rank documents for *query* by tf-idf; best first."""
        self.searches_served += 1
        terms = _terms(query)
        if not terms or not self._documents:
            return []
        corpus = len(self._documents)
        scores: dict[str, float] = {}
        for term in terms:
            holders = self._postings.get(term, ())
            if not holders:
                continue
            idf = math.log((1 + corpus) / (1 + len(holders))) + 1.0
            for name in holders:
                tf = self._documents[name][term]
                scores[name] = scores.get(name, 0.0) + tf * idf
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:limit]

    def term_frequency(self, name: str, term: str) -> int:
        try:
            return self._documents[name][term.lower()]
        except KeyError:
            raise KeyError(f"document {name!r} is not indexed") from None

    def __len__(self) -> int:
        return len(self._documents)
