"""A synthetic legacy application: an arithmetic expression service.

A second integration target for HADAS APOs — chosen because its inputs
arrive as *text* (often scraped out of HTML in the paper's network-centric
setting), which exercises the weak-typing/coercion path end to end.

The evaluator is a classic recursive-descent parser over
``+ - * / % ( )`` and integer/real literals, with named memory slots.
No MROM dependency; the HADAS layer wraps it.
"""

from __future__ import annotations

import re

__all__ = ["CalculatorError", "Calculator"]


class CalculatorError(ValueError):
    """Malformed expression or evaluation failure."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*|\.\d+|\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>[-+*/%()]))"
)


def _tokenize(expression: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if match is None:
            raise CalculatorError(
                f"bad character {expression[position]!r} at {position}"
            )
        if match.group("number") is not None:
            tokens.append(("number", match.group("number")))
        elif match.group("name") is not None:
            tokens.append(("name", match.group("name")))
        else:
            tokens.append(("op", match.group("op")))
        position = match.end()
    return tokens


class Calculator:
    """Expression evaluator with named memory.

    >>> calc = Calculator()
    >>> calc.evaluate("2 + 3 * 4")
    14
    >>> calc.store("rate", 1.17)
    >>> calc.evaluate("100 * rate")
    117.0
    """

    def __init__(self) -> None:
        self._memory: dict[str, float | int] = {}
        self.evaluations = 0

    # -- memory ------------------------------------------------------------

    def store(self, name: str, value: "float | int") -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CalculatorError(f"memory accepts numbers, not {type(value).__name__}")
        self._memory[name] = value

    def recall(self, name: str) -> "float | int":
        try:
            return self._memory[name]
        except KeyError:
            raise CalculatorError(f"nothing stored under {name!r}") from None

    def clear(self) -> None:
        self._memory.clear()

    def names(self) -> list[str]:
        return sorted(self._memory)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, expression: str) -> "float | int":
        self.evaluations += 1
        tokens = _tokenize(expression)
        value, rest = self._parse_sum(tokens)
        if rest:
            raise CalculatorError(f"trailing tokens: {rest!r}")
        return value

    def _parse_sum(self, tokens):
        value, tokens = self._parse_product(tokens)
        while tokens and tokens[0] == ("op", "+") or tokens and tokens[0] == ("op", "-"):
            operator = tokens[0][1]
            right, tokens = self._parse_product(tokens[1:])
            value = value + right if operator == "+" else value - right
        return value, tokens

    def _parse_product(self, tokens):
        value, tokens = self._parse_atom(tokens)
        while tokens and tokens[0][0] == "op" and tokens[0][1] in "*/%":
            operator = tokens[0][1]
            right, tokens = self._parse_atom(tokens[1:])
            try:
                if operator == "*":
                    value = value * right
                elif operator == "/":
                    value = value / right
                else:
                    value = value % right
            except ZeroDivisionError:
                raise CalculatorError("division by zero") from None
        return value, tokens

    def _parse_atom(self, tokens):
        if not tokens:
            raise CalculatorError("unexpected end of expression")
        kind, text = tokens[0]
        if kind == "number":
            literal = float(text) if "." in text else int(text)
            return literal, tokens[1:]
        if kind == "name":
            return self.recall(text), tokens[1:]
        if (kind, text) == ("op", "-"):
            value, rest = self._parse_atom(tokens[1:])
            return -value, rest
        if (kind, text) == ("op", "("):
            value, rest = self._parse_sum(tokens[1:])
            if not rest or rest[0] != ("op", ")"):
                raise CalculatorError("missing closing parenthesis")
            return value, rest[1:]
        raise CalculatorError(f"unexpected token {text!r}")
