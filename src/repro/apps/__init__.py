"""Synthetic legacy applications wrapped by HADAS APOs (see DESIGN.md)."""

from .calculator import Calculator, CalculatorError
from .employee_db import Employee, EmployeeDatabase, sample_database
from .textindex import TextIndex

__all__ = [
    "Employee",
    "EmployeeDatabase",
    "sample_database",
    "Calculator",
    "CalculatorError",
    "TextIndex",
]
