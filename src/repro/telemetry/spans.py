"""Spans: timed, structured slices of work inside one trace.

A :class:`Span` records what one operation did — monotonic start/end
timestamps, key/value attributes, a list of timestamped
:class:`SpanEvent` s (ACL outcomes, PREPARE/COMMIT/ABORT phases, fault
injections), and a final status. Finished spans land in a
:class:`SpanRecorder`, the in-memory buffer the exporters read.

Timestamps are ``time.perf_counter_ns`` by default (monotonic, never
steps backwards); hooks that run under the simulator additionally attach
the simulated clock as an attribute, so a trace can be read in either
time base.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

__all__ = ["Span", "SpanEvent", "SpanRecorder"]


class SpanEvent:
    """One timestamped point event inside a span."""

    __slots__ = ("name", "time_ns", "attrs")

    def __init__(self, name: str, time_ns: int, attrs: Mapping[str, Any] | None = None):
        self.name = name
        self.time_ns = time_ns
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}

    def to_mapping(self) -> dict:
        event = {"name": self.name, "time_ns": self.time_ns}
        if self.attrs:
            event["attrs"] = dict(self.attrs)
        return event

    def __repr__(self) -> str:
        return f"SpanEvent({self.name!r}, attrs={self.attrs!r})"


class Span:
    """One unit of traced work. Created by
    :meth:`~repro.telemetry.runtime.Telemetry.begin_span`; mutated while
    open; immutable in spirit once :meth:`end` has run."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_ns",
        "end_ns",
        "status",
        "attrs",
        "events",
        "_clock",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        attrs: Mapping[str, Any] | None = None,
        clock: Callable[[], int] = time.perf_counter_ns,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self._clock = clock
        self.start_ns = clock()
        self.end_ns: int | None = None
        self.status = "open"
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.events: list[SpanEvent] = []

    # -- while open --------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> SpanEvent:
        """Record a point event at the current monotonic time."""
        event = SpanEvent(name, self._clock(), attrs)
        self.events.append(event)
        return event

    def end(self, status: str = "ok") -> "Span":
        """Close the span (idempotent: the first close wins)."""
        if self.end_ns is None:
            self.end_ns = self._clock()
            self.status = status
        return self

    # -- after close -------------------------------------------------------

    @property
    def ended(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_us(self) -> float:
        """Span duration in microseconds (0.0 while still open)."""
        if self.end_ns is None:
            return 0.0
        return (self.end_ns - self.start_ns) / 1_000.0

    def to_mapping(self) -> dict:
        """The JSON-lines export form (see ``docs/TELEMETRY.md``)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_us": self.duration_us,
            "status": self.status,
            "attrs": dict(self.attrs),
            "events": [event.to_mapping() for event in self.events],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id}, "
            f"status={self.status!r}, {len(self.events)} events)"
        )


class SpanRecorder:
    """The bounded buffer finished spans land in.

    When more than *cap* spans finish, the oldest are evicted and
    counted in :attr:`dropped` — a long-running host keeps a window, not
    an unbounded log.
    """

    def __init__(self, cap: int = 100_000):
        self.cap = cap
        self.spans: list[Span] = []
        self.dropped = 0

    def record(self, span: Span) -> None:
        self.spans.append(span)
        if len(self.spans) > self.cap:
            overflow = len(self.spans) - self.cap
            del self.spans[:overflow]
            self.dropped += overflow

    def by_trace(self, trace_id: str) -> list[Span]:
        return [span for span in self.spans if span.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in first-seen order."""
        seen: list[str] = []
        for span in self.spans:
            if span.trace_id not in seen:
                seen.append(span.trace_id)
        return seen

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)
