"""The canonical traced scenario: one trace across RMI and migration.

:func:`run_traced_scenario` builds a deterministic three-site world,
turns the telemetry plane on, and runs the acceptance workload under one
root span: a remote invocation from ``beta`` to a counter object living
on ``alpha``, then a migration of that object from ``alpha`` to
``gamma`` — while a seeded fault plane drops the first invoke request
and duplicates its retry, so the export demonstrably contains, under a
*single trace id*:

* a client ``rmi.invoke`` span with an ``rmi.retry`` event and at least
  one injected ``fault`` event (attributed with scenario name + seq);
* the server-side ``serve.invoke`` span parented across the wire;
* a ``transfer.handoff`` span with ``PREPARE`` and ``COMMIT`` phase
  events, and the receiver's ``transfer.install`` span parented to the
  journey stamp packed with the object.

Everything is seed-driven: same seed, same spans, same ids. The
``repro trace`` CLI and the telemetry test-suite both run exactly this
function.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults import DropInjector, DuplicateInjector, FaultPlane
from ..mobility import MobilityManager
from ..net import LAN, Network, RetryPolicy, Site
from ..sim import Simulator
from .runtime import Telemetry, enabled

__all__ = ["TracedScenarioReport", "run_traced_scenario", "TRACE_POLICY"]

#: rides out the single seeded drop with room to spare
TRACE_POLICY = RetryPolicy(
    attempts=4, timeout=0.5, backoff=0.1, multiplier=2.0, max_backoff=1.0
)


@dataclass
class TracedScenarioReport:
    """What the traced scenario produced (plus the live capture)."""

    seed: int
    trace_id: str
    remote_result: object
    migrated_to: str
    final_count: object
    faults: dict[str, int]
    telemetry: Telemetry
    plane: FaultPlane

    def summary(self) -> dict:
        """The deterministic, serialisable digest of the run."""
        spans = self.telemetry.recorder.by_trace(self.trace_id)
        return {
            "seed": self.seed,
            "trace_id": self.trace_id,
            "remote_result": self.remote_result,
            "migrated_to": self.migrated_to,
            "final_count": self.final_count,
            "spans_in_trace": len(spans),
            "span_names": sorted({span.name for span in spans}),
            "faults": dict(sorted(self.faults.items())),
            "open_spans": self.telemetry.open_spans,
            "metrics": self.telemetry.metrics.snapshot(),
        }


def _make_counter(site: Site):
    counter = site.create_object(display_name="traced-counter")
    counter.define_fixed_data("count", 0)
    counter.define_fixed_method(
        "add",
        "n = self.get('count') + (args[0] if args else 1)\n"
        "self.set('count', n)\n"
        "return n",
    )
    counter.seal()
    return counter


def run_traced_scenario(seed: int = 0) -> TracedScenarioReport:
    """Run the acceptance workload; see the module docstring."""
    simulator = Simulator(seed)
    network = Network(simulator)
    sites: dict[str, Site] = {}
    managers: dict[str, MobilityManager] = {}
    for name in ("alpha", "beta", "gamma"):
        site = Site(network, name, f"dom.{name}")
        site.retry_policy = TRACE_POLICY
        sites[name] = site
        managers[name] = MobilityManager(site)
    network.topology.connect("alpha", "beta", *LAN)
    network.topology.connect("alpha", "gamma", *LAN)
    network.topology.connect("beta", "gamma", *LAN)

    plane = FaultPlane(network, seed, scenario=f"trace-{seed}")
    # deterministic chaos: the first invoke request vanishes (forcing a
    # retry), and the retry is duplicated (forcing a dedup replay)
    plane.add(DropInjector(rate=1.0, limit=1, only_kinds={"invoke"}))
    plane.add(DuplicateInjector(rate=1.0, spread=0.02, limit=1,
                                only_kinds={"invoke"}))

    with enabled(Telemetry()) as tel:
        counter = _make_counter(sites["alpha"])
        sites["alpha"].register_object(counter)
        owner = counter.owner
        with tel.span("scenario", {"seed": seed}) as root:
            remote_result = sites["beta"].remote_invoke(
                "alpha", counter.guid, "add", [41], caller=owner
            )
            ref = managers["alpha"].migrate(counter, "gamma")
            root.set(migrated_to=ref.site)
        network.run()  # drain stragglers (the duplicate, late replies)
        final_count = sites["gamma"].local_object(counter.guid).get_data(
            "count", caller=owner
        )
        trace_id = root.trace_id

    return TracedScenarioReport(
        seed=seed,
        trace_id=trace_id,
        remote_result=remote_result,
        migrated_to=ref.site,
        final_count=final_count,
        faults=dict(sorted(plane.counts.items())),
        telemetry=tel,
        plane=plane,
    )
