"""Exporters: the three readable forms of a telemetry capture.

* :func:`span_lines` / :func:`write_spans_jsonl` — JSON-lines, one span
  per line, the machine-readable trace export (schema in
  :mod:`repro.telemetry.schema`, validated by ``make trace-smoke``);
* :func:`render_tree` — a human-readable trace tree, one trace per
  block, children indented under parents;
* :func:`metrics_snapshot` / :func:`write_bench_json` — a
  ``BENCH_*.json``-compatible metrics snapshot, the format the perf
  trajectory is tracked in.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from .metrics import MetricsRegistry
from .spans import Span

__all__ = [
    "span_lines",
    "write_spans_jsonl",
    "render_tree",
    "metrics_snapshot",
    "write_bench_json",
    "BENCH_SCHEMA",
]

#: Schema tag stamped into every BENCH_*.json snapshot.
BENCH_SCHEMA = "mrom-bench/1"


# ---------------------------------------------------------------------------
# JSON-lines spans
# ---------------------------------------------------------------------------


def span_lines(spans: Iterable[Span]) -> Iterator[str]:
    """One compact JSON object per span, in recording order."""
    for span in spans:
        yield json.dumps(span.to_mapping(), sort_keys=True, default=repr)


def write_spans_jsonl(path: str | Path, spans: Iterable[Span]) -> int:
    """Write the JSON-lines export; returns the number of spans written."""
    lines = list(span_lines(spans))
    Path(path).write_text(
        "".join(line + "\n" for line in lines), encoding="utf-8"
    )
    return len(lines)


# ---------------------------------------------------------------------------
# the trace tree
# ---------------------------------------------------------------------------


def render_tree(spans: Iterable[Span]) -> list[str]:
    """Human-readable trace trees, one line per span or event.

    Spans whose parent never finished (or belongs to another capture)
    are shown at the root flagged ``[orphan]`` — visible, never hidden.
    """
    spans = list(spans)
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)

    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        indent = "  " * depth
        orphan = " [orphan]" if span.parent_id and span.parent_id not in by_id else ""
        status = "" if span.status == "ok" else f" !{span.status}"
        attrs = ""
        if span.attrs:
            shown = ", ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            attrs = f" ({shown})"
        lines.append(
            f"{indent}{span.name} [{span.duration_us:.1f}us]"
            f"{status}{attrs}{orphan}"
        )
        for event in span.events:
            event_attrs = ""
            if event.attrs:
                shown = ", ".join(
                    f"{key}={value}" for key, value in sorted(event.attrs.items())
                )
                event_attrs = f" ({shown})"
            lines.append(f"{indent}  * {event.name}{event_attrs}")
        for child in children.get(span.span_id, []):
            emit(child, depth + 1)

    roots = children.get(None, [])
    traces: dict[str, list[Span]] = {}
    for root in roots:
        traces.setdefault(root.trace_id, []).append(root)
    for trace_id, trace_roots in traces.items():
        lines.append(f"trace {trace_id}")
        for root in trace_roots:
            emit(root, 1)
    return lines


# ---------------------------------------------------------------------------
# BENCH_*.json metrics snapshots
# ---------------------------------------------------------------------------


def metrics_snapshot(
    registry: MetricsRegistry,
    name: str,
    extra: Mapping[str, Any] | None = None,
) -> dict:
    """The BENCH-compatible snapshot mapping for *registry*."""
    snapshot = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "metrics": registry.snapshot(),
    }
    if extra:
        snapshot["extra"] = dict(extra)
    return snapshot


def write_bench_json(
    path: str | Path,
    registry: MetricsRegistry,
    name: str,
    extra: Mapping[str, Any] | None = None,
) -> dict:
    """Write ``BENCH_<name>.json``-style output; returns the snapshot."""
    snapshot = metrics_snapshot(registry, name, extra)
    Path(path).write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return snapshot
