"""The JSON-lines span schema, and a dependency-free validator.

``make trace-smoke`` runs one instrumented migration and validates the
export with :func:`validate_span_lines`; tests use
:func:`validate_span_mapping` directly. The validator is hand-rolled
(the container ships no jsonschema) but the schema below is an honest
JSON-Schema-shaped description of the line format, kept in sync with
:meth:`repro.telemetry.spans.Span.to_mapping`.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = ["SPAN_LINE_SCHEMA", "validate_span_mapping", "validate_span_lines"]

#: Descriptive schema of one exported span line (documentation + the
#: source of truth the validator below enforces).
SPAN_LINE_SCHEMA: dict = {
    "type": "object",
    "required": [
        "trace_id", "span_id", "parent_id", "name",
        "start_ns", "end_ns", "duration_us", "status", "attrs", "events",
    ],
    "properties": {
        "trace_id": {"type": "string", "minLength": 1},
        "span_id": {"type": "string", "minLength": 1},
        "parent_id": {"type": ["string", "null"]},
        "name": {"type": "string", "minLength": 1},
        "start_ns": {"type": "integer"},
        "end_ns": {"type": ["integer", "null"]},
        "duration_us": {"type": "number"},
        "status": {"type": "string", "minLength": 1},
        "attrs": {"type": "object"},
        "events": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "time_ns"],
                "properties": {
                    "name": {"type": "string", "minLength": 1},
                    "time_ns": {"type": "integer"},
                    "attrs": {"type": "object"},
                },
            },
        },
    },
}


def _type_error(path: str, expected: str, value: Any) -> str:
    return f"{path}: expected {expected}, got {type(value).__name__} ({value!r})"


def validate_span_mapping(span: Any, line_no: int | None = None) -> list[str]:
    """Errors (empty list = valid) for one decoded span line."""
    where = f"line {line_no}" if line_no is not None else "span"
    errors: list[str] = []
    if not isinstance(span, Mapping):
        return [_type_error(where, "object", span)]
    for field in SPAN_LINE_SCHEMA["required"]:
        if field not in span:
            errors.append(f"{where}.{field}: missing required field")
    checks = (
        ("trace_id", str, False), ("span_id", str, False),
        ("name", str, False), ("status", str, False),
        ("parent_id", str, True), ("start_ns", int, False),
        ("end_ns", int, True), ("duration_us", (int, float), False),
    )
    for field, kind, nullable in checks:
        if field not in span:
            continue
        value = span[field]
        if value is None:
            if not nullable:
                errors.append(f"{where}.{field}: must not be null")
            continue
        if isinstance(value, bool) or not isinstance(value, kind):
            expected = kind.__name__ if isinstance(kind, type) else "number"
            errors.append(_type_error(f"{where}.{field}", expected, value))
        elif kind is str and not value:
            errors.append(f"{where}.{field}: must be non-empty")
    if "attrs" in span and not isinstance(span["attrs"], Mapping):
        errors.append(_type_error(f"{where}.attrs", "object", span["attrs"]))
    if "events" in span:
        events = span["events"]
        if not isinstance(events, list):
            errors.append(_type_error(f"{where}.events", "array", events))
        else:
            for index, event in enumerate(events):
                prefix = f"{where}.events[{index}]"
                if not isinstance(event, Mapping):
                    errors.append(_type_error(prefix, "object", event))
                    continue
                name = event.get("name")
                if not isinstance(name, str) or not name:
                    errors.append(f"{prefix}.name: must be a non-empty string")
                time_ns = event.get("time_ns")
                if isinstance(time_ns, bool) or not isinstance(time_ns, int):
                    errors.append(_type_error(f"{prefix}.time_ns", "int", time_ns))
                if "attrs" in event and not isinstance(event["attrs"], Mapping):
                    errors.append(
                        _type_error(f"{prefix}.attrs", "object", event["attrs"])
                    )
    return errors


def validate_span_lines(text: str) -> list[str]:
    """Validate a whole JSON-lines export; returns all errors found."""
    errors: list[str] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            decoded = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {line_no}: not valid JSON: {exc}")
            continue
        errors.extend(validate_span_mapping(decoded, line_no))
    return errors
