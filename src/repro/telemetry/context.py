"""Trace context: the identity a distributed trace carries on the wire.

A :class:`TraceContext` is the (trace-id, span-id, baggage) triple that
makes one logical operation followable across sites: it is minted at the
first instrumented invocation, stamped into RMI request envelopes (under
:data:`~repro.net.marshal.TRACE_FIELD`) and into migration packages, and
re-activated by the receiving site so that server-side spans parent to
the caller's span even though the two sides share no Python state.

The wire form is a plain string mapping, so it survives the tagged
binary marshal byte-for-byte and a hostile peer can at worst send an
unusable context (which decodes to ``None``), never a crash.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["TraceContext"]


class TraceContext:
    """Immutable propagation state of one trace position.

    ``trace_id`` names the whole distributed trace; ``span_id`` names the
    span this context speaks for (the parent of any child created from
    it); ``baggage`` is a small string→string mapping that travels with
    the trace (e.g. the workload name) and is inherited by children.
    """

    __slots__ = ("trace_id", "span_id", "baggage")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        baggage: Mapping[str, str] | None = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.baggage: dict[str, str] = dict(baggage) if baggage else {}

    def child(self, span_id: str) -> "TraceContext":
        """The context a child span carries: same trace, new span id."""
        return TraceContext(self.trace_id, span_id, self.baggage)

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> dict:
        """A marshal-friendly mapping (strings only)."""
        wire = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.baggage:
            wire["baggage"] = dict(self.baggage)
        return wire

    @classmethod
    def from_wire(cls, raw: Any) -> "TraceContext | None":
        """Decode a wire mapping; malformed input yields ``None`` (a
        broken peer must never break the receiver's telemetry)."""
        if not isinstance(raw, Mapping):
            return None
        trace_id = raw.get("trace_id")
        span_id = raw.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        if not trace_id or not span_id:
            return None
        baggage = raw.get("baggage")
        if not isinstance(baggage, Mapping):
            baggage = None
        else:
            baggage = {
                str(key): str(value) for key, value in baggage.items()
            }
        return cls(trace_id, span_id, baggage)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
            and other.baggage == self.baggage
        )

    def __repr__(self) -> str:
        return f"TraceContext(trace={self.trace_id}, span={self.span_id})"
