"""The structured event stream: the third leg of the telemetry plane.

Where spans are *intervals* and metrics are *aggregates*, the
:class:`EventLog` is the flat, ordered stream of discrete happenings —
audit records, lifecycle notices, anything a subsystem wants on the
record without owning its own list. :mod:`repro.security.audit` routes
its records through here (one emit path), and exporters can interleave
the stream with spans by timestamp.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

__all__ = ["TelemetryEvent", "EventLog"]


class TelemetryEvent:
    """One structured event: a name, a timestamp, free-form attributes."""

    __slots__ = ("name", "time", "attrs")

    def __init__(self, name: str, time: float, attrs: Mapping[str, Any] | None = None):
        self.name = name
        self.time = time
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}

    def to_mapping(self) -> dict:
        # non-serialisable attribute values (live objects a producer
        # stashed for in-process queries) render as their repr
        attrs = {}
        for key, value in self.attrs.items():
            if isinstance(value, (str, int, float, bool, type(None))):
                attrs[key] = value
            else:
                attrs[key] = repr(value)
        return {"name": self.name, "time": self.time, "attrs": attrs}

    def __repr__(self) -> str:
        return f"TelemetryEvent({self.name!r}, t={self.time})"


class EventLog:
    """Append-only structured event stream with simple queries.

    *cap* bounds retention (None = unbounded — the right default for the
    short-lived simulated hosts this reproduction runs; a long-lived
    deployment passes a cap and accepts eviction, counted in
    :attr:`evicted`). Subscribers see every event at emit time,
    regardless of retention.
    """

    def __init__(self, cap: int | None = None):
        self.cap = cap
        self.evicted = 0
        self._events: list[TelemetryEvent] = []
        self._subscribers: list[Callable[[TelemetryEvent], None]] = []

    def subscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        self._subscribers.append(callback)

    def emit(self, name: str, time: float = 0.0, **attrs: Any) -> TelemetryEvent:
        event = TelemetryEvent(name, time, attrs)
        self._events.append(event)
        if self.cap is not None and len(self._events) > self.cap:
            overflow = len(self._events) - self.cap
            del self._events[:overflow]
            self.evicted += overflow
        for callback in self._subscribers:
            callback(event)
        return event

    # -- queries -----------------------------------------------------------

    def events(
        self,
        prefix: str = "",
        **attr_filter: Any,
    ) -> list[TelemetryEvent]:
        """Events whose name starts with *prefix* and whose attributes
        match every key/value in *attr_filter*."""
        matched = []
        for event in self._events:
            if prefix and not event.name.startswith(prefix):
                continue
            if any(
                event.attrs.get(key) != value
                for key, value in attr_filter.items()
            ):
                continue
            matched.append(event)
        return matched

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TelemetryEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return f"EventLog({len(self._events)} events)"
