"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the accounting half of the telemetry
plane: instrumentation sites increment named counters (invocations,
coercions, migrations, retries, dedup hits, admission refusals, ...),
set gauges, and observe histogram samples. Instruments are get-or-create
by name, so call sites never need registration ceremony, and the whole
registry renders to one flat mapping via :meth:`MetricsRegistry.snapshot`
— the form the ``BENCH_*.json`` exporter writes.

Histograms use *fixed* bucket boundaries chosen at creation (defaults
span 1µs to 10s), so two runs of the same workload produce structurally
identical snapshots that can be diffed numerically.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram boundaries (seconds): 1µs .. 10s, roughly
#: logarithmic. A sample larger than every boundary lands in +Inf.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that goes up and down (queue depths, live objects)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> float:
        self.value = value
        return self.value

    def inc(self, amount: float = 1.0) -> float:
        self.value += amount
        return self.value

    def dec(self, amount: float = 1.0) -> float:
        self.value -= amount
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-boundary bucketed distribution with sum and count.

    ``counts[i]`` counts samples ``<= boundaries[i]``; the final slot is
    the +Inf bucket. Buckets are cumulative-friendly but stored
    per-bucket (non-cumulative) for readable snapshots.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "count", "min", "max")

    def __init__(self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS):
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError(
                f"histogram {name!r} needs sorted, non-empty boundaries"
            )
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.total = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.boundaries):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "boundaries": list(self.boundaries),
            "buckets": list(self.counts),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.6g})"


class MetricsRegistry:
    """Named instruments, get-or-create, one flat snapshot."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, boundaries)
        return histogram

    # -- bulk reads --------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Read a counter without creating it (0 when absent)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def names(self) -> Iterable[str]:
        yield from sorted(self._counters)
        yield from sorted(self._gauges)
        yield from sorted(self._histograms)

    def snapshot(self) -> dict:
        """Everything, sorted by name: the exporter input."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )
