"""The one global the instrumentation hot paths read.

Every instrumentation site in the runtime is guarded by::

    tel = _telemetry.ACTIVE
    if tel is not None:
        ...

Keeping :data:`ACTIVE` in its own leaf module (no imports) means the
guard costs one module-attribute load and an identity test — O(1) and
allocation-free — and that core modules can import it without creating a
cycle through :mod:`repro.telemetry` proper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Telemetry

__all__ = ["ACTIVE"]

#: The active :class:`~repro.telemetry.runtime.Telemetry` instance, or
#: None when the plane is disabled (the default). Mutated only by
#: :func:`repro.telemetry.runtime.enable` / ``disable``.
ACTIVE: "Telemetry | None" = None
