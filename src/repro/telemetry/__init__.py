"""repro.telemetry — the observability plane of the reproduction.

Three coordinated primitives, one switch:

* **Distributed tracing** — :class:`TraceContext` travels inside RMI
  request envelopes and migration packages, so a single trace id follows
  an object across sites and hops; :class:`Span` s record what each side
  did, with structured events (ACL outcomes, invocation phases,
  PREPARE/COMMIT/ABORT, fault injections).
* **Metrics** — a process-local :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms (invocations, coercions,
  migrations, retries, dedup hits, admission refusals, ...).
* **Events** — a flat :class:`EventLog` stream; the security audit log
  routes its records through it.

Enable with :func:`enable` (or ``with enabled() as tel:``); when
disabled — the default — every instrumentation site reduces to a single
``ACTIVE is None`` test, so the untraced hot path stays O(1) and
allocation-free. Exporters render captures as JSON-lines spans, a
human-readable trace tree, or a ``BENCH_*.json`` metrics snapshot; the
``repro trace`` CLI drives all three. See ``docs/TELEMETRY.md``.
"""

from .context import TraceContext
from .events import EventLog, TelemetryEvent
from .exporters import (
    metrics_snapshot,
    render_tree,
    span_lines,
    write_bench_json,
    write_spans_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import Telemetry, active, disable, enable, enabled
from .schema import SPAN_LINE_SCHEMA, validate_span_lines, validate_span_mapping
from .spans import Span, SpanEvent, SpanRecorder

__all__ = [
    "TraceContext",
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventLog",
    "TelemetryEvent",
    "Telemetry",
    "enable",
    "disable",
    "active",
    "enabled",
    "span_lines",
    "write_spans_jsonl",
    "render_tree",
    "metrics_snapshot",
    "write_bench_json",
    "SPAN_LINE_SCHEMA",
    "validate_span_lines",
    "validate_span_mapping",
]
