"""The telemetry runtime: span lifecycle, context stack, global switch.

One :class:`Telemetry` instance owns the three planes — a
:class:`~repro.telemetry.spans.SpanRecorder`, a
:class:`~repro.telemetry.metrics.MetricsRegistry`, and an
:class:`~repro.telemetry.events.EventLog` — plus the *context stack*
that makes nesting work: :meth:`Telemetry.begin_span` parents a new span
under whatever is current (a local parent span, or a
:class:`~repro.telemetry.context.TraceContext` a site re-activated from
the wire) and pushes it; :meth:`Telemetry.end_span` pops it.

The switch is :data:`repro.telemetry.state.ACTIVE`. Instrumentation
sites read it once per operation; when it is ``None`` (the default) they
fall straight through — the disabled path is a single identity test,
which is what keeps the fig-1 overhead under the 2% budget.

Span and trace identifiers are minted from a per-instance counter, not
from entropy, so a seeded workload produces the *same ids* every run —
telemetry inherits the determinism of the simulator underneath it.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from typing import Any, Callable, Mapping

from . import state
from .context import TraceContext
from .events import EventLog
from .metrics import MetricsRegistry
from .spans import Span, SpanRecorder

__all__ = ["Telemetry", "enable", "disable", "active", "enabled"]


class Telemetry:
    """The assembled telemetry plane for one process."""

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        span_cap: int = 100_000,
        event_cap: int | None = None,
        id_prefix: str = "",
    ):
        self.clock = clock
        self.recorder = SpanRecorder(cap=span_cap)
        self.metrics = MetricsRegistry()
        self.events = EventLog(cap=event_cap)
        self._ids = itertools.count(1)
        self._id_prefix = id_prefix
        #: the context stack: TraceContext entries for remote parents,
        #: Span entries for local parents (a Span *is* positional state)
        self._stack: list[Span | TraceContext] = []

    # -- identifiers -------------------------------------------------------

    def _next_id(self, kind: str) -> str:
        return f"{self._id_prefix}{kind}{next(self._ids):08x}"

    # -- the context stack -------------------------------------------------

    @property
    def current_span(self) -> Span | None:
        """The innermost *local* open span, if any."""
        for entry in reversed(self._stack):
            if isinstance(entry, Span):
                return entry
        return None

    def current_context(self) -> TraceContext | None:
        """The propagation context of the innermost stack entry."""
        if not self._stack:
            return None
        top = self._stack[-1]
        if isinstance(top, TraceContext):
            return top
        return TraceContext(top.trace_id, top.span_id)

    def context_of(self, span: Span) -> TraceContext:
        return TraceContext(span.trace_id, span.span_id)

    def activate(self, context: TraceContext) -> TraceContext:
        """Push a remote parent (a context that arrived on the wire)."""
        self._stack.append(context)
        return context

    def deactivate(self, context: TraceContext) -> None:
        """Pop a previously activated remote parent (LIFO discipline)."""
        if self._stack and self._stack[-1] is context:
            self._stack.pop()
        elif context in self._stack:  # defensive: unbalanced nesting
            self._stack.remove(context)

    # -- span lifecycle ----------------------------------------------------

    def begin_span(
        self,
        name: str,
        attrs: Mapping[str, Any] | None = None,
        parent: TraceContext | None = None,
    ) -> Span:
        """Open a span under *parent* (default: whatever is current).

        With no parent anywhere, this is the moment a new trace is born —
        "created at the first meta-method invocation" in the tentpole's
        terms — and the span becomes the trace root.
        """
        if parent is None:
            parent = self.current_context()
        if parent is None:
            trace_id = self._next_id("t")
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=self._next_id("s"),
            parent_id=parent_id,
            name=name,
            attrs=attrs,
            clock=self.clock,
        )
        self._stack.append(span)
        return span

    def end_span(self, span: Span, status: str = "ok") -> Span:
        """Close *span*, pop it from the stack, and record it."""
        span.end(status)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # defensive: unbalanced nesting
            self._stack.remove(span)
        self.recorder.record(span)
        return span

    @contextmanager
    def span(self, name: str, attrs: Mapping[str, Any] | None = None):
        """``with tel.span("name") as s:`` — ends with ok/error status."""
        span = self.begin_span(name, attrs)
        try:
            yield span
        except BaseException:
            self.end_span(span, status="error")
            raise
        self.end_span(span)

    @property
    def open_spans(self) -> int:
        return sum(1 for entry in self._stack if isinstance(entry, Span))

    def __repr__(self) -> str:
        return (
            f"Telemetry({len(self.recorder)} spans recorded, "
            f"{self.open_spans} open, {len(self.events)} events)"
        )


def enable(telemetry: Telemetry | None = None, **options: Any) -> Telemetry:
    """Switch the telemetry plane on (idempotent: re-enabling with no
    instance keeps the current one). Returns the active instance."""
    if telemetry is None:
        telemetry = state.ACTIVE if state.ACTIVE is not None else Telemetry(**options)
    state.ACTIVE = telemetry
    return telemetry


def disable() -> Telemetry | None:
    """Switch the plane off; returns the instance that was active (its
    recorded spans and metrics remain readable after the switch)."""
    telemetry = state.ACTIVE
    state.ACTIVE = None
    return telemetry


def active() -> Telemetry | None:
    """The active instance, or None. Hooks on hot paths should read
    :data:`repro.telemetry.state.ACTIVE` directly instead."""
    return state.ACTIVE


@contextmanager
def enabled(telemetry: Telemetry | None = None, **options: Any):
    """``with enabled() as tel:`` — scoped activation (tests, CLI)."""
    previous = state.ACTIVE
    telemetry = enable(telemetry if telemetry is not None else Telemetry(**options))
    try:
        yield telemetry
    finally:
        state.ACTIVE = previous
