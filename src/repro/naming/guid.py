"""Decentralized identity: globally unique object names without a registry.

"there should be built-in decentralized mechanisms for assigning distinct
names for objects" (Section 1). No central authority can exist in a
system that is unbounded in "number, size, or geographical dispersion",
so a :class:`Guid` is minted locally from three components:

* the minting **site** identifier (sites pick their own names; two sites
  with the same name in the same internetwork is a deployment error the
  transport refuses);
* a **Lamport timestamp**, merged on every message receipt so identities
  also carry a causal ordering usable by replication layers;
* a per-site **counter**, disambiguating identities minted at the same
  logical time.

The textual form is ``mrom://<site>/<lamport>.<counter>``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..core.errors import NamingError

__all__ = ["Guid", "GuidFactory", "parse_guid", "is_guid_text"]

_GUID_RE = re.compile(
    r"^mrom://(?P<site>[A-Za-z0-9_.-]+)/(?P<lamport>\d+)\.(?P<counter>\d+)$"
)


@dataclass(frozen=True, order=True)
class Guid:
    """A decentralized globally unique identity.

    Ordering is lexicographic on (site, lamport, counter) — stable and
    total, which keeps container iteration and test output deterministic.
    """

    site: str
    lamport: int
    counter: int

    def text(self) -> str:
        return f"mrom://{self.site}/{self.lamport}.{self.counter}"

    def __str__(self) -> str:
        return self.text()


def parse_guid(text: str) -> Guid:
    """Parse the ``mrom://site/lamport.counter`` textual form."""
    match = _GUID_RE.match(text)
    if match is None:
        raise NamingError(f"not a guid: {text!r}")
    return Guid(
        site=match.group("site"),
        lamport=int(match.group("lamport")),
        counter=int(match.group("counter")),
    )


def is_guid_text(text: str) -> bool:
    return bool(_GUID_RE.match(text))


class GuidFactory:
    """Per-site identity mint with a built-in Lamport clock.

    >>> mint = GuidFactory("haifa")
    >>> first, second = mint.fresh(), mint.fresh()
    >>> first != second and first.site == "haifa"
    True
    """

    __slots__ = ("site", "_lamport", "_counter")

    def __init__(self, site: str):
        if not site or "/" in site:
            raise NamingError(f"invalid site identifier {site!r}")
        self.site = site
        self._lamport = 0
        self._counter = 0

    @property
    def lamport(self) -> int:
        return self._lamport

    def tick(self) -> int:
        """Advance the local logical clock (a local event occurred)."""
        self._lamport += 1
        return self._lamport

    def witness(self, remote_lamport: int) -> int:
        """Merge a remote clock observed on a received message."""
        self._lamport = max(self._lamport, remote_lamport) + 1
        return self._lamport

    def fresh(self) -> Guid:
        """Mint a new identity; never returns the same one twice."""
        self._counter += 1
        return Guid(site=self.site, lamport=self.tick(), counter=self._counter)

    def fresh_text(self) -> str:
        return self.fresh().text()

    def __repr__(self) -> str:
        return (
            f"GuidFactory(site={self.site!r}, lamport={self._lamport}, "
            f"minted={self._counter})"
        )
