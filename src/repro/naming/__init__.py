"""Decentralized identity and naming (requirement 6 of the paper)."""

from .directory import ClusterManager, DirectoryClient, DirectoryShard, Lease
from .guid import Guid, GuidFactory, is_guid_text, parse_guid
from .namespace import NameService, join_path, split_path
from .ring import HashRing

__all__ = [
    "Guid",
    "GuidFactory",
    "parse_guid",
    "is_guid_text",
    "NameService",
    "split_path",
    "join_path",
    "HashRing",
    "Lease",
    "DirectoryShard",
    "DirectoryClient",
    "ClusterManager",
]
