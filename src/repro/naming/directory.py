"""The partitioned naming directory and its lease protocol.

Three cooperating pieces turn the hash ring into a cluster service:

* :class:`DirectoryShard` — one partition of the name→site directory,
  attached to a site as the ``dir.resolve`` / ``dir.update`` handlers.
  Entries carry a monotonically increasing *placement generation*;
  updates regressing a generation are refused, so late or replayed
  ``dir.update`` messages (duplicates, reorders, retries) cannot roll
  the directory back. Entries are soft state: a shard that loses them
  (a crash) is rebuilt from the authoritative placements via
  :meth:`ClusterManager.republish`.
* :class:`DirectoryClient` — the client half: resolves names through
  the ring-designated shard, caches the resulting :class:`Lease`, and
  invokes through it. A lease is *invalidated by evidence*, not by
  time: a serving site that has moved past the lease's generation
  refuses with a typed
  :class:`~repro.core.errors.StaleLeaseError` carrying its current
  generation (the MutationClock trick from ``core/fastpath.py`` applied
  to placement), and the client drops the lease, re-resolves and
  retries — bounded by ``max_redirects``.
* :class:`ClusterManager` — the serving half: the per-site placement
  table (name → guid, generation, active/moving), the ``cluster.*``
  handlers, and migration. A migration rides the mobility layer's
  two-phase handoff; the placement removal, the destination's adoption
  under the bumped generation, and the shard update all happen inside
  the transfer's resolution hook — the commit point — so exactly-once
  transfer and lease invalidation land atomically. At every instant at
  most one site holds an *active* placement for a name: a client can
  be told "stale", but never get a silent success from the wrong site.

Telemetry (when enabled) counts ``directory.hits`` / ``.misses`` /
``.stale`` / ``.stale_served`` / ``.updates`` / ``.stale_updates`` and
the client cache's ``directory.cache.hits`` / ``.cache.misses``; the
same tallies are kept as plain attributes so reports stay closed-form
with telemetry off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..core.errors import (
    MobilityError,
    MROMError,
    NamingError,
    StaleLeaseError,
    TransferUnresolvedError,
)
from ..telemetry import state as _telemetry
from .ring import HashRing

if TYPE_CHECKING:  # pragma: no cover
    from ..net.rmi import BatchFuture, RetryPolicy
    from ..net.site import Site
    from ..net.transport import Message

__all__ = ["DirectoryShard", "DirectoryClient", "Lease", "ClusterManager"]


def _count(name: str) -> None:
    tel = _telemetry.ACTIVE
    if tel is not None:
        tel.metrics.counter(name).inc()


class DirectoryShard:
    """One partition of the name→site directory, served by one site."""

    def __init__(self, site: "Site", ring: HashRing | None = None):
        self.site = site
        self.ring = ring
        #: name -> {"guid", "site", "generation"}
        self.entries: dict[str, dict] = {}
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.updates = 0
        self.stale_updates = 0
        site.add_handler("dir.resolve", self._handle_resolve)
        site.add_handler("dir.update", self._handle_update)

    def _handle_resolve(self, message: "Message") -> dict:
        payload = message.payload if isinstance(message.payload, Mapping) else {}
        name = str(payload.get("name", ""))
        self.lookups += 1
        entry = self.entries.get(name)
        if entry is None:
            self.misses += 1
            _count("directory.misses")
            raise NamingError(
                f"directory shard {self.site.site_id!r} has no entry "
                f"for {name!r}"
            )
        self.hits += 1
        _count("directory.hits")
        return {"name": name, **entry}

    def _handle_update(self, message: "Message") -> dict:
        payload = message.payload if isinstance(message.payload, Mapping) else {}
        return self.apply_update(payload)

    def apply_update(self, payload: Mapping) -> dict:
        """Apply one placement update; shared by the wire handler and
        same-site (owner == publisher) fast paths."""
        name = str(payload.get("name", ""))
        guid = str(payload.get("guid", ""))
        site_id = str(payload.get("site", ""))
        generation = int(payload.get("generation", 0))
        if not name or not guid or not site_id or generation < 1:
            raise NamingError(f"malformed directory update for {name!r}")
        current = self.entries.get(name)
        if current is not None and generation < current["generation"]:
            # a replayed or out-of-order update from an older move: the
            # entry has already advanced past it — monotonic generations
            # are the whole invalidation story, never regress
            self.stale_updates += 1
            _count("directory.stale_updates")
            return {"applied": False, "generation": current["generation"]}
        self.entries[name] = {
            "guid": guid, "site": site_id, "generation": generation,
        }
        self.updates += 1
        _count("directory.updates")
        return {"applied": True, "generation": generation}

    def forget(self) -> None:
        """Drop every entry — the shard-crash model. The directory is
        soft state: :meth:`ClusterManager.republish` rebuilds it from
        the placements, which remain authoritative."""
        self.entries.clear()

    def to_mapping(self) -> dict:
        return {
            "site": self.site.site_id,
            "entries": len(self.entries),
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "updates": self.updates,
            "stale_updates": self.stale_updates,
        }


@dataclass(frozen=True)
class Lease:
    """A client-cached resolution: where *name* lived, at which
    placement generation. Never expires by time — it is invalidated by
    a :class:`~repro.core.errors.StaleLeaseError` from the wire."""

    name: str
    guid: str
    site: str
    generation: int


class DirectoryClient:
    """Resolve-and-cache client over the sharded directory."""

    def __init__(
        self,
        site: "Site",
        ring: HashRing,
        retry_policy: "RetryPolicy | None" = None,
        max_redirects: int = 6,
    ):
        self.site = site
        self.ring = ring
        self.retry_policy = retry_policy
        self.max_redirects = int(max_redirects)
        self.leases: dict[str, Lease] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.stale = 0
        self.refreshes = 0

    # -- resolution ----------------------------------------------------------

    def lease_for(self, name: str, refresh: bool = False) -> Lease:
        """The cached lease for *name*, resolving through the ring's
        shard on a miss (or unconditionally with ``refresh=True``)."""
        if not refresh:
            lease = self.leases.get(name)
            if lease is not None:
                self.cache_hits += 1
                _count("directory.cache.hits")
                return lease
        self.cache_misses += 1
        _count("directory.cache.misses")
        reply = self.site.request(
            self.ring.owner(name), "dir.resolve", {"name": name},
            policy=self.retry_policy,
        )
        return self._admit(name, reply)

    def invalidate(self, name: str) -> None:
        self.leases.pop(name, None)

    def _admit(self, name: str, reply: Any) -> Lease:
        if not isinstance(reply, Mapping):
            raise NamingError(f"malformed directory reply for {name!r}")
        lease = Lease(
            name=name,
            guid=str(reply.get("guid", "")),
            site=str(reply.get("site", "")),
            generation=int(reply.get("generation", 0)),
        )
        cached = self.leases.get(name)
        if cached is None or lease.generation >= cached.generation:
            self.leases[name] = lease
        return self.leases[name]

    def _note_stale(self, name: str) -> None:
        self.stale += 1
        _count("directory.stale")
        self.invalidate(name)

    # -- invocation through leases -------------------------------------------

    def invoke(self, name: str, method: str, args: Sequence = (), caller=None):
        """Invoke *method* on the object behind *name*, following stale
        leases: each :class:`StaleLeaseError` drops the lease and
        re-resolves, up to ``max_redirects`` times."""
        last: StaleLeaseError | None = None
        for attempt in range(self.max_redirects + 1):
            lease = self.lease_for(name, refresh=attempt > 0)
            try:
                return self.site.request(
                    lease.site,
                    "cluster.invoke",
                    {
                        "name": name,
                        "generation": lease.generation,
                        "method": method,
                        "args": list(args),
                        "caller": self.site._caller_payload(caller),
                    },
                    policy=self.retry_policy,
                )
            except StaleLeaseError as exc:
                self._note_stale(name)
                last = exc
        assert last is not None
        raise last

    def invoke_async(
        self, name: str, method: str, args: Sequence = (), caller=None
    ) -> "BatchFuture":
        """The driver-shaped path: returns a future that follows stale
        redirects internally (lease → invoke → on stale: re-resolve →
        re-invoke) and settles with the final result or typed error."""
        from ..net.rmi import BatchFuture

        outer: BatchFuture = BatchFuture()
        payload = {
            "name": name,
            "method": method,
            "args": list(args),
            "caller": self.site._caller_payload(caller),
        }
        lease = self.leases.get(name)
        if lease is None:
            self._resolve_then(outer, name, payload, self.max_redirects)
        else:
            self.cache_hits += 1
            _count("directory.cache.hits")
            self._dispatch(outer, name, payload, self.max_redirects, lease)
        return outer

    def refresh_async(self, name: str) -> "BatchFuture":
        """Unconditional re-resolve — the 'describe' of the cluster mix;
        settles with the admitted :class:`Lease`."""
        from ..net.rmi import BatchFuture

        outer: BatchFuture = BatchFuture()
        self.refreshes += 1
        inner = self.site.request_async(
            self.ring.owner(name), "dir.resolve", {"name": name},
            policy=self.retry_policy,
        )

        def settled(future) -> None:
            error = future.error()
            if error is not None:
                outer._fail(error)
                return
            try:
                outer._resolve(self._admit(name, future.result()))
            except MROMError as exc:
                outer._fail(exc)

        inner.when_done(settled)
        return outer

    def _dispatch(self, outer, name, payload, redirects, lease) -> None:
        inner = self.site.request_async(
            lease.site,
            "cluster.invoke",
            {**payload, "generation": lease.generation},
            policy=self.retry_policy,
        )
        inner.when_done(
            lambda future: self._settle(outer, name, payload, redirects, future)
        )

    def _settle(self, outer, name, payload, redirects, inner) -> None:
        error = inner.error()
        if error is None:
            outer._resolve(inner.result())
            return
        if isinstance(error, StaleLeaseError) and redirects > 0:
            self._note_stale(name)
            self._resolve_then(outer, name, payload, redirects - 1)
            return
        outer._fail(error)

    def _resolve_then(self, outer, name, payload, redirects) -> None:
        self.cache_misses += 1
        _count("directory.cache.misses")
        inner = self.site.request_async(
            self.ring.owner(name), "dir.resolve", {"name": name},
            policy=self.retry_policy,
        )

        def settled(future) -> None:
            error = future.error()
            if error is not None:
                outer._fail(error)
                return
            try:
                lease = self._admit(name, future.result())
            except MROMError as exc:
                outer._fail(exc)
                return
            self._dispatch(outer, name, payload, redirects, lease)

        inner.when_done(settled)

    def to_mapping(self) -> dict:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "stale": self.stale,
            "refreshes": self.refreshes,
            "leases": len(self.leases),
        }


class ClusterManager:
    """Placements, the serving half of the lease protocol, and moves."""

    def __init__(
        self,
        site: "Site",
        ring: HashRing,
        mobility=None,
        retry_policy: "RetryPolicy | None" = None,
        shard: DirectoryShard | None = None,
    ):
        # lazy: the mobility package imports net.site, which imports naming
        from ..mobility import MobilityManager

        self.site = site
        self.ring = ring
        self.retry_policy = retry_policy
        self.mobility = (
            mobility if mobility is not None
            else MobilityManager(site, retry_policy=retry_policy)
        )
        self.shard = shard if shard is not None else DirectoryShard(site, ring)
        #: name -> {"guid", "generation", "state": "active" | "moving"}
        self.placements: dict[str, dict] = {}
        #: guid -> {"name", "dst", "generation"} for in-flight moves
        self._moves: dict[str, dict] = {}
        #: guid -> committed moves whose adopt/dir.update has not landed
        self.pending: dict[str, dict] = {}
        self.stale_served = 0
        #: real seconds slept per served invoke — the multi-process
        #: driver's latency-bound service model; the simulation uses
        #: ``site.service_delay`` instead and leaves this at zero
        self.service_sleep = 0.0
        site.add_handler("cluster.invoke", self._handle_invoke)
        site.add_handler("cluster.adopt", self._handle_adopt)
        site.add_handler("cluster.depart", self._handle_depart)
        site.add_handler("cluster.arrive", self._handle_arrive)
        site.add_handler("cluster.stats", self._handle_stats)
        self.mobility.resolution_hooks.append(self._transfer_resolved)

    # -- placement -----------------------------------------------------------

    def publish(self, obj, name: str) -> None:
        """Place *obj* here under *name* at generation 1 and tell the
        ring-designated shard."""
        if name in self.placements:
            raise NamingError(f"{name!r} is already placed at {self.site.site_id!r}")
        if not self.site.has_object(obj.guid):
            self.site.register_object(obj)
        self.placements[name] = {
            "guid": obj.guid, "generation": 1, "state": "active",
        }
        self._update_directory(name, obj.guid, self.site.site_id, 1)

    def republish(self) -> int:
        """Re-seed the directory from this site's active placements —
        the recovery path for a shard that lost its (soft) entries."""
        count = 0
        for name, entry in sorted(self.placements.items()):
            if entry["state"] != "active":
                continue
            try:
                self._update_directory(
                    name, entry["guid"], self.site.site_id, entry["generation"]
                )
                count += 1
            except MROMError:
                continue  # the shard is unreachable; a later pass retries
        return count

    def _update_directory(
        self, name: str, guid: str, site_id: str, generation: int
    ) -> None:
        owner = self.ring.owner(name)
        payload = {
            "name": name, "guid": guid, "site": site_id,
            "generation": generation,
        }
        if owner == self.site.site_id:
            self.shard.apply_update(payload)
        else:
            self.site.request(
                owner, "dir.update", payload, policy=self.retry_policy
            )

    # -- serving -------------------------------------------------------------

    def _refuse(self, name: str, entry: dict | None):
        self.stale_served += 1
        _count("directory.stale_served")
        generation = entry["generation"] if entry is not None else 0
        raise StaleLeaseError(name=name, generation=generation)

    def _handle_invoke(self, message: "Message"):
        body = message.payload if isinstance(message.payload, Mapping) else {}
        name = str(body.get("name", ""))
        generation = int(body.get("generation", -1))
        entry = self.placements.get(name)
        if entry is None or entry["state"] != "active":
            self._refuse(name, entry)
        if generation != entry["generation"]:
            # fail fast *before* touching the object: a stale lease must
            # never see a silent success from the wrong placement
            self._refuse(name, entry)
        if self.service_sleep:
            time.sleep(self.service_sleep)
        obj = self.site.local_object(entry["guid"])
        caller = self.site._caller_from(body.get("caller"))
        args = self.site.import_value(body.get("args", []))
        return obj.invoke(str(body.get("method", "")), args, caller=caller)

    def _handle_adopt(self, message: "Message") -> dict:
        body = message.payload if isinstance(message.payload, Mapping) else {}
        name = str(body.get("name", ""))
        guid = str(body.get("guid", ""))
        generation = int(body.get("generation", 0))
        current = self.placements.get(name)
        if current is not None and current["generation"] >= generation:
            # a replayed adopt from a move this site has already absorbed
            return {"adopted": False, "generation": current["generation"]}
        if not guid or not self.site.has_object(guid):
            raise MobilityError(
                f"cannot adopt {name!r}: {guid!r} is not resident at "
                f"{self.site.site_id!r}"
            )
        self.placements[name] = {
            "guid": guid, "generation": generation, "state": "active",
        }
        return {"adopted": True, "generation": generation}

    def _handle_depart(self, message: "Message") -> dict:
        """The coordinator-mediated move, sender half (multi-process
        driver): pack and drop the placement; the coordinator carries
        the package to ``cluster.arrive`` and updates the shard."""
        from ..mobility.package import pack

        body = message.payload if isinstance(message.payload, Mapping) else {}
        name = str(body.get("name", ""))
        entry = self.placements.get(name)
        if entry is None or entry["state"] != "active":
            self._refuse(name, entry)
        obj = self.site.local_object(entry["guid"])
        package = pack(obj)
        self.placements.pop(name, None)
        self.site.unregister_object(obj.guid)
        return {
            "package": package,
            "guid": obj.guid,
            "generation": entry["generation"] + 1,
        }

    def _handle_arrive(self, message: "Message") -> dict:
        """Coordinator-mediated move, receiver half."""
        body = message.payload if isinstance(message.payload, Mapping) else {}
        name = str(body.get("name", ""))
        generation = int(body.get("generation", 0))
        package = body.get("package")
        current = self.placements.get(name)
        if current is not None and current["generation"] >= generation:
            return {"guid": current["guid"], "generation": current["generation"]}
        if not isinstance(package, Mapping):
            raise MobilityError(f"cluster.arrive for {name!r} carries no package")
        report = self.mobility.install_package(
            package, src=str(body.get("src", message.src))
        )
        guid = str(report["guid"])
        self.placements[name] = {
            "guid": guid, "generation": generation, "state": "active",
        }
        return {"guid": guid, "generation": generation}

    def _handle_stats(self, message: "Message") -> dict:
        counts: dict[str, int] = {}
        placements: dict[str, dict] = {}
        for name, entry in sorted(self.placements.items()):
            placements[name] = {
                "guid": entry["guid"],
                "generation": entry["generation"],
                "state": entry["state"],
            }
            if entry["state"] != "active":
                continue
            if not self.site.has_object(entry["guid"]):
                continue
            obj = self.site.local_object(entry["guid"])
            try:
                counts[name] = int(obj.get_data("count", caller=obj.owner))
            except MROMError:
                continue  # not a counter; stats only tally counters
        return {
            "site": self.site.site_id,
            "placements": placements,
            "counts": counts,
            "stale_served": self.stale_served,
            "shard": self.shard.to_mapping(),
        }

    # -- migration -----------------------------------------------------------

    def migrate(self, name: str, dst: str) -> None:
        """Move the object behind *name* to *dst* through the two-phase
        handoff. The placement goes ``moving`` for the duration — stale
        refusals, not wrong-site successes, are what concurrent clients
        see — and the commit (placement removal, destination adoption at
        generation+1, directory update) fires inside the transfer's
        resolution hook."""
        entry = self.placements.get(name)
        if entry is None or entry["state"] != "active":
            raise NamingError(
                f"{name!r} has no active placement at {self.site.site_id!r}"
            )
        obj = self.site.local_object(entry["guid"])
        entry["state"] = "moving"
        self._moves[obj.guid] = {
            "name": name, "dst": dst, "generation": entry["generation"] + 1,
        }
        try:
            self.mobility.migrate(obj, dst)
        except TransferUnresolvedError:
            # verdict pending: the placement stays "moving" (refusing
            # clients) until settle() reconciles the transfer
            raise
        except BaseException:
            # pre-PREPARE failures (unportable object, dead link) fire
            # no resolution hook; restore the placement ourselves
            if self._moves.pop(obj.guid, None) is not None:
                entry["state"] = "active"
            raise

    def _transfer_resolved(
        self, transfer_id: str, guid: str, dst: str, mode: str, outcome: str
    ) -> None:
        move = self._moves.get(guid)
        if move is None or mode != "move":
            return
        del self._moves[guid]
        name = move["name"]
        entry = self.placements.get(name)
        if outcome != "committed":
            if entry is not None:
                entry["state"] = "active"
            return
        # the commit point: the old placement dies with the transfer's
        # commit, so from here no client can be served under the old
        # generation — only redirected
        self.placements.pop(name, None)
        self.pending[guid] = {
            "name": name, "dst": move["dst"], "generation": move["generation"],
        }
        self._complete(guid)

    def _complete(self, guid: str) -> bool:
        info = self.pending.get(guid)
        if info is None:
            return True
        try:
            self.site.request(
                info["dst"],
                "cluster.adopt",
                {
                    "name": info["name"], "guid": guid,
                    "generation": info["generation"],
                },
                policy=self.retry_policy,
            )
            self._update_directory(
                info["name"], guid, info["dst"], info["generation"]
            )
        except MROMError:
            return False  # unreachable mid-fault: settle() retries
        del self.pending[guid]
        return True

    def settle(self) -> None:
        """Drive interrupted work to a verdict: reconcile ambiguous
        handoffs (which fires their resolution hooks), then finish any
        committed move whose adopt/directory update could not land."""
        if self.mobility.unresolved:
            try:
                self.mobility.reconcile()
            except MROMError:
                pass
        for guid in list(self.pending):
            self._complete(guid)

    @property
    def quiescent(self) -> bool:
        return not self.pending and not self.mobility.unresolved
