"""Hierarchical, federated name services.

Identity (:mod:`repro.naming.guid`) answers "which object is this?";
naming answers "where do I find the object called *X*?". Each site runs
its own :class:`NameService` — a hierarchical path → guid directory — and
federates with other sites by *mounting* their services under a prefix,
so resolution remains fully decentralized: no root server, no global
state, just a graph of mounts that queries walk.

Paths are ``/``-separated (``apps/databases/employees``). A mount maps a
path prefix to any object with a compatible ``resolve``/``list_bindings``
pair — another local :class:`NameService`, or a remote-site proxy.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol

from ..core.errors import NamingError

__all__ = ["NameService", "Resolver", "split_path", "join_path"]


def split_path(path: str) -> list[str]:
    """Normalize a path into segments; rejects empty segments."""
    segments = [segment for segment in path.strip("/").split("/") if segment]
    if not segments:
        raise NamingError(f"empty path {path!r}")
    for segment in segments:
        if segment in (".", ".."):
            raise NamingError(f"relative segment in path {path!r}")
    return segments


def join_path(segments: Iterable[str]) -> str:
    return "/".join(segments)


class Resolver(Protocol):
    """What a mount target must provide."""

    def resolve(self, path: str) -> str: ...

    def list_bindings(self, prefix: str = "") -> list[tuple[str, str]]: ...


class NameService:
    """One site's directory of names, with federation by mounting.

    >>> haifa = NameService("haifa")
    >>> haifa.bind("apps/db", "mrom://haifa/1.1")
    >>> haifa.resolve("apps/db")
    'mrom://haifa/1.1'
    """

    def __init__(self, label: str = ""):
        self.label = label
        self._bindings: dict[str, str] = {}
        self._mounts: dict[str, Resolver] = {}

    # -- local bindings -----------------------------------------------------

    def bind(self, path: str, guid: str, replace: bool = False) -> None:
        key = join_path(split_path(path))
        if not replace and key in self._bindings:
            raise NamingError(f"name {key!r} is already bound")
        self._bindings[key] = guid

    def unbind(self, path: str) -> str:
        key = join_path(split_path(path))
        try:
            return self._bindings.pop(key)
        except KeyError:
            raise NamingError(f"name {key!r} is not bound") from None

    # -- federation -----------------------------------------------------------

    def mount(self, prefix: str, resolver: Resolver) -> None:
        """Graft another name service under *prefix*."""
        key = join_path(split_path(prefix))
        if resolver is self:
            raise NamingError("cannot mount a name service on itself")
        if key in self._mounts:
            raise NamingError(f"prefix {key!r} is already a mount point")
        self._mounts[key] = resolver

    def unmount(self, prefix: str) -> None:
        key = join_path(split_path(prefix))
        if self._mounts.pop(key, None) is None:
            raise NamingError(f"prefix {key!r} is not a mount point")

    def mounts(self) -> tuple[str, ...]:
        return tuple(sorted(self._mounts))

    # -- resolution ----------------------------------------------------------

    def resolve(self, path: str) -> str:
        """Resolve a name to a guid, following at most one mount per hop.

        Local bindings win over mounts at the same prefix (a site is
        authoritative for its own names).
        """
        key = join_path(split_path(path))
        if key in self._bindings:
            return self._bindings[key]
        mount_key, remainder = self._find_mount(key)
        if mount_key is not None:
            return self._mounts[mount_key].resolve(remainder)
        raise NamingError(f"cannot resolve {key!r} ({self.label or 'unlabelled'})")

    def _find_mount(self, key: str) -> tuple[str | None, str]:
        """Longest-prefix mount match."""
        segments = key.split("/")
        for cut in range(len(segments) - 1, 0, -1):
            prefix = "/".join(segments[:cut])
            if prefix in self._mounts:
                return prefix, "/".join(segments[cut:])
        return None, key

    def try_resolve(self, path: str) -> str | None:
        try:
            return self.resolve(path)
        except NamingError:
            return None

    # -- enumeration ---------------------------------------------------------

    def list_bindings(self, prefix: str = "") -> list[tuple[str, str]]:
        """All (path, guid) pairs under *prefix*, local and mounted."""
        if prefix:
            prefix_key = join_path(split_path(prefix))
            wanted = prefix_key + "/"
        else:
            prefix_key = ""
            wanted = ""
        results = [
            (path, guid)
            for path, guid in sorted(self._bindings.items())
            if path == prefix_key or path.startswith(wanted)
        ]
        for mount_prefix, resolver in sorted(self._mounts.items()):
            if prefix_key and not (
                mount_prefix.startswith(wanted) or mount_prefix == prefix_key
                or prefix_key.startswith(mount_prefix + "/")
            ):
                continue
            sub_prefix = ""
            if prefix_key.startswith(mount_prefix + "/"):
                sub_prefix = prefix_key[len(mount_prefix) + 1:]
            for path, guid in resolver.list_bindings(sub_prefix):
                results.append((f"{mount_prefix}/{path}", guid))
        return results

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self.list_bindings())

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, path: str) -> bool:
        return self.try_resolve(path) is not None

    def __repr__(self) -> str:
        return (
            f"NameService({self.label!r}, {len(self._bindings)} bindings, "
            f"{len(self._mounts)} mounts)"
        )
