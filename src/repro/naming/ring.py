"""Consistent hashing: the partitioning half of the cluster directory.

The object namespace is sharded across N sites by a hash ring with
virtual nodes: every site projects ``vnodes`` points onto a 64-bit
circle, and a name belongs to the site owning the first point at or
after the name's own hash (wrapping at the top). Virtual nodes smooth
the load (the per-site share of K keys concentrates around K/N as
``vnodes`` grows), and consistency gives the minimal-disruption
property mobility needs: adding a site steals keys *only for itself*,
and removing one reassigns *only its own* keys — roughly K/N either
way, never a global reshuffle.

Hashing is a keyed blake2b digest — never Python's ``hash()``, whose
per-process salt would give every interpreter a different ring. The
``seed`` keys the digest, so a ring is a pure function of
``(sites, vnodes, seed)``: every process of a multi-process cluster
rebuilds the identical ring from configuration alone, which is what
lets the directory clients and shards agree on ownership without any
coordination traffic.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from ..core.errors import NamingError

__all__ = ["HashRing"]


class HashRing:
    """A seeded consistent-hash ring mapping names to site ids."""

    def __init__(
        self,
        sites: Iterable[str] = (),
        vnodes: int = 128,
        seed: int = 0,
    ):
        if vnodes < 1:
            raise NamingError(f"a ring needs at least one vnode, got {vnodes}")
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        #: sorted (point, site_id) pairs — ties break on the site id, so
        #: ring order is a pure function of membership, not insertion order
        self._ring: list[tuple[int, str]] = []
        self._sites: set[str] = set()
        for site_id in sites:
            self.add_site(site_id)

    # -- membership ----------------------------------------------------------

    def add_site(self, site_id: str) -> None:
        if not site_id:
            raise NamingError("a ring site needs a non-empty id")
        if site_id in self._sites:
            raise NamingError(f"site {site_id!r} is already on the ring")
        self._sites.add(site_id)
        for index in range(self.vnodes):
            bisect.insort(
                self._ring, (self._point(f"site|{site_id}#{index}"), site_id)
            )

    def remove_site(self, site_id: str) -> None:
        if site_id not in self._sites:
            raise NamingError(f"site {site_id!r} is not on the ring")
        self._sites.discard(site_id)
        self._ring = [pair for pair in self._ring if pair[1] != site_id]

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(sorted(self._sites))

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, site_id: str) -> bool:
        return site_id in self._sites

    # -- resolution ----------------------------------------------------------

    def owner(self, name: str) -> str:
        """The site owning *name*: first ring point at or after its hash."""
        if not self._ring:
            raise NamingError("the hash ring has no sites")
        at = bisect.bisect_left(self._ring, (self._point(f"name|{name}"), ""))
        if at == len(self._ring):
            at = 0  # wrap past the top of the circle
        return self._ring[at][1]

    def spread(self, names: Iterable[str]) -> dict[str, int]:
        """Keys per site — the balance a property test asserts on."""
        counts = dict.fromkeys(self.sites, 0)
        for name in names:
            counts[self.owner(name)] += 1
        return counts

    def _point(self, label: str) -> int:
        digest = hashlib.blake2b(
            f"{self.seed}|{label}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def to_mapping(self) -> dict:
        return {
            "vnodes": self.vnodes,
            "seed": self.seed,
            "sites": list(self.sites),
        }

    def __repr__(self) -> str:
        return (
            f"HashRing({len(self._sites)} sites x {self.vnodes} vnodes, "
            f"seed={self.seed})"
        )
