"""Host and guest policies: the mutual-restriction duality of Section 5.

"not only should the host environment be able to restrict the operation
of the mobile object, the mobile object should also be able to restrict
access by the host environment" (Section 1). The per-item ACLs in
:mod:`repro.core.acl` are the *mechanism*; this module supplies the
*policies* (the paper insists a security model includes "policies, not
only mechanisms"):

* :class:`HostPolicy` — what a site demands of arriving objects. It runs
  at admission time, *before* any guest code executes: size and structure
  bounds, origin-domain allow-lists, name bans, eager sandbox
  verification of every piece of carried code.
* :class:`GuestPolicy` — what an object demands of hosts: which host
  bindings it accepts into its environment, and which domains it is
  willing to be installed in. Applied by the object's ``install`` method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.errors import PolicyViolationError
from ..mobility.sandbox import validate_source

__all__ = ["HostPolicy", "GuestPolicy"]


@dataclass
class HostPolicy:
    """Admission control for arriving mobile objects.

    Attach to a :class:`~repro.mobility.transfer.MobilityManager` as its
    admission policy: ``MobilityManager(site, policy=HostPolicy(...))``.

    The default instance is deliberately strict enough to stop the cheap
    attacks (unbounded structure, unverifiable code) while admitting any
    well-formed object from any domain.
    """

    max_items: int = 256
    max_code_bytes: int = 262_144
    allowed_domains: tuple[str, ...] = ()  # empty = any origin domain
    banned_method_names: frozenset = frozenset()
    verify_code_eagerly: bool = True
    max_tower_depth: int = 8

    def __call__(self, package: Mapping, src_site: str) -> None:
        self.admit(package, src_site)

    def admit(self, package: Mapping, src_site: str) -> None:
        """Raise :class:`PolicyViolationError` unless *package* is admissible."""
        self._check_origin(package)
        self._check_structure(package)
        self._check_names(package)
        if self.verify_code_eagerly:
            self._check_code(package)

    # -- individual checks -------------------------------------------------

    def _check_origin(self, package: Mapping) -> None:
        if not self.allowed_domains:
            return
        domain = str(package.get("domain", ""))
        own = domain.split(".") if domain else []
        for allowed in self.allowed_domains:
            target = allowed.split(".")
            if own[: len(target)] == target:
                return
        raise PolicyViolationError(
            f"origin domain {domain!r} is not in the allow-list"
        )

    def _item_groups(self, package: Mapping) -> Iterable[Mapping]:
        for group in ("fixed_data", "ext_data", "fixed_methods", "ext_methods"):
            yield from package.get(group, [])

    def _check_structure(self, package: Mapping) -> None:
        count = sum(1 for _ in self._item_groups(package))
        if count > self.max_items:
            raise PolicyViolationError(
                f"object carries {count} items, limit is {self.max_items}"
            )
        tower = package.get("tower", [])
        if len(tower) > self.max_tower_depth:
            raise PolicyViolationError(
                f"meta-invoke tower depth {len(tower)} exceeds "
                f"{self.max_tower_depth}"
            )

    def _check_names(self, package: Mapping) -> None:
        for item in self._item_groups(package):
            name = str(item.get("name", ""))
            if name in self.banned_method_names:
                raise PolicyViolationError(f"item name {name!r} is banned here")

    def _method_sources(self, package: Mapping) -> Iterable[tuple[str, str]]:
        groups = list(package.get("fixed_methods", []))
        groups += list(package.get("ext_methods", []))
        groups += list(package.get("tower", []))
        for item in groups:
            components = item.get("components", {})
            for role in ("body", "pre", "post"):
                carrier = components.get(role)
                if isinstance(carrier, Mapping) and "source" in carrier:
                    yield str(item.get("name", "?")), str(carrier["source"])

    def _check_code(self, package: Mapping) -> None:
        total = 0
        for name, source in self._method_sources(package):
            total += len(source.encode("utf-8"))
            if total > self.max_code_bytes:
                raise PolicyViolationError(
                    f"carried code exceeds {self.max_code_bytes} bytes"
                )
            # eager verification: reject hostile code before it is even
            # installed, not merely before it runs
            validate_source(source, source_name=f"arriving:{name}")


@dataclass
class GuestPolicy:
    """The mobile object's demands toward hosts.

    Used inside ``install`` methods: the host's installation context is
    filtered to *accepted_bindings*, and installation in a domain outside
    *trusted_domains* is refused (the object simply raises, and the
    transfer fails — it never settles on an untrusted host).
    """

    accepted_bindings: tuple[str, ...] = ()
    trusted_domains: tuple[str, ...] = ()  # empty = trust any host

    def check_host(self, host_domain: str) -> None:
        if not self.trusted_domains:
            return
        own = host_domain.split(".") if host_domain else []
        for trusted in self.trusted_domains:
            target = trusted.split(".")
            if own[: len(target)] == target:
                return
        raise PolicyViolationError(
            f"guest refuses installation in domain {host_domain!r}"
        )

    def filter_bindings(self, offered: Mapping) -> dict:
        """Keep only the host bindings the object agreed to accept."""
        if not self.accepted_bindings:
            return {}
        return {
            name: value
            for name, value in offered.items()
            if name in self.accepted_bindings
        }
