"""Security policies and audit (mechanisms live in repro.core.acl)."""

from .audit import AuditEvent, AuditKind, AuditLog, audited_invoke
from .policy import GuestPolicy, HostPolicy

__all__ = [
    "HostPolicy",
    "GuestPolicy",
    "AuditLog",
    "AuditEvent",
    "AuditKind",
    "audited_invoke",
]
