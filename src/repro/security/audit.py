"""Audit trail: who invoked what, who was denied, what arrived and left.

The paper couples security with encapsulation at the mechanism level;
operationally a host also needs an account of what its guests did. The
:class:`AuditLog` aggregates three streams:

* invocation records from traced MROM objects (level/phase traces);
* security denials (``AccessDeniedError`` / policy rejections);
* mobility events (arrivals, departures, rejections) from a site.

Everything is in-memory and queryable; sinks are pluggable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..core.errors import AccessDeniedError
from ..core.invocation import InvocationRecord
from ..core.mobject import MROMObject

__all__ = ["AuditEvent", "AuditKind", "AuditLog", "audited_invoke"]


class AuditKind(enum.Enum):
    INVOCATION = "invocation"
    DENIAL = "denial"
    VETO = "veto"
    ERROR = "error"
    ARRIVAL = "arrival"
    DEPARTURE = "departure"
    REJECTION = "rejection"


@dataclass(frozen=True)
class AuditEvent:
    kind: AuditKind
    subject: str  # object guid or site id
    actor: str  # caller guid or peer site
    detail: str = ""
    time: float = 0.0

    def __str__(self) -> str:
        return f"[{self.time:10.4f}] {self.kind.value:<10} {self.subject} by {self.actor} {self.detail}"


class AuditLog:
    """An append-only event log with simple queries."""

    def __init__(self, clock: Callable[[], float] | None = None):
        self._events: list[AuditEvent] = []
        self._clock = clock or (lambda: 0.0)
        self._sinks: list[Callable[[AuditEvent], None]] = []

    def add_sink(self, sink: Callable[[AuditEvent], None]) -> None:
        self._sinks.append(sink)

    def record(
        self, kind: AuditKind, subject: str, actor: str, detail: str = ""
    ) -> AuditEvent:
        event = AuditEvent(
            kind=kind, subject=subject, actor=actor, detail=detail,
            time=self._clock(),
        )
        self._events.append(event)
        for sink in self._sinks:
            sink(event)
        return event

    def note_invocation(self, obj_guid: str, record: InvocationRecord) -> None:
        kind = {
            "ok": AuditKind.INVOCATION,
            "veto": AuditKind.VETO,
            "error": AuditKind.ERROR,
        }.get(record.outcome, AuditKind.INVOCATION)
        self.record(kind, obj_guid, record.caller, detail=record.method)

    # -- queries ------------------------------------------------------------

    def events(self, kind: AuditKind | None = None) -> list[AuditEvent]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind is kind]

    def denials(self) -> list[AuditEvent]:
        return self.events(AuditKind.DENIAL)

    def by_actor(self, actor: str) -> list[AuditEvent]:
        return [event for event in self._events if event.actor == actor]

    def counts(self) -> dict[str, int]:
        result: dict[str, int] = {}
        for event in self._events:
            result[event.kind.value] = result.get(event.kind.value, 0) + 1
        return result

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


def audited_invoke(
    obj: MROMObject,
    log: AuditLog,
    method: str,
    args: Iterable[Any] = (),
    caller=None,
) -> Any:
    """Invoke with every outcome — success, veto, denial, error — logged."""
    caller_guid = caller.guid if caller is not None else "mrom:anonymous"
    try:
        result = obj.invoke(method, list(args), caller=caller)
    except AccessDeniedError as exc:
        log.record(AuditKind.DENIAL, obj.guid, caller_guid, detail=str(exc))
        raise
    except Exception:
        # model errors AND guest-code failures alike: the record exists
        # whenever the invocation engine was reached
        if obj.last_record is not None and obj.last_record.method == method:
            log.note_invocation(obj.guid, obj.last_record)
        else:
            log.record(AuditKind.ERROR, obj.guid, caller_guid, detail=method)
        raise
    log.note_invocation(obj.guid, obj.last_record)
    return result
