"""Audit trail: who invoked what, who was denied, what arrived and left.

The paper couples security with encapsulation at the mechanism level;
operationally a host also needs an account of what its guests did. The
:class:`AuditLog` aggregates three streams:

* invocation records from traced MROM objects (level/phase traces);
* security denials (``AccessDeniedError`` / policy rejections);
* mobility events (arrivals, departures, rejections) from a site.

Since the telemetry plane landed, the audit trail is *backed by* a
telemetry :class:`~repro.telemetry.events.EventLog`: :meth:`AuditLog.record`
is the single emit path, every audit record becomes an ``audit.<kind>``
structured event in the log's private stream (and is mirrored into the
active :class:`~repro.telemetry.runtime.Telemetry` event stream when one
is enabled, tagged with the originating log's identity), and every query
reconstructs its answers from that stream. The public API — ``record``,
``note_invocation``, ``events``, ``denials``, ``by_actor``, ``counts``,
sinks, iteration — is unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..core.errors import AccessDeniedError
from ..core.invocation import InvocationRecord
from ..core.mobject import MROMObject
from ..telemetry import state as _telemetry
from ..telemetry.events import EventLog, TelemetryEvent

__all__ = ["AuditEvent", "AuditKind", "AuditLog", "audited_invoke"]


class AuditKind(enum.Enum):
    INVOCATION = "invocation"
    DENIAL = "denial"
    VETO = "veto"
    ERROR = "error"
    ARRIVAL = "arrival"
    DEPARTURE = "departure"
    REJECTION = "rejection"


@dataclass(frozen=True)
class AuditEvent:
    kind: AuditKind
    subject: str  # object guid or site id
    actor: str  # caller guid or peer site
    detail: str = ""
    time: float = 0.0

    def __str__(self) -> str:
        return f"[{self.time:10.4f}] {self.kind.value:<10} {self.subject} by {self.actor} {self.detail}"


class AuditLog:
    """An append-only event log with simple queries.

    Records live in a private telemetry event stream (:attr:`stream`);
    queries are views over it. The log never drops records: the backing
    stream is unbounded.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._stream = EventLog()
        self._clock = clock or (lambda: 0.0)
        self._sinks: list[Callable[[AuditEvent], None]] = []

    @property
    def stream(self) -> EventLog:
        """The backing telemetry event stream (``audit.*`` events)."""
        return self._stream

    def add_sink(self, sink: Callable[[AuditEvent], None]) -> None:
        self._sinks.append(sink)

    def record(
        self, kind: AuditKind, subject: str, actor: str, detail: str = ""
    ) -> AuditEvent:
        event = AuditEvent(
            kind=kind, subject=subject, actor=actor, detail=detail,
            time=self._clock(),
        )
        # the single emit path: the private stream is the record of truth,
        # and an enabled telemetry plane sees the same event, tagged with
        # this log's identity so multiple logs stay distinguishable
        self._stream.emit(
            f"audit.{kind.value}", time=event.time,
            subject=subject, actor=actor, detail=detail,
        )
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.events.emit(
                f"audit.{kind.value}", time=event.time,
                log=f"audit:{id(self):x}",
                subject=subject, actor=actor, detail=detail,
            )
            tel.metrics.counter("audit.records").inc()
        for sink in self._sinks:
            sink(event)
        return event

    def note_invocation(self, obj_guid: str, record: InvocationRecord) -> None:
        kind = {
            "ok": AuditKind.INVOCATION,
            "veto": AuditKind.VETO,
            "error": AuditKind.ERROR,
        }.get(record.outcome, AuditKind.INVOCATION)
        self.record(kind, obj_guid, record.caller, detail=record.method)

    # -- queries ------------------------------------------------------------

    @staticmethod
    def _as_audit_event(event: TelemetryEvent) -> AuditEvent:
        return AuditEvent(
            kind=AuditKind(event.name.removeprefix("audit.")),
            subject=str(event.attrs.get("subject", "")),
            actor=str(event.attrs.get("actor", "")),
            detail=str(event.attrs.get("detail", "")),
            time=event.time,
        )

    def events(self, kind: AuditKind | None = None) -> list[AuditEvent]:
        if kind is None:
            raw = self._stream.events(prefix="audit.")
        else:
            raw = self._stream.events(prefix=f"audit.{kind.value}")
        return [self._as_audit_event(event) for event in raw]

    def denials(self) -> list[AuditEvent]:
        return self.events(AuditKind.DENIAL)

    def by_actor(self, actor: str) -> list[AuditEvent]:
        return [
            self._as_audit_event(event)
            for event in self._stream.events(prefix="audit.", actor=actor)
        ]

    def counts(self) -> dict[str, int]:
        result: dict[str, int] = {}
        for event in self._stream:
            result[event.name.removeprefix("audit.")] = (
                result.get(event.name.removeprefix("audit."), 0) + 1
            )
        return result

    def __len__(self) -> int:
        return len(self._stream)

    def __iter__(self):
        return iter(self.events())


def audited_invoke(
    obj: MROMObject,
    log: AuditLog,
    method: str,
    args: Iterable[Any] = (),
    caller=None,
) -> Any:
    """Invoke with every outcome — success, veto, denial, error — logged."""
    caller_guid = caller.guid if caller is not None else "mrom:anonymous"
    try:
        result = obj.invoke(method, list(args), caller=caller)
    except AccessDeniedError as exc:
        log.record(AuditKind.DENIAL, obj.guid, caller_guid, detail=str(exc))
        raise
    except Exception:
        # model errors AND guest-code failures alike: the record exists
        # whenever the invocation engine was reached
        if obj.last_record is not None and obj.last_record.method == method:
            log.note_invocation(obj.guid, obj.last_record)
        else:
            log.record(AuditKind.ERROR, obj.guid, caller_guid, detail=method)
        raise
    log.note_invocation(obj.guid, obj.last_record)
    return result
