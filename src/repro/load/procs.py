"""The multi-process cluster driver: real sites, real sockets.

The simulation proves the protocols; this module proves the *deployment
shape*. Each serving site runs as its own OS process — an independent
interpreter with its own simulator, :class:`~repro.net.site.Site`,
:class:`~repro.naming.ClusterManager` shard, and a
:class:`~repro.net.gateway.TcpGateway` on a kernel-assigned localhost
port. Nothing is shared but configuration: every process rebuilds the
identical :class:`~repro.naming.HashRing` from ``(sites, vnodes,
seed)``, which is the whole point of the seeded ring — ownership is
agreed without coordination traffic.

Client processes run thread-per-logical-client over
:class:`~repro.net.gateway.TcpGatewayClient`, speaking the lease
protocol by hand: resolve at the ring owner's shard, invoke at the
leased site with the lease generation, and on a typed
:class:`~repro.core.errors.StaleLeaseError` (rebuilt from the wire by
name) drop the lease and re-resolve. The parent process plays the
rebalancer, migrating placements between live sites mid-run via
``cluster.depart`` / ``cluster.arrive`` / ``dir.update`` — so clients
demonstrably chase moving placements across process boundaries.

Throughput scaling here is *latency-bound by construction*: each served
invoke sleeps ``service_sleep`` real seconds inside the gateway's lock
(one service lane per site, exactly the single-threaded site model), so
a site caps at ~``1/service_sleep`` ops/s regardless of host cores and
the aggregate scales with the number of sites — the property
BENCH_cluster.json records. On a one-core CI box this measures
architecture, not parallel compute.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass

from ..core.errors import MROMError, OverloadError, StaleLeaseError

__all__ = ["ClusterProcsConfig", "run_cluster_procs"]


@dataclass
class ClusterProcsConfig:
    """Knobs for one multi-process run; defaults are the smoke shape."""

    sites: int = 4
    duration: float = 2.0          # seconds of offered load (wall clock)
    keys_per_site: int = 2
    vnodes: int = 64
    seed: int = 0
    service_sleep: float = 0.02    # real seconds per served invoke
    client_procs: int = 2
    threads: int | None = None     # client threads per process (None: sites)
    moves: int | None = None       # mid-run rebalances (None: sites)
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.sites < 1 or self.client_procs < 1:
            raise ValueError("sites and client_procs must be positive")
        if self.duration <= 0 or self.service_sleep < 0:
            raise ValueError("duration must be positive; sleep non-negative")
        if self.keys_per_site < 1 or self.vnodes < 1:
            raise ValueError("keys_per_site and vnodes must be positive")


def _site_names(config: ClusterProcsConfig) -> tuple[list[str], list[str]]:
    site_ids = [f"s{i}" for i in range(config.sites)]
    names = [
        f"apps/k{i}" for i in range(config.sites * config.keys_per_site)
    ]
    return site_ids, names


def _site_main(
    index: int,
    site_ids: list[str],
    names: list[str],
    vnodes: int,
    seed: int,
    service_sleep: float,
    conn,
) -> None:
    """One serving site process: build, publish owned keys, serve until
    the parent says stop."""
    from ..naming import ClusterManager, HashRing
    from ..net import Network, Site, TcpGateway
    from ..sim import Simulator

    site_id = site_ids[index]
    network = Network(Simulator(seed + index))
    site = Site(network, site_id, f"cluster.{site_id}")
    ring = HashRing(site_ids, vnodes=vnodes, seed=seed)
    manager = ClusterManager(site, ring)
    manager.service_sleep = service_sleep
    for name in names:
        # initial placement == ring owner, so publish's directory update
        # stays site-local and needs no cross-process traffic
        if ring.owner(name) != site_id:
            continue
        counter = site.create_object(display_name=f"counter@{name}")
        counter.define_fixed_data("count", 0)
        counter.define_fixed_method(
            "increment",
            "self.set('count', self.get('count') + (args[0] if args else 1))\n"
            "return self.get('count')",
        )
        counter.define_fixed_method("peek", "return self.get('count')")
        counter.seal()
        manager.publish(counter, name)
    gateway = TcpGateway(site)
    conn.send(gateway.port)
    conn.recv()  # blocks until the parent closes the run
    gateway.close()


class _Channels:
    """One shared gateway connection per serving site, lock-guarded.

    A per-thread connection per site would mint ``threads x sites``
    sockets (and as many server-side connection threads); since the
    serving site serializes requests anyway, one channel per (client
    process, site) loses no concurrency the cluster actually has."""

    def __init__(self, host: str, ports: dict[str, int]):
        from ..net import TcpGatewayClient

        self._clients = {
            site_id: TcpGatewayClient(host, port, timeout=10.0)
            for site_id, port in ports.items()
        }
        self._locks = {site_id: threading.Lock() for site_id in ports}

    def call(self, site_id: str, kind: str, payload: dict):
        with self._locks[site_id]:
            return self._clients[site_id].call(kind, payload)

    def close(self) -> None:
        for client in self._clients.values():
            try:
                client.close()
            except OSError:  # pragma: no cover - teardown noise
                pass


def _client_thread(
    thread_index: int,
    channels: _Channels,
    ring,
    names: list[str],
    seed: int,
    deadline: float,
    stats: dict,
    lock: threading.Lock,
    leases: dict,
) -> None:
    """One logical client: lease-directed invokes until the deadline.

    ``names`` is this thread's pinned key set, cycled round-robin — a
    balanced closed loop, so measured scaling reflects the cluster's
    capacity rather than the luck of random key draws. ``leases`` is
    the process-wide lease cache — shared across the threads of one
    client process the way one application's tasks share a resolver
    cache; a stale verdict from any thread invalidates the entry for
    all of them."""
    local = {"ok": 0, "stale": 0, "shed": 0, "failed": 0, "resolves": 0}
    at = thread_index % len(names)

    def resolve(name: str) -> dict:
        local["resolves"] += 1
        lease = channels.call(ring.owner(name), "dir.resolve", {"name": name})
        leases[name] = lease
        return lease

    try:
        while time.monotonic() < deadline:
            name = names[at]
            at = (at + 1) % len(names)
            done = False
            for _attempt in range(6):
                try:
                    lease = leases.get(name) or resolve(name)
                    channels.call(
                        lease["site"],
                        "cluster.invoke",
                        {
                            "name": name,
                            "generation": lease["generation"],
                            "method": "increment",
                            "args": [1],
                            "caller": {},
                        },
                    )
                    local["ok"] += 1
                    done = True
                    break
                except StaleLeaseError:
                    # the placement moved: drop the lease, re-resolve
                    local["stale"] += 1
                    leases.pop(name, None)
                    time.sleep(0.001)
                except OverloadError:
                    local["shed"] += 1
                    time.sleep(0.002)
                except (MROMError, OSError):
                    leases.pop(name, None)
                    time.sleep(0.005)
            if not done:
                local["failed"] += 1
    finally:
        with lock:
            for key, value in local.items():
                stats[key] = stats.get(key, 0) + value


def _client_main(
    proc_index: int,
    site_ids: list[str],
    ports: dict[str, int],
    names: list[str],
    vnodes: int,
    seed: int,
    threads: int,
    duration: float,
    out_queue,
) -> None:
    from ..naming import HashRing

    ring = HashRing(site_ids, vnodes=vnodes, seed=seed)
    channels = _Channels("127.0.0.1", ports)
    deadline = time.monotonic() + duration
    stats: dict = {}
    lock = threading.Lock()
    leases: dict = {}
    threads = min(threads, len(names))
    workers = [
        threading.Thread(
            target=_client_thread,
            args=(
                proc_index * 1000 + i, channels, ring, names[i::threads],
                seed, deadline, stats, lock, leases,
            ),
            daemon=True,
        )
        for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    channels.close()
    out_queue.put(stats)


def _rebalance(
    gateways: dict,
    ring,
    site_ids: list[str],
    placement: dict[str, str],
    name: str,
) -> None:
    """Parent-mediated move of *name* to the next site: depart at the
    holder, arrive at the destination, then update the ring shard —
    every leg over TCP, every leg generation-guarded."""
    src = placement[name]
    dst = site_ids[(site_ids.index(src) + 1) % len(site_ids)]
    if dst == src:
        return
    departed = gateways[src].call("cluster.depart", {"name": name})
    gateways[dst].call(
        "cluster.arrive",
        {
            "name": name,
            "package": departed["package"],
            "generation": departed["generation"],
            "src": src,
        },
    )
    gateways[ring.owner(name)].call(
        "dir.update",
        {
            "name": name,
            "guid": departed["guid"],
            "site": dst,
            "generation": departed["generation"],
        },
    )
    placement[name] = dst


def run_cluster_procs(config: ClusterProcsConfig | None = None) -> dict:
    """Drive a cluster of real site processes; returns the flat report
    mapping BENCH_cluster.json records."""
    from ..naming import HashRing
    from ..net import TcpGatewayClient

    config = config or ClusterProcsConfig()
    site_ids, names = _site_names(config)
    ring = HashRing(site_ids, vnodes=config.vnodes, seed=config.seed)
    context = multiprocessing.get_context("fork")

    site_procs = []
    pipes = []
    for index in range(config.sites):
        parent_conn, child_conn = context.Pipe()
        proc = context.Process(
            target=_site_main,
            args=(index, site_ids, names, config.vnodes, config.seed,
                  config.service_sleep, child_conn),
            daemon=True,
        )
        proc.start()
        site_procs.append(proc)
        pipes.append(parent_conn)
    report: dict = {}
    gateways: dict[str, TcpGatewayClient] = {}
    client_procs = []
    try:
        ports = {
            site_ids[index]: pipes[index].recv()
            for index in range(config.sites)
        }
        gateways = {
            site_id: TcpGatewayClient(config.host, port, timeout=10.0)
            for site_id, port in ports.items()
        }
        for site_id in site_ids:
            gateways[site_id].ping()

        out_queue = context.Queue()
        started = time.monotonic()
        thread_total = 0
        for proc_index in range(config.client_procs):
            # each client process drives a disjoint slice of the key
            # space, one pinned thread per key by default: a balanced
            # closed loop that saturates every key-owning site
            subset = names[proc_index::config.client_procs]
            if not subset:
                continue
            threads = (
                config.threads if config.threads is not None else len(subset)
            )
            thread_total += min(threads, len(subset))
            proc = context.Process(
                target=_client_main,
                args=(proc_index, site_ids, ports, subset, config.vnodes,
                      config.seed, threads, config.duration, out_queue),
                daemon=True,
            )
            proc.start()
            client_procs.append(proc)

        # mid-run rebalances: placements move while clients are invoking,
        # so the stale-lease path is exercised across real processes
        moves = config.moves if config.moves is not None else config.sites
        placement = {name: ring.owner(name) for name in names}
        move_gap = config.duration / (moves + 1) if moves else 0.0
        moved = 0
        for index in range(moves):
            time.sleep(move_gap)
            _rebalance(gateways, ring, site_ids, placement,
                       names[index % len(names)])
            moved += 1

        totals: dict = {}
        for _proc in client_procs:
            stats = out_queue.get(timeout=config.duration + 60.0)
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        elapsed = time.monotonic() - started
        for proc in client_procs:
            proc.join(timeout=30.0)

        site_stats = {
            site_id: gateways[site_id].call("cluster.stats", {})
            for site_id in site_ids
        }
        counter_total = sum(
            sum(stats["counts"].values()) for stats in site_stats.values()
        )
        owners: dict[str, list[str]] = {name: [] for name in names}
        for site_id, stats in site_stats.items():
            for name, entry in stats["placements"].items():
                if entry["state"] == "active":
                    owners[name].append(site_id)
        ok = int(totals.get("ok", 0))
        report = {
            "sites": config.sites,
            "client_procs": len(client_procs),
            "threads": thread_total,
            "keys": len(names),
            "seed": config.seed,
            "duration": round(elapsed, 3),
            "service_sleep": config.service_sleep,
            "moves": moved,
            "ok": ok,
            "stale": int(totals.get("stale", 0)),
            "shed": int(totals.get("shed", 0)),
            "failed": int(totals.get("failed", 0)),
            "resolves": int(totals.get("resolves", 0)),
            "counter_total": counter_total,
            "consistent": counter_total == ok,
            "single_owner": all(
                len(sites) == 1 for sites in owners.values()
            ),
            "stale_served": sum(
                int(stats["stale_served"]) for stats in site_stats.values()
            ),
            "stale_rate": (
                round(totals.get("stale", 0) / ok, 6) if ok else 0.0
            ),
            "throughput": round(ok / elapsed, 2) if elapsed > 0 else 0.0,
        }
        return report
    finally:
        for client in gateways.values():
            try:
                client.close()
            except OSError:  # pragma: no cover
                pass
        for pipe in pipes:
            try:
                pipe.send("stop")
            except OSError:  # pragma: no cover
                pass
        for proc in site_procs + client_procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung child
                proc.terminate()
