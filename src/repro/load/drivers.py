"""Closed- and open-loop workload drivers.

Both shapes are built from the same two kernel primitives: an
``issue()`` callback that fires one operation and returns its
:class:`~repro.net.rmi.BatchFuture`, and the future's
:meth:`~repro.net.rmi.BatchFuture.when_done` hook, which the driver
uses to record the outcome and (closed loop) chain the next request —
all inside the event loop, with no pumping of its own. The scenario
layer owns the world and the ops; drivers own only pacing and
accounting.

The distinction matters for what a run can show (see Schroeder et al.,
"Open Versus Closed"): a closed loop self-throttles — offered load
falls as latency rises, so it measures capacity — while an open loop
keeps arriving at its configured rate and is the shape that drives a
bounded admission window into shedding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..core.errors import MROMError, OverloadError
from .latency import LatencyRecorder

if TYPE_CHECKING:  # pragma: no cover
    import random

    from ..net.rmi import BatchFuture
    from ..net.site import Site

__all__ = ["DriverStats", "ClosedLoopDriver", "OpenLoopDriver"]


@dataclass
class DriverStats:
    """Shared outcome ledger — one instance spans all drivers of a run."""

    issued: int = 0
    completed: int = 0
    ok: int = 0
    shed: int = 0
    failed: int = 0
    errors: dict = field(default_factory=dict)  # error type -> count

    @property
    def unresolved(self) -> int:
        """Futures issued but never settled (must be 0 after a drain)."""
        return self.issued - self.completed

    def to_mapping(self) -> dict:
        return {
            "issued": self.issued,
            "completed": self.completed,
            "ok": self.ok,
            "shed": self.shed,
            "failed": self.failed,
            "unresolved": self.unresolved,
            "errors": dict(self.errors),
        }


class _Driver:
    """Pacing-agnostic core: issue one op, record its settlement."""

    def __init__(
        self,
        site: "Site",
        issue: Callable[[], "BatchFuture"],
        budget: Callable[[], bool],
        stats: DriverStats,
        recorder: LatencyRecorder,
    ):
        self.site = site
        self.issue = issue
        self.budget = budget
        self.stats = stats
        self.recorder = recorder

    def _issue_one(self, then: Callable[[], None] | None = None) -> None:
        self.stats.issued += 1
        issued_at = self.site.network.now
        future = self.issue()
        future.when_done(lambda f: self._settled(f, issued_at, then))

    def _settled(
        self,
        future: "BatchFuture",
        issued_at: float,
        then: Callable[[], None] | None,
    ) -> None:
        self.stats.completed += 1
        try:
            future.result()
        except OverloadError:
            self.stats.shed += 1
        except MROMError as exc:
            self.stats.failed += 1
            name = type(exc).__name__
            self.stats.errors[name] = self.stats.errors.get(name, 0) + 1
        else:
            self.stats.ok += 1
            self.recorder.observe(self.site.network.now - issued_at)
        if then is not None:
            then()


class ClosedLoopDriver(_Driver):
    """One logical client: a single request outstanding at a time, the
    next issued ``think_time`` simulated seconds after each completion."""

    def __init__(self, *args, think_time: float = 0.0):
        super().__init__(*args)
        self.think_time = think_time

    def start(self) -> None:
        self._next()

    def _next(self) -> None:
        if not self.budget():
            return
        # chain through a zero-delay event rather than recursing: an op
        # that settles synchronously (migrate) would otherwise nest one
        # stack frame per request
        self._issue_one(then=self._schedule_next)

    def _schedule_next(self) -> None:
        self.site.network.simulator.schedule(
            self.think_time,
            self._next,
            label=f"closed-loop next @ {self.site.site_id}",
        )


class OpenLoopDriver(_Driver):
    """Arrivals at a configured per-driver rate, independent of
    completions. With an RNG the interarrival gaps are exponential
    (Poisson arrivals); without, a fixed cadence."""

    def __init__(
        self,
        *args,
        rate: float,
        rng: "random.Random | None" = None,
    ):
        super().__init__(*args)
        if rate <= 0:
            raise ValueError(f"open-loop rate must be positive, got {rate}")
        self.rate = rate
        self.rng = rng

    def start(self) -> None:
        self._arrive()

    def _arrive(self) -> None:
        if not self.budget():
            return
        self._issue_one()
        gap = (
            self.rng.expovariate(self.rate)
            if self.rng is not None
            else 1.0 / self.rate
        )
        self.site.network.simulator.schedule(
            gap, self._arrive, label=f"open-loop arrival @ {self.site.site_id}"
        )
