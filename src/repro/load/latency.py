"""Fixed-bucket latency recording with interpolated percentiles.

A load run observes tens of thousands of latencies; storing them all
would make memory proportional to offered load. A fixed-boundary bucket
grid keeps recording O(1) per sample and O(buckets) in space, at the
cost of percentile *interpolation* rather than exact order statistics —
the standard monitoring trade (Prometheus histograms make the same
one). Boundaries are tuned for simulated RMI latencies: LAN round
trips land around a millisecond, retry/backoff tails reach seconds.

When the telemetry plane is active every sample is mirrored into the
shared :class:`~repro.telemetry.metrics.MetricsRegistry` histogram of
the same name, so load percentiles ride the same export path
(``write_bench_json``, snapshots) as every other metric.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ..telemetry import state as _telemetry

__all__ = ["LOAD_BUCKETS", "LatencyRecorder"]

#: Boundaries (simulated seconds) for load latencies: ~geometric from
#: 100µs to 60s. Samples above the last bound land in +Inf.
LOAD_BUCKETS: tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class LatencyRecorder:
    """Bucketed latency distribution with p50/p95/p99 estimation."""

    __slots__ = ("name", "boundaries", "counts", "total", "count", "min", "max")

    def __init__(
        self,
        name: str = "load.latency",
        boundaries: Sequence[float] = LOAD_BUCKETS,
    ):
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"recorder {name!r} needs sorted, distinct, non-empty boundaries"
            )
        self.name = name
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot = +Inf
        self.total = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds
        self.counts[bisect.bisect_left(self.boundaries, seconds)] += 1
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.metrics.histogram(self.name, self.boundaries).observe(seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """Estimate the *quantile* (0..1] by linear interpolation within
        the bucket holding that rank; exact at bucket edges, clamped to
        the observed [min, max] so tiny samples stay honest."""
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        rank = quantile * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                if index >= len(self.boundaries):  # the +Inf bucket
                    return self.max
                lower = self.boundaries[index - 1] if index else 0.0
                upper = self.boundaries[index]
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - ranks always land above

    def percentiles(self) -> dict:
        return {
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **self.percentiles(),
            "boundaries": list(self.boundaries),
            "buckets": list(self.counts),
        }

    def __repr__(self) -> str:
        return (
            f"LatencyRecorder({self.name!r}, n={self.count}, "
            f"p50={self.percentile(0.5):.6g})" if self.count
            else f"LatencyRecorder({self.name!r}, empty)"
        )
