"""Multi-site load and soak scenarios, and their reports.

A scenario builds a world — ``sites`` serving sites each hosting a
counter object, ``clients`` client sites fully connected to them over
the simulated LAN — starts one driver per client, and pumps the kernel
dry. Drivers issue a weighted mix of protocol ops; one *nomad* object
hops between serving sites whenever the mix draws ``migrate``, so
mobility runs concurrently with invocation traffic, the combination
the paper's runtime exists for.

Accounting is closed-form: every issued request must settle (reply,
typed shed, or typed failure) — ``unresolved`` is the count that did
not and must be zero after a drain — and the sum of the server
counters must equal the number of successful increments, which is the
end-to-end no-lost-updates check.

The soak variant layers the fault plane (drops, duplicates, jitter)
and arms retry policies, demonstrating the exactly-once and
backpressure machinery holding under sustained adversarial load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.errors import MROMError, TransferUnresolvedError
from ..faults import (
    DropInjector,
    DuplicateInjector,
    DurableCrashInjector,
    FaultPlane,
    JitterInjector,
)
from ..mobility import MobilityManager
from ..net import LAN, Network, RetryPolicy, Site
from ..persistence import (
    BACKENDS,
    WriteAheadLog,
    attach_journal,
    make_store,
    recover_site,
)
from ..net.rmi import BatchFuture
from ..sim import Simulator
from ..telemetry import state as _telemetry
from .drivers import ClosedLoopDriver, DriverStats, OpenLoopDriver
from .latency import LatencyRecorder
from .profile import DEFAULT_PROFILE, OpProfile

__all__ = ["LoadConfig", "LoadReport", "run_load_scenario", "run_soak_scenario"]


@dataclass
class LoadConfig:
    """Knobs for one load run; the defaults are the smoke shape."""

    sites: int = 4             # serving sites
    clients: int = 4           # client sites (one driver each)
    requests: int = 10_000     # total logical requests across all drivers
    mode: str = "closed"       # "closed" or "open"
    rate: float = 500.0        # open loop: per-client arrivals / sim second
    think_time: float = 0.0    # closed loop: gap after each completion
    seed: int = 0
    inflight_limit: int | None = None  # per-server admission window
    service_delay: float = 0.0         # per-request service time at servers
    profile: OpProfile = field(default_factory=lambda: DEFAULT_PROFILE)
    retry: RetryPolicy | None = None
    #: durability plane: journal every serving site into a WAL
    durable: bool = False
    backend: str = "memory"        # WAL store backend (see persistence.BACKENDS)
    wal_root: str | None = None    # directory for file/sqlite backends
    #: crash-and-restart schedule (requires durable=True): kill whole
    #: serving sites mid-run, this many cycles total, restarting each
    #: from its WAL
    crash_cycles: int = 0
    crash_start: float = 0.5       # first crash fires at this sim time
    crash_down: float = 0.4        # seconds each victim stays dark
    crash_every: float = 1.2       # base spacing between a victim's cycles

    def __post_init__(self) -> None:
        if self.sites < 1 or self.clients < 1 or self.requests < 1:
            raise ValueError("sites, clients and requests must be positive")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', not {self.mode!r}")
        if self.rate <= 0 or self.think_time < 0 or self.service_delay < 0:
            raise ValueError("rate must be positive; delays cannot be negative")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, not {self.backend!r}"
            )
        if self.backend != "memory" and self.wal_root is None:
            raise ValueError(f"backend {self.backend!r} needs wal_root")
        if self.crash_cycles < 0:
            raise ValueError("crash_cycles cannot be negative")
        if self.crash_cycles and not self.durable:
            raise ValueError("crash_cycles requires durable=True")
        if self.crash_start < 0 or self.crash_down <= 0 or self.crash_every <= 0:
            raise ValueError("crash schedule values must be positive")


@dataclass
class LoadReport:
    """Everything a run learned, in one flat record."""

    mode: str
    sites: int
    clients: int
    requests: int
    seed: int
    soak: bool
    issued: int
    completed: int
    ok: int
    shed: int
    failed: int
    unresolved: int
    errors: dict
    migrations: int
    invoke_ok: int
    counter_total: int
    server_sheds: dict
    duration: float
    throughput: float
    latency: dict
    profile: dict
    faults: dict = field(default_factory=dict)
    #: durability summary (empty for non-durable runs): restarts,
    #: per-guid ownership counts after drain, per-recovery reports —
    #: deterministic values only, so seed-determinism holds over mappings
    durable: dict = field(default_factory=dict)
    #: the raw RecoveryReport objects (wall-clock replay timings live
    #: here, deliberately outside to_mapping)
    recovery_reports: list = field(default_factory=list, repr=False)

    @property
    def consistent(self) -> bool:
        """No lost updates: counters account for every ok increment."""
        return self.counter_total == self.invoke_ok

    @property
    def restarts(self) -> int:
        return int(self.durable.get("restarts", 0))

    @property
    def exactly_once(self) -> bool:
        """Exactly one live copy of every application object at drain."""
        ownership = self.durable.get("ownership")
        if ownership is None:
            return True
        return all(count == 1 for count in ownership.values())

    def to_mapping(self) -> dict:
        return {
            **{name: getattr(self, name) for name in (
                "mode", "sites", "clients", "requests", "seed", "soak",
                "issued", "completed", "ok", "shed", "failed", "unresolved",
                "errors", "migrations", "invoke_ok", "counter_total",
                "server_sheds", "duration", "throughput", "profile", "faults",
                "durable",
            )},
            "consistent": self.consistent,
            "exactly_once": self.exactly_once,
            "latency": self.latency,
        }

    def to_lines(self) -> list[str]:
        def ms(value: Any) -> str:
            return "-" if value is None else f"{value * 1e3:.3f}ms"

        lat = self.latency
        lines = [
            f"load report: {self.mode} loop, {self.sites} sites x "
            f"{self.clients} clients, seed {self.seed}"
            + (", soak (faults armed)" if self.soak else ""),
            f"  requests  issued={self.issued} completed={self.completed} "
            f"ok={self.ok} shed={self.shed} failed={self.failed} "
            f"unresolved={self.unresolved}",
            f"  integrity counters={self.counter_total} "
            f"increments_ok={self.invoke_ok} "
            + ("(no lost updates)" if self.consistent else "LOST UPDATES"),
            f"  mobility  {self.migrations} migration(s) under load",
            f"  time      {self.duration:.3f}s simulated, "
            f"throughput {self.throughput:.1f} ok-ops/s",
            f"  latency   p50={ms(lat.get('p50'))} p95={ms(lat.get('p95'))} "
            f"p99={ms(lat.get('p99'))} mean={ms(lat.get('mean'))} "
            f"(n={lat.get('count', 0)})",
        ]
        if self.errors:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.errors.items()))
            lines.append(f"  failures  {pairs}")
        if any(self.server_sheds.values()):
            pairs = ", ".join(
                f"{site}={count}" for site, count in self.server_sheds.items()
            )
            lines.append(f"  sheds     {pairs}")
        if self.faults:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.faults.items()))
            lines.append(f"  faults    {pairs}")
        if self.durable:
            lines.append(
                f"  durable   restarts={self.restarts} "
                + ("exactly-once ownership" if self.exactly_once
                   else "OWNERSHIP VIOLATION")
            )
        return lines


class _Workload:
    """The world plus the op implementations the drivers draw from."""

    def __init__(self, config: LoadConfig):
        self.config = config
        self.network = Network(Simulator(config.seed))
        self.server_ids = [f"s{i}" for i in range(config.sites)]
        self.servers = {
            name: Site(self.network, name, f"load.{name}")
            for name in self.server_ids
        }
        self.clients = [
            Site(self.network, f"c{i}", f"load.c{i}")
            for i in range(config.clients)
        ]
        for client in self.clients:
            for name in self.server_ids:
                self.network.topology.connect(client.site_id, name, *LAN)
        for left in self.server_ids:
            for right in self.server_ids:
                if left < right:
                    self.network.topology.connect(left, right, *LAN)
        self.managers = {
            name: MobilityManager(site, retry_policy=config.retry)
            for name, site in self.servers.items()
        }
        for site in self.servers.values():
            site.inflight_limit = config.inflight_limit
            site.service_delay = config.service_delay
        # the durability plane attaches before any application object is
        # registered, so the initial registrations are already journaled
        self.wals: dict[str, WriteAheadLog] = {}
        self.journals: dict = {}
        self.recovery_reports: list = []
        self.restarts = 0
        if config.durable:
            for name, site in self.servers.items():
                wal = WriteAheadLog(
                    make_store(config.backend, root=config.wal_root, name=name)
                )
                self.wals[name] = wal
                self.journals[name] = attach_journal(site, wal)
        self.targets = [
            (name, self._make_counter(site).guid)
            for name, site in self.servers.items()
        ]
        self.nomad = self._make_nomad(self.servers[self.server_ids[0]])
        self.nomad_home = self.server_ids[0]
        self.nomad_guid = self.nomad.guid
        self.migrations = 0
        self.invoke_ok = 0
        self._hop_inflight = False

    @staticmethod
    def _make_counter(site: Site):
        counter = site.create_object(display_name=f"counter@{site.site_id}")
        counter.define_fixed_data("count", 0)
        counter.define_fixed_method(
            "increment",
            "self.set('count', self.get('count') + (args[0] if args else 1))\n"
            "return self.get('count')",
        )
        counter.seal()
        site.register_object(counter, name="apps/counter")
        return counter

    @staticmethod
    def _make_nomad(site: Site):
        nomad = site.create_object(display_name="nomad")
        nomad.define_fixed_data("hops", 0)
        nomad.define_fixed_method(
            "install", "self.set('hops', self.get('hops') + 1)"
        )
        nomad.seal()
        site.register_object(nomad)
        return nomad

    def counter_total(self) -> int:
        total = 0
        for name, guid in self.targets:
            obj = self.servers[name].local_object(guid)
            total += obj.get_data("count", caller=obj.owner)
        return total

    def ownership(self) -> dict[str, int]:
        """Live-copy count per application guid across serving sites."""
        guids = [guid for _name, guid in self.targets] + [self.nomad_guid]
        return {
            guid: sum(
                1 for site in self.servers.values() if site.has_object(guid)
            )
            for guid in guids
        }

    # -- the crash-and-restart plane ---------------------------------------

    def arm_recovery(self, plane: FaultPlane) -> None:
        """Schedule ``config.crash_cycles`` whole-site kill/restart
        cycles, spread round-robin across the serving sites."""
        config = self.config
        share: dict[str, int] = {}
        for index in range(config.crash_cycles):
            victim = self.server_ids[index % len(self.server_ids)]
            share[victim] = share.get(victim, 0) + 1
        for offset, (victim, cycles) in enumerate(sorted(share.items())):
            plane.add(
                DurableCrashInjector(
                    victim,
                    self._recover,
                    at=config.crash_start + offset * config.crash_every,
                    down_for=config.crash_down,
                    cycles=cycles,
                    every=config.crash_every * len(share),
                )
            )

    def _recover(self, network: Network, site_id: str) -> None:
        """The restart procedure: a fresh incarnation from the WAL, host
        configuration re-applied, journal re-attached and compacted."""
        config = self.config
        site, manager, report = recover_site(
            network, site_id, self.wals[site_id],
            domain=f"load.{site_id}", retry_policy=config.retry,
        )
        site.inflight_limit = config.inflight_limit
        site.service_delay = config.service_delay
        for name, guid in self.targets:
            if name == site_id and site.has_object(guid):
                site.names.bind("apps/counter", guid)
        self.servers[site_id] = site
        self.managers[site_id] = manager
        journal = attach_journal(site, self.wals[site_id])
        journal.checkpoint(compact=True)  # fold replayed history away
        self.journals[site_id] = journal
        if self.nomad_home == site_id and site.has_object(self.nomad_guid):
            self.nomad = site.local_object(self.nomad_guid)
        self.restarts += 1
        self.recovery_reports.append(report)

    def issue_for(self, client: Site, rng) -> Any:
        """The per-client ``issue()`` callback: draw an op, fire it."""
        config = self.config

        def issue() -> BatchFuture:
            op = config.profile.pick(rng)
            dst, guid = self.targets[rng.randrange(len(self.targets))]
            if op == "invoke":
                future = client.remote_invoke_async(
                    dst, guid, "increment", [1], policy=config.retry
                )
                future.when_done(self._count_increment)
                return future
            if op == "get_data":
                return client.remote_get_data_async(
                    dst, guid, "count", policy=config.retry
                )
            if op == "describe":
                return client.remote_describe_async(
                    dst, guid, policy=config.retry
                )
            return self._hop()

        return issue

    def _count_increment(self, future: BatchFuture) -> None:
        try:
            future.result()
        except MROMError:
            return
        self.invoke_ok += 1

    def _hop(self) -> BatchFuture:
        """Migrate the nomad one serving site onward (synchronously —
        the transfer protocol pumps; the settled future keeps the
        driver's accounting uniform).

        Hops are serialized: ``migrate`` pumps the simulator, so while
        one handoff is stretched out by faults (a crashed destination
        keeps the retry window open for seconds of simulated time)
        other drivers' events fire inside the pump and would otherwise
        start a second, concurrent migration of the same object. A hop
        that finds one already in flight defers instead.
        """
        future = BatchFuture()
        if self._hop_inflight:
            future._resolve("deferred")
            return future
        self._hop_inflight = True
        try:
            return self._hop_once(future)
        finally:
            self._hop_inflight = False

    def _hop_once(self, future: BatchFuture) -> BatchFuture:
        manager = self.managers[self.nomad_home]
        if manager.unresolved:
            # a previous handoff's verdict is still pending (a restart
            # resurrected its write-ahead intent, or a timeout left it
            # ambiguous): never migrate a guid whose ownership is in
            # question — resolve first, then adopt wherever it settled
            try:
                manager.reconcile()
            except MROMError:
                pass
            if manager.unresolved:
                future._resolve("deferred")
                return future
            ring = [self.nomad_home] + [
                name for name in self.server_ids if name != self.nomad_home
            ]
            for name in ring:
                if self.servers[name].has_object(self.nomad_guid):
                    # re-adopt the live instance wherever the verdict put
                    # it (a restart may have swapped the site object out
                    # from under our stale reference)
                    self.nomad = self.servers[name].local_object(
                        self.nomad_guid
                    )
                    self.nomad_home = name
                    break
            else:
                future._resolve("deferred")
                return future
        here = self.server_ids.index(self.nomad_home)
        dst = self.server_ids[(here + 1) % len(self.server_ids)]
        if dst == self.nomad_home:  # single-site world: nothing to do
            future._resolve(dst)
            return future
        if not self.network.is_live(dst):
            # never migrate toward a dead host; hop again once it is back
            future._resolve("deferred")
            return future
        try:
            ref = self.managers[self.nomad_home].migrate(self.nomad, dst)
        except TransferUnresolvedError:
            # ambiguous verdict (typically: the destination crashed
            # mid-handshake): the write-ahead intent is journaled and the
            # transfer sits in `unresolved` — the next hop's guard
            # reconciles it, and ownership is never in doubt meanwhile
            future._resolve("deferred")
            return future
        except MROMError as exc:
            if (
                self.config.crash_cycles
                and self.servers[self.nomad_home].has_object(self.nomad_guid)
            ):
                # the handoff aborted cleanly under a crash schedule and
                # the object never left — environment weather, not a
                # protocol failure; the driver will hop again
                future._resolve("deferred")
                return future
            future._fail(exc)
            return future
        self.nomad = self.servers[dst].local_object(ref.guid)
        self.nomad_home = dst
        self.migrations += 1
        future._resolve(dst)
        return future


def _run(config: LoadConfig, soak: bool, attach=None):
    workload = _Workload(config)
    # faults must attach after the world exists but before traffic starts
    plane: FaultPlane | None = attach(workload.network) if attach else None
    if config.durable and config.crash_cycles > 0:
        if plane is None:  # durable non-soak runs still need a plane to
            plane = FaultPlane(  # carry the crash schedule
                workload.network, seed=config.seed, scenario="load-durable"
            )
        workload.arm_recovery(plane)
    stats = DriverStats()
    recorder = LatencyRecorder()
    budget = lambda: stats.issued < config.requests  # noqa: E731

    drivers = []
    for index, client in enumerate(workload.clients):
        rng = workload.network.simulator.derive_rng(f"load.client.{index}")
        issue = workload.issue_for(client, rng)
        if config.mode == "closed":
            drivers.append(
                ClosedLoopDriver(
                    client, issue, budget, stats, recorder,
                    think_time=config.think_time,
                )
            )
        else:
            drivers.append(
                OpenLoopDriver(
                    client, issue, budget, stats, recorder,
                    rate=config.rate, rng=rng,
                )
            )
    for driver in drivers:
        driver.start()
    workload.network.run()

    if config.durable:
        # drain-time reconciliation: every write-ahead intent a restart
        # resurrected (and every timeout-flagged handoff) gets its
        # verdict now, so ownership is settled before accounting
        for _round in range(10):
            if not any(
                manager.unresolved for manager in workload.managers.values()
            ):
                break
            for manager in list(workload.managers.values()):
                try:
                    manager.reconcile()
                except MROMError:
                    pass
            workload.network.run()

    duration = workload.network.now
    report = LoadReport(
        mode=config.mode,
        sites=config.sites,
        clients=config.clients,
        requests=config.requests,
        seed=config.seed,
        soak=soak,
        issued=stats.issued,
        completed=stats.completed,
        ok=stats.ok,
        shed=stats.shed,
        failed=stats.failed,
        unresolved=stats.unresolved,
        errors=dict(stats.errors),
        migrations=workload.migrations,
        invoke_ok=workload.invoke_ok,
        counter_total=workload.counter_total(),
        server_sheds={
            name: site.shed_requests
            for name, site in workload.servers.items()
        },
        duration=duration,
        throughput=stats.ok / duration if duration > 0 else 0.0,
        latency=recorder.snapshot(),
        profile=config.profile.to_mapping(),
        faults=dict(plane.counts) if plane is not None else {},
        durable=(
            {
                "backend": config.backend,
                "restarts": workload.restarts,
                "ownership": workload.ownership(),
                "recoveries": [
                    recovery.to_mapping()
                    for recovery in workload.recovery_reports
                ],
            }
            if config.durable else {}
        ),
        recovery_reports=list(workload.recovery_reports),
    )
    tel = _telemetry.ACTIVE
    if tel is not None:
        tel.events.emit(
            "load.report",
            mode=report.mode, issued=report.issued, ok=report.ok,
            shed=report.shed, failed=report.failed,
            unresolved=report.unresolved, throughput=report.throughput,
            p50=report.latency.get("p50"), p99=report.latency.get("p99"),
        )
    return report


def run_load_scenario(config: LoadConfig | None = None) -> LoadReport:
    """One clean (fault-free) load run; see :class:`LoadConfig`."""
    return _run(config or LoadConfig(), soak=False)


#: Retry schedule armed for soak runs when the config does not bring one:
#: generous attempts, short timeouts — tuned for the injected fault rates.
SOAK_RETRY = RetryPolicy(
    attempts=6, timeout=0.5, backoff=0.05, multiplier=2.0, max_backoff=1.0
)


def run_soak_scenario(config: LoadConfig | None = None) -> LoadReport:
    """A load run with the PR 1 fault plane armed: messages are dropped,
    duplicated and jittered while the drivers sustain offered load, and
    retry policies (``SOAK_RETRY`` unless the config brings its own)
    carry every logical request to a settled outcome anyway."""
    config = config or LoadConfig()
    if config.retry is None:
        config = LoadConfig(**{**config.__dict__, "retry": SOAK_RETRY})

    def attach(network: Network) -> FaultPlane:
        plane = FaultPlane(network, seed=config.seed, scenario="load-soak")
        plane.add(DropInjector(rate=0.02))
        plane.add(DuplicateInjector(rate=0.02))
        plane.add(JitterInjector(max_jitter=0.005, rate=0.25))
        return plane

    return _run(config, soak=True, attach=attach)
