"""Multi-site load and soak scenarios, and their reports.

A scenario builds a world — ``sites`` serving sites each hosting a
counter object, ``clients`` client sites fully connected to them over
the simulated LAN — starts one driver per client, and pumps the kernel
dry. Drivers issue a weighted mix of protocol ops; one *nomad* object
hops between serving sites whenever the mix draws ``migrate``, so
mobility runs concurrently with invocation traffic, the combination
the paper's runtime exists for.

Accounting is closed-form: every issued request must settle (reply,
typed shed, or typed failure) — ``unresolved`` is the count that did
not and must be zero after a drain — and the sum of the server
counters must equal the number of successful increments, which is the
end-to-end no-lost-updates check.

The soak variant layers the fault plane (drops, duplicates, jitter)
and arms retry policies, demonstrating the exactly-once and
backpressure machinery holding under sustained adversarial load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.errors import MROMError
from ..faults import DropInjector, DuplicateInjector, FaultPlane, JitterInjector
from ..mobility import MobilityManager
from ..net import LAN, Network, RetryPolicy, Site
from ..net.rmi import BatchFuture
from ..sim import Simulator
from ..telemetry import state as _telemetry
from .drivers import ClosedLoopDriver, DriverStats, OpenLoopDriver
from .latency import LatencyRecorder
from .profile import DEFAULT_PROFILE, OpProfile

__all__ = ["LoadConfig", "LoadReport", "run_load_scenario", "run_soak_scenario"]


@dataclass
class LoadConfig:
    """Knobs for one load run; the defaults are the smoke shape."""

    sites: int = 4             # serving sites
    clients: int = 4           # client sites (one driver each)
    requests: int = 10_000     # total logical requests across all drivers
    mode: str = "closed"       # "closed" or "open"
    rate: float = 500.0        # open loop: per-client arrivals / sim second
    think_time: float = 0.0    # closed loop: gap after each completion
    seed: int = 0
    inflight_limit: int | None = None  # per-server admission window
    service_delay: float = 0.0         # per-request service time at servers
    profile: OpProfile = field(default_factory=lambda: DEFAULT_PROFILE)
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.sites < 1 or self.clients < 1 or self.requests < 1:
            raise ValueError("sites, clients and requests must be positive")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', not {self.mode!r}")
        if self.rate <= 0 or self.think_time < 0 or self.service_delay < 0:
            raise ValueError("rate must be positive; delays cannot be negative")


@dataclass
class LoadReport:
    """Everything a run learned, in one flat record."""

    mode: str
    sites: int
    clients: int
    requests: int
    seed: int
    soak: bool
    issued: int
    completed: int
    ok: int
    shed: int
    failed: int
    unresolved: int
    errors: dict
    migrations: int
    invoke_ok: int
    counter_total: int
    server_sheds: dict
    duration: float
    throughput: float
    latency: dict
    profile: dict
    faults: dict = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        """No lost updates: counters account for every ok increment."""
        return self.counter_total == self.invoke_ok

    def to_mapping(self) -> dict:
        return {
            **{name: getattr(self, name) for name in (
                "mode", "sites", "clients", "requests", "seed", "soak",
                "issued", "completed", "ok", "shed", "failed", "unresolved",
                "errors", "migrations", "invoke_ok", "counter_total",
                "server_sheds", "duration", "throughput", "profile", "faults",
            )},
            "consistent": self.consistent,
            "latency": self.latency,
        }

    def to_lines(self) -> list[str]:
        def ms(value: Any) -> str:
            return "-" if value is None else f"{value * 1e3:.3f}ms"

        lat = self.latency
        lines = [
            f"load report: {self.mode} loop, {self.sites} sites x "
            f"{self.clients} clients, seed {self.seed}"
            + (", soak (faults armed)" if self.soak else ""),
            f"  requests  issued={self.issued} completed={self.completed} "
            f"ok={self.ok} shed={self.shed} failed={self.failed} "
            f"unresolved={self.unresolved}",
            f"  integrity counters={self.counter_total} "
            f"increments_ok={self.invoke_ok} "
            + ("(no lost updates)" if self.consistent else "LOST UPDATES"),
            f"  mobility  {self.migrations} migration(s) under load",
            f"  time      {self.duration:.3f}s simulated, "
            f"throughput {self.throughput:.1f} ok-ops/s",
            f"  latency   p50={ms(lat.get('p50'))} p95={ms(lat.get('p95'))} "
            f"p99={ms(lat.get('p99'))} mean={ms(lat.get('mean'))} "
            f"(n={lat.get('count', 0)})",
        ]
        if self.errors:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.errors.items()))
            lines.append(f"  failures  {pairs}")
        if any(self.server_sheds.values()):
            pairs = ", ".join(
                f"{site}={count}" for site, count in self.server_sheds.items()
            )
            lines.append(f"  sheds     {pairs}")
        if self.faults:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.faults.items()))
            lines.append(f"  faults    {pairs}")
        return lines


class _Workload:
    """The world plus the op implementations the drivers draw from."""

    def __init__(self, config: LoadConfig):
        self.config = config
        self.network = Network(Simulator(config.seed))
        self.server_ids = [f"s{i}" for i in range(config.sites)]
        self.servers = {
            name: Site(self.network, name, f"load.{name}")
            for name in self.server_ids
        }
        self.clients = [
            Site(self.network, f"c{i}", f"load.c{i}")
            for i in range(config.clients)
        ]
        for client in self.clients:
            for name in self.server_ids:
                self.network.topology.connect(client.site_id, name, *LAN)
        for left in self.server_ids:
            for right in self.server_ids:
                if left < right:
                    self.network.topology.connect(left, right, *LAN)
        self.managers = {
            name: MobilityManager(site, retry_policy=config.retry)
            for name, site in self.servers.items()
        }
        for site in self.servers.values():
            site.inflight_limit = config.inflight_limit
            site.service_delay = config.service_delay
        self.targets = [
            (name, self._make_counter(site).guid)
            for name, site in self.servers.items()
        ]
        self.nomad = self._make_nomad(self.servers[self.server_ids[0]])
        self.nomad_home = self.server_ids[0]
        self.migrations = 0
        self.invoke_ok = 0

    @staticmethod
    def _make_counter(site: Site):
        counter = site.create_object(display_name=f"counter@{site.site_id}")
        counter.define_fixed_data("count", 0)
        counter.define_fixed_method(
            "increment",
            "self.set('count', self.get('count') + (args[0] if args else 1))\n"
            "return self.get('count')",
        )
        counter.seal()
        site.register_object(counter, name="apps/counter")
        return counter

    @staticmethod
    def _make_nomad(site: Site):
        nomad = site.create_object(display_name="nomad")
        nomad.define_fixed_data("hops", 0)
        nomad.define_fixed_method(
            "install", "self.set('hops', self.get('hops') + 1)"
        )
        nomad.seal()
        site.register_object(nomad)
        return nomad

    def counter_total(self) -> int:
        total = 0
        for name, guid in self.targets:
            obj = self.servers[name].local_object(guid)
            total += obj.get_data("count", caller=obj.owner)
        return total

    def issue_for(self, client: Site, rng) -> Any:
        """The per-client ``issue()`` callback: draw an op, fire it."""
        config = self.config

        def issue() -> BatchFuture:
            op = config.profile.pick(rng)
            dst, guid = self.targets[rng.randrange(len(self.targets))]
            if op == "invoke":
                future = client.remote_invoke_async(
                    dst, guid, "increment", [1], policy=config.retry
                )
                future.when_done(self._count_increment)
                return future
            if op == "get_data":
                return client.remote_get_data_async(
                    dst, guid, "count", policy=config.retry
                )
            if op == "describe":
                return client.remote_describe_async(
                    dst, guid, policy=config.retry
                )
            return self._hop()

        return issue

    def _count_increment(self, future: BatchFuture) -> None:
        try:
            future.result()
        except MROMError:
            return
        self.invoke_ok += 1

    def _hop(self) -> BatchFuture:
        """Migrate the nomad one serving site onward (synchronously —
        the transfer protocol pumps; the settled future keeps the
        driver's accounting uniform)."""
        future = BatchFuture()
        here = self.server_ids.index(self.nomad_home)
        dst = self.server_ids[(here + 1) % len(self.server_ids)]
        if dst == self.nomad_home:  # single-site world: nothing to do
            future._resolve(dst)
            return future
        try:
            ref = self.managers[self.nomad_home].migrate(self.nomad, dst)
        except MROMError as exc:
            future._fail(exc)
            return future
        self.nomad = self.servers[dst].local_object(ref.guid)
        self.nomad_home = dst
        self.migrations += 1
        future._resolve(dst)
        return future


def _run(config: LoadConfig, soak: bool, attach=None):
    workload = _Workload(config)
    # faults must attach after the world exists but before traffic starts
    plane: FaultPlane | None = attach(workload.network) if attach else None
    stats = DriverStats()
    recorder = LatencyRecorder()
    budget = lambda: stats.issued < config.requests  # noqa: E731

    drivers = []
    for index, client in enumerate(workload.clients):
        rng = workload.network.simulator.derive_rng(f"load.client.{index}")
        issue = workload.issue_for(client, rng)
        if config.mode == "closed":
            drivers.append(
                ClosedLoopDriver(
                    client, issue, budget, stats, recorder,
                    think_time=config.think_time,
                )
            )
        else:
            drivers.append(
                OpenLoopDriver(
                    client, issue, budget, stats, recorder,
                    rate=config.rate, rng=rng,
                )
            )
    for driver in drivers:
        driver.start()
    workload.network.run()

    duration = workload.network.now
    report = LoadReport(
        mode=config.mode,
        sites=config.sites,
        clients=config.clients,
        requests=config.requests,
        seed=config.seed,
        soak=soak,
        issued=stats.issued,
        completed=stats.completed,
        ok=stats.ok,
        shed=stats.shed,
        failed=stats.failed,
        unresolved=stats.unresolved,
        errors=dict(stats.errors),
        migrations=workload.migrations,
        invoke_ok=workload.invoke_ok,
        counter_total=workload.counter_total(),
        server_sheds={
            name: site.shed_requests
            for name, site in workload.servers.items()
        },
        duration=duration,
        throughput=stats.ok / duration if duration > 0 else 0.0,
        latency=recorder.snapshot(),
        profile=config.profile.to_mapping(),
        faults=dict(plane.counts) if plane is not None else {},
    )
    tel = _telemetry.ACTIVE
    if tel is not None:
        tel.events.emit(
            "load.report",
            mode=report.mode, issued=report.issued, ok=report.ok,
            shed=report.shed, failed=report.failed,
            unresolved=report.unresolved, throughput=report.throughput,
            p50=report.latency.get("p50"), p99=report.latency.get("p99"),
        )
    return report


def run_load_scenario(config: LoadConfig | None = None) -> LoadReport:
    """One clean (fault-free) load run; see :class:`LoadConfig`."""
    return _run(config or LoadConfig(), soak=False)


#: Retry schedule armed for soak runs when the config does not bring one:
#: generous attempts, short timeouts — tuned for the injected fault rates.
SOAK_RETRY = RetryPolicy(
    attempts=6, timeout=0.5, backoff=0.05, multiplier=2.0, max_backoff=1.0
)


def run_soak_scenario(config: LoadConfig | None = None) -> LoadReport:
    """A load run with the PR 1 fault plane armed: messages are dropped,
    duplicated and jittered while the drivers sustain offered load, and
    retry policies (``SOAK_RETRY`` unless the config brings its own)
    carry every logical request to a settled outcome anyway."""
    config = config or LoadConfig()
    if config.retry is None:
        config = LoadConfig(**{**config.__dict__, "retry": SOAK_RETRY})

    def attach(network: Network) -> FaultPlane:
        plane = FaultPlane(network, seed=config.seed, scenario="load-soak")
        plane.add(DropInjector(rate=0.02))
        plane.add(DuplicateInjector(rate=0.02))
        plane.add(JitterInjector(max_jitter=0.005, rate=0.25))
        return plane

    return _run(config, soak=True, attach=attach)
