"""Workload drivers and load/soak scenarios over the deterministic kernel.

The serving runtime (async RMI + per-site admission windows) is only
credible under load: this package generates it. Two driver shapes —
closed-loop (a fixed population of logical clients, each with one
request outstanding) and open-loop (arrivals at a configured rate that
does *not* slow down when the servers back up, the shape that exposes
overload) — issue mixed protocol operations (invoke / get_data /
describe / migrate) against a multi-site simulated world, record
latencies into fixed buckets, and report interpolated p50/p95/p99
percentiles plus shed/failure accounting. The soak scenario layers the
fault plane (drops, duplicates, jitter) with retry policies on top.

Everything runs in simulated time on seeded randomness: a load run is a
deterministic program, so a throughput or tail-latency regression is
reproducible by seed.
"""

from .cluster import (
    ClusterConfig,
    ClusterReport,
    run_cluster_scenario,
    run_cluster_soak,
)
from .drivers import ClosedLoopDriver, DriverStats, OpenLoopDriver
from .latency import LOAD_BUCKETS, LatencyRecorder
from .procs import ClusterProcsConfig, run_cluster_procs
from .profile import CLUSTER_PROFILE, DEFAULT_PROFILE, READ_HEAVY, OpProfile
from .scenario import (
    LoadConfig,
    LoadReport,
    run_load_scenario,
    run_soak_scenario,
)

__all__ = [
    "LOAD_BUCKETS",
    "LatencyRecorder",
    "OpProfile",
    "DEFAULT_PROFILE",
    "READ_HEAVY",
    "CLUSTER_PROFILE",
    "DriverStats",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "LoadConfig",
    "LoadReport",
    "run_load_scenario",
    "run_soak_scenario",
    "ClusterConfig",
    "ClusterReport",
    "run_cluster_scenario",
    "run_cluster_soak",
    "ClusterProcsConfig",
    "run_cluster_procs",
]
