"""Sharded-cluster load scenarios: drivers over the partitioned directory.

Where :mod:`repro.load.scenario` drives raw guid-addressed RMI, this
module drives the cluster layer end to end: ``sites`` serving sites
share one seeded :class:`~repro.naming.HashRing`, every application
counter is *published* under a name at its ring owner, and every client
runs a :class:`~repro.naming.DirectoryClient` — resolving through the
ring-designated shard, caching leases, and following typed
:class:`~repro.core.errors.StaleLeaseError` redirects when a migration
moves a placement out from under a cached lease mid-load.

The op mix (:data:`~repro.load.profile.CLUSTER_PROFILE`) maps onto the
lease protocol: ``invoke`` increments through a lease, ``get_data``
peeks through one, ``describe`` is an unconditional lease refresh, and
``migrate`` hops a random placement to another site through the
two-phase handoff — which invalidates every cached lease for that name
cluster-wide, by generation, the moment it commits.

Accounting stays closed-form (PR-6): every issued request settles,
``counter_total == invoke_ok`` (no lost or double-counted updates even
across redirects — the serving site's at-most-once ledger and the
fail-fast stale check compose), and the *single-owner* invariant — no
name with two live active placements — is asserted after every move
and at drain. The soak variant arms the fault plane on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.errors import MROMError, StaleLeaseError, TransferUnresolvedError
from ..faults import DropInjector, DuplicateInjector, FaultPlane, JitterInjector
from ..naming import ClusterManager, DirectoryClient, HashRing
from ..net import LAN, Network, RetryPolicy, Site
from ..net.rmi import BatchFuture
from ..sim import Simulator
from ..telemetry import state as _telemetry
from .drivers import ClosedLoopDriver, DriverStats, OpenLoopDriver
from .latency import LatencyRecorder
from .profile import CLUSTER_PROFILE, OpProfile
from .scenario import SOAK_RETRY

__all__ = [
    "ClusterConfig",
    "ClusterReport",
    "run_cluster_scenario",
    "run_cluster_soak",
]


@dataclass
class ClusterConfig:
    """Knobs for one sim-mode cluster run; defaults are the smoke shape."""

    sites: int = 4              # serving sites on the ring
    clients: int = 8            # client sites (one driver + lease cache each)
    requests: int = 2_000       # total logical requests across all drivers
    keys_per_site: int = 4      # published names ~= sites * keys_per_site
    vnodes: int = 64            # ring virtual nodes per site
    mode: str = "closed"        # "closed" or "open"
    rate: float = 500.0         # open loop: per-client arrivals / sim second
    think_time: float = 0.0     # closed loop: gap after each completion
    seed: int = 0
    inflight_limit: int | None = None   # per-server admission window
    service_delay: float = 0.0          # per-request service time at servers
    max_redirects: int = 6              # stale-lease redirects per op
    profile: OpProfile = field(default_factory=lambda: CLUSTER_PROFILE)
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.sites < 1 or self.clients < 1 or self.requests < 1:
            raise ValueError("sites, clients and requests must be positive")
        if self.keys_per_site < 1 or self.vnodes < 1:
            raise ValueError("keys_per_site and vnodes must be positive")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', not {self.mode!r}")
        if self.rate <= 0 or self.think_time < 0 or self.service_delay < 0:
            raise ValueError("rate must be positive; delays cannot be negative")
        if self.max_redirects < 1:
            raise ValueError("max_redirects must be positive")


@dataclass
class ClusterReport:
    """Everything a cluster run learned, in one flat record."""

    sites: int
    clients: int
    requests: int
    keys: int
    seed: int
    soak: bool
    issued: int
    completed: int
    ok: int
    shed: int
    failed: int
    unresolved: int
    errors: dict
    migrations: int
    moves_deferred: int
    invoke_ok: int
    counter_total: int
    #: client-side stale-lease redirects followed (across all clients)
    stale_client: int
    #: server-side stale refusals issued (across all serving sites)
    stale_served: int
    #: aggregated shard + client-cache counters
    directory: dict
    #: active placements per serving site at drain
    placements: dict
    #: no name ever had two live active placements (checked at every
    #: move commit and at drain)
    single_owner: bool
    owner_violations: int
    #: every name ends with exactly one active placement, the shard entry
    #: agrees with it, and a fresh (cache-less) client can reach it
    converged: bool
    duration: float
    throughput: float
    latency: dict
    profile: dict
    faults: dict = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        """No lost updates through any redirect chain."""
        return self.counter_total == self.invoke_ok

    @property
    def stale_rate(self) -> float:
        """Client stale-redirects per completed op."""
        return self.stale_client / self.completed if self.completed else 0.0

    def to_mapping(self) -> dict:
        return {
            **{name: getattr(self, name) for name in (
                "sites", "clients", "requests", "keys", "seed", "soak",
                "issued", "completed", "ok", "shed", "failed", "unresolved",
                "errors", "migrations", "moves_deferred", "invoke_ok",
                "counter_total", "stale_client", "stale_served", "directory",
                "placements", "single_owner", "owner_violations", "converged",
                "duration", "throughput", "profile", "faults",
            )},
            "consistent": self.consistent,
            "stale_rate": self.stale_rate,
            "latency": self.latency,
        }

    def to_lines(self) -> list[str]:
        def ms(value: Any) -> str:
            return "-" if value is None else f"{value * 1e3:.3f}ms"

        lat = self.latency
        lines = [
            f"cluster report: {self.sites} sites x {self.clients} clients, "
            f"{self.keys} names, seed {self.seed}"
            + (", soak (faults armed)" if self.soak else ""),
            f"  requests  issued={self.issued} completed={self.completed} "
            f"ok={self.ok} shed={self.shed} failed={self.failed} "
            f"unresolved={self.unresolved}",
            f"  integrity counters={self.counter_total} "
            f"increments_ok={self.invoke_ok} "
            + ("(no lost updates)" if self.consistent else "LOST UPDATES"),
            f"  directory stale_client={self.stale_client} "
            f"stale_served={self.stale_served} "
            f"rate={self.stale_rate:.4f}/op",
            f"  mobility  {self.migrations} move(s), "
            f"{self.moves_deferred} deferred, "
            + ("single-owner held" if self.single_owner
               else f"{self.owner_violations} OWNER VIOLATION(S)"),
            f"  placement "
            + " ".join(f"{site}={count}"
                       for site, count in sorted(self.placements.items()))
            + (" (converged)" if self.converged else " NOT CONVERGED"),
            f"  time      {self.duration:.3f}s simulated, "
            f"throughput {self.throughput:.1f} ok-ops/s",
            f"  latency   p50={ms(lat.get('p50'))} p95={ms(lat.get('p95'))} "
            f"p99={ms(lat.get('p99'))} (n={lat.get('count', 0)})",
        ]
        if self.errors:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.errors.items()))
            lines.append(f"  failures  {pairs}")
        if self.faults:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.faults.items()))
            lines.append(f"  faults    {pairs}")
        return lines


class _ClusterWorld:
    """Ring + shards + placements + directory clients, fully meshed."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.network = Network(Simulator(config.seed))
        self.server_ids = [f"s{i}" for i in range(config.sites)]
        self.servers = {
            name: Site(self.network, name, f"cluster.{name}")
            for name in self.server_ids
        }
        self.clients = [
            Site(self.network, f"c{i}", f"cluster.c{i}")
            for i in range(config.clients)
        ]
        everyone = self.server_ids + [client.site_id for client in self.clients]
        for left in everyone:
            for right in everyone:
                if left < right:
                    self.network.topology.connect(left, right, *LAN)
        #: one ring instance shared by every manager and client — in the
        #: multi-process driver each process derives the identical ring
        #: from (sites, vnodes, seed) instead
        self.ring = HashRing(self.server_ids, vnodes=config.vnodes,
                             seed=config.seed)
        self.managers = {
            name: ClusterManager(site, self.ring, retry_policy=config.retry)
            for name, site in self.servers.items()
        }
        for site in self.servers.values():
            site.inflight_limit = config.inflight_limit
            site.service_delay = config.service_delay
        self.names = [
            f"apps/k{i}" for i in range(config.sites * config.keys_per_site)
        ]
        for name in self.names:
            home = self.ring.owner(name)
            self.managers[home].publish(self._make_counter(self.servers[home]), name)
        self.directory_clients = {
            client.site_id: DirectoryClient(
                client, self.ring,
                retry_policy=config.retry,
                max_redirects=config.max_redirects,
            )
            for client in self.clients
        }
        self.migrations = 0
        self.moves_deferred = 0
        self.owner_violations = 0
        self.invoke_ok = 0
        self._move_inflight = False

    @staticmethod
    def _make_counter(site: Site):
        counter = site.create_object(display_name=f"counter@{site.site_id}")
        counter.define_fixed_data("count", 0)
        counter.define_fixed_method(
            "increment",
            "self.set('count', self.get('count') + (args[0] if args else 1))\n"
            "return self.get('count')",
        )
        counter.define_fixed_method("peek", "return self.get('count')")
        counter.seal()
        return counter

    # -- invariants ----------------------------------------------------------

    def active_homes(self, name: str) -> list[str]:
        return [
            site_id for site_id, manager in self.managers.items()
            if manager.placements.get(name, {}).get("state") == "active"
        ]

    def check_single_owner(self) -> int:
        """Names with two live active placements right now (must be 0)."""
        violations = sum(
            1 for name in self.names if len(self.active_homes(name)) > 1
        )
        self.owner_violations += violations
        return violations

    def counter_total(self) -> int:
        total = 0
        for name in self.names:
            for site_id in self.active_homes(name):
                entry = self.managers[site_id].placements[name]
                obj = self.servers[site_id].local_object(entry["guid"])
                total += obj.get_data("count", caller=obj.owner)
        return total

    def converged(self) -> bool:
        """One active home per name, the shard agrees, and a cache-less
        client can reach it."""
        probe = DirectoryClient(
            self.clients[0], self.ring, retry_policy=self.config.retry,
            max_redirects=self.config.max_redirects,
        )
        for name in self.names:
            homes = self.active_homes(name)
            if len(homes) != 1:
                return False
            entry = self.managers[homes[0]].placements[name]
            shard = self.managers[self.ring.owner(name)].shard
            recorded = shard.entries.get(name)
            if recorded is None:
                return False
            if recorded["site"] != homes[0]:
                return False
            if recorded["generation"] != entry["generation"]:
                return False
            try:
                probe.invoke(name, "peek")
            except MROMError:
                return False
        return True

    def placements_by_site(self) -> dict[str, int]:
        return {
            site_id: sum(
                1 for entry in manager.placements.values()
                if entry["state"] == "active"
            )
            for site_id, manager in self.managers.items()
        }

    def directory_counters(self) -> dict:
        shards = [manager.shard for manager in self.managers.values()]
        dcs = list(self.directory_clients.values())
        return {
            "lookups": sum(s.lookups for s in shards),
            "hits": sum(s.hits for s in shards),
            "misses": sum(s.misses for s in shards),
            "updates": sum(s.updates for s in shards),
            "stale_updates": sum(s.stale_updates for s in shards),
            "cache_hits": sum(dc.cache_hits for dc in dcs),
            "cache_misses": sum(dc.cache_misses for dc in dcs),
            "refreshes": sum(dc.refreshes for dc in dcs),
        }

    # -- the op implementations ----------------------------------------------

    def issue_for(self, client: Site, rng) -> Callable[[], BatchFuture]:
        config = self.config
        directory = self.directory_clients[client.site_id]

        def issue() -> BatchFuture:
            op = config.profile.pick(rng)
            name = self.names[rng.randrange(len(self.names))]
            if op == "invoke":
                future = directory.invoke_async(name, "increment", [1])
                future.when_done(self._count_increment)
                return future
            if op == "get_data":
                return directory.invoke_async(name, "peek")
            if op == "describe":
                return directory.refresh_async(name)
            return self._move(rng)

        return issue

    def _count_increment(self, future: BatchFuture) -> None:
        try:
            future.result()
        except MROMError:
            return
        self.invoke_ok += 1

    def _move(self, rng) -> BatchFuture:
        """Hop one random placement to the next serving site.

        Moves are serialized the way :mod:`.scenario` serializes nomad
        hops: ``migrate`` pumps the simulator, and a second concurrent
        move of the same placement (started by a driver event firing
        inside the pump) would race the two-phase protocol.
        """
        future = BatchFuture()
        if self._move_inflight:
            self.moves_deferred += 1
            future._resolve("deferred")
            return future
        self._move_inflight = True
        try:
            return self._move_once(future, rng)
        finally:
            self._move_inflight = False

    def _move_once(self, future: BatchFuture, rng) -> BatchFuture:
        name = self.names[rng.randrange(len(self.names))]
        # settle any committed-but-unfinished moves first: a placement
        # whose adopt is still pending must finish before a new hop of
        # the same name can even find its active home
        for manager in self.managers.values():
            if not manager.quiescent:
                manager.settle()
        homes = self.active_homes(name)
        if len(homes) != 1:
            self.moves_deferred += 1
            future._resolve("deferred")
            return future
        src = homes[0]
        here = self.server_ids.index(src)
        dst = self.server_ids[(here + 1) % len(self.server_ids)]
        if dst == src:  # single-site ring: nothing to move
            future._resolve(dst)
            return future
        if not self.network.is_live(dst) or not self.network.is_live(src):
            self.moves_deferred += 1
            future._resolve("deferred")
            return future
        try:
            self.managers[src].migrate(name, dst)
        except TransferUnresolvedError:
            # ambiguous verdict: the placement stays "moving" (refusing
            # clients with typed stale errors) until settle() resolves it
            self.moves_deferred += 1
            future._resolve("deferred")
            return future
        except MROMError as exc:
            if self.soak_forgiving:
                # environment weather under the fault plane (a dead or
                # shedding destination): the placement was restored,
                # clients were never at risk — just try again later
                self.moves_deferred += 1
                future._resolve("deferred")
                return future
            future._fail(exc)
            return future
        self.migrations += 1
        self.check_single_owner()
        future._resolve(dst)
        return future

    soak_forgiving = False


def _run_cluster(
    config: ClusterConfig, soak: bool, attach=None
) -> ClusterReport:
    world = _ClusterWorld(config)
    world.soak_forgiving = soak
    plane: FaultPlane | None = (
        attach(world.network, world) if attach else None
    )
    stats = DriverStats()
    recorder = LatencyRecorder()
    budget = lambda: stats.issued < config.requests  # noqa: E731

    drivers = []
    for index, client in enumerate(world.clients):
        rng = world.network.simulator.derive_rng(f"cluster.client.{index}")
        issue = world.issue_for(client, rng)
        if config.mode == "closed":
            drivers.append(
                ClosedLoopDriver(
                    client, issue, budget, stats, recorder,
                    think_time=config.think_time,
                )
            )
        else:
            drivers.append(
                OpenLoopDriver(
                    client, issue, budget, stats, recorder,
                    rate=config.rate, rng=rng,
                )
            )
    for driver in drivers:
        driver.start()
    world.network.run()

    # drain-time settlement: every ambiguous handoff gets its verdict,
    # every committed move finishes its adopt + directory update
    for _round in range(12):
        if all(manager.quiescent for manager in world.managers.values()):
            break
        for manager in world.managers.values():
            manager.settle()
        world.network.run()
    world.check_single_owner()

    duration = world.network.now
    report = ClusterReport(
        sites=config.sites,
        clients=config.clients,
        requests=config.requests,
        keys=len(world.names),
        seed=config.seed,
        soak=soak,
        issued=stats.issued,
        completed=stats.completed,
        ok=stats.ok,
        shed=stats.shed,
        failed=stats.failed,
        unresolved=stats.unresolved,
        errors=dict(stats.errors),
        migrations=world.migrations,
        moves_deferred=world.moves_deferred,
        invoke_ok=world.invoke_ok,
        counter_total=world.counter_total(),
        stale_client=sum(
            dc.stale for dc in world.directory_clients.values()
        ),
        stale_served=sum(
            manager.stale_served for manager in world.managers.values()
        ),
        directory=world.directory_counters(),
        placements=world.placements_by_site(),
        single_owner=world.owner_violations == 0,
        owner_violations=world.owner_violations,
        converged=world.converged(),
        duration=duration,
        throughput=stats.ok / duration if duration > 0 else 0.0,
        latency=recorder.snapshot(),
        profile=config.profile.to_mapping(),
        faults=dict(plane.counts) if plane is not None else {},
    )
    tel = _telemetry.ACTIVE
    if tel is not None:
        tel.events.emit(
            "cluster.report",
            sites=report.sites, issued=report.issued, ok=report.ok,
            stale_client=report.stale_client,
            stale_served=report.stale_served,
            migrations=report.migrations, throughput=report.throughput,
            converged=report.converged, single_owner=report.single_owner,
        )
    return report


def run_cluster_scenario(config: ClusterConfig | None = None) -> ClusterReport:
    """One clean (fault-free) cluster run; see :class:`ClusterConfig`."""
    return _run_cluster(config or ClusterConfig(), soak=False)


def run_cluster_soak(
    config: ClusterConfig | None = None, attach=None
) -> ClusterReport:
    """A cluster run with the fault plane armed.

    The default plane mirrors the load soak (drops, duplicates, jitter
    on all traffic — directory RPCs included); tests pass their own
    ``attach(network, world)`` to aim harsher schedules (directory-RPC
    drops, mid-migration site flaps) at the lease protocol.
    """
    config = config or ClusterConfig()
    if config.retry is None:
        config = ClusterConfig(**{**config.__dict__, "retry": SOAK_RETRY})

    if attach is None:
        def attach(network: Network, world: _ClusterWorld) -> FaultPlane:
            plane = FaultPlane(network, seed=config.seed,
                               scenario="cluster-soak")
            plane.add(DropInjector(rate=0.02))
            plane.add(DuplicateInjector(rate=0.02))
            plane.add(JitterInjector(max_jitter=0.005, rate=0.25))
            return plane

    return _run_cluster(config, soak=True, attach=attach)
