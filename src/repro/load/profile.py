"""Weighted operation mixes for workload generation.

A profile maps protocol verbs to relative weights; drivers draw from it
with a seeded RNG, so the op sequence of a run is a pure function of
(profile, seed). ``migrate`` models the paper's defining operation —
an object hopping sites mid-load — and defaults to a small share, as
mobility is orders of magnitude rarer than invocation in the HADAS
usage model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["OpProfile", "DEFAULT_PROFILE", "READ_HEAVY", "CLUSTER_PROFILE"]

_OPS = ("invoke", "get_data", "describe", "migrate")


@dataclass(frozen=True)
class OpProfile:
    """Relative weights per operation kind (any non-negative scale)."""

    invoke: float = 0.70
    get_data: float = 0.20
    describe: float = 0.08
    migrate: float = 0.02

    def __post_init__(self) -> None:
        weights = [getattr(self, op) for op in _OPS]
        if any(weight < 0 for weight in weights):
            raise ValueError(f"op weights cannot be negative: {self}")
        if not sum(weights):
            raise ValueError("an op profile needs at least one positive weight")

    @property
    def total(self) -> float:
        return sum(getattr(self, op) for op in _OPS)

    def pick(self, rng: random.Random) -> str:
        """Draw one op kind; deterministic given the RNG state."""
        roll = rng.random() * self.total
        for op in _OPS:
            roll -= getattr(self, op)
            if roll < 0:
                return op
        return _OPS[0]  # pragma: no cover - float-edge fallback

    @classmethod
    def parse(cls, spec: str) -> "OpProfile":
        """Build from a CLI spec like ``invoke=70,get_data=20,describe=10``.

        Unmentioned ops get weight 0 (not their defaults): a spec states
        the whole mix.
        """
        weights = dict.fromkeys(_OPS, 0.0)
        for part in filter(None, (p.strip() for p in spec.split(","))):
            name, _, value = part.partition("=")
            name = name.strip()
            if name not in weights:
                raise ValueError(
                    f"unknown op {name!r} (choose from {', '.join(_OPS)})"
                )
            try:
                weights[name] = float(value)
            except ValueError:
                raise ValueError(f"bad weight for {name!r}: {value!r}") from None
        return cls(**weights)

    def to_mapping(self) -> dict:
        return {op: getattr(self, op) for op in _OPS}


DEFAULT_PROFILE = OpProfile()

#: Mostly reads: the shape of a browsing/introspection workload.
READ_HEAVY = OpProfile(invoke=0.15, get_data=0.65, describe=0.20, migrate=0.0)

#: The sharded-cluster mix: mutations and reads through directory
#: leases, ``describe`` repurposed as an unconditional lease refresh,
#: and ``migrate`` as a ring-mediated placement hop — rare, as in the
#: default mix, but frequent enough that every run exercises the
#: stale-lease redirect path.
CLUSTER_PROFILE = OpProfile(invoke=0.60, get_data=0.25, describe=0.10, migrate=0.05)
