"""AST-whitelist sandbox for portable (mobile) method code.

The paper's substrate was the JVM: method bodies travelled as verified
bytecode. Our substitution carries method bodies as *source text* and
verifies them here before compilation — the analog of JVM bytecode
verification (see DESIGN.md, Substitutions).

The verifier is a whitelist, not a blacklist: only explicitly permitted
AST node types, builtins and attribute names are accepted. Anything else
raises :class:`SandboxViolation` at *install* time, so a hostile object is
rejected before any of its code runs.

What portable code may do:

* arithmetic, comparisons, boolean logic, string/collection literals;
* local variables, ``if``/``while``/``for``, ``try``/``except``,
  functions and lambdas, comprehensions;
* call whitelisted builtins and any object the host handed it (the
  ``self`` facade, the invocation context, installation-context bindings);
* read/write attributes whose names do not start with an underscore.

What it may not do:

* import anything, define classes, touch dunder attributes, use
  ``global``, ``yield``/``await``, or name any non-whitelisted builtin.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping

from ..core.errors import SandboxViolation

__all__ = [
    "ALLOWED_BUILTINS",
    "validate_source",
    "compile_restricted",
    "build_function",
]


_ALLOWED_NODES: tuple[type, ...] = (
    ast.Module,
    ast.Interactive,
    ast.Expression,
    ast.FunctionDef,
    ast.Lambda,
    ast.arguments,
    ast.arg,
    ast.Return,
    ast.Delete,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.For,
    ast.While,
    ast.If,
    ast.With,
    ast.withitem,
    ast.Raise,
    ast.Try,
    ast.ExceptHandler,
    ast.Assert,
    ast.Expr,
    ast.Pass,
    ast.Break,
    ast.Continue,
    ast.Nonlocal,
    ast.BoolOp,
    ast.NamedExpr,
    ast.BinOp,
    ast.UnaryOp,
    ast.IfExp,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.comprehension,
    ast.Compare,
    ast.Call,
    ast.keyword,
    ast.FormattedValue,
    ast.JoinedStr,
    ast.Constant,
    ast.Attribute,
    ast.Subscript,
    ast.Starred,
    ast.Name,
    ast.List,
    ast.Tuple,
    ast.Slice,
    # operator tokens
    ast.And, ast.Or,
    ast.Add, ast.Sub, ast.Mult, ast.MatMult, ast.Div, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.BitOr, ast.BitXor, ast.BitAnd,
    ast.FloorDiv,
    ast.Invert, ast.Not, ast.UAdd, ast.USub,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.Is, ast.IsNot, ast.In, ast.NotIn,
    ast.Load, ast.Store, ast.Del,
)

#: Builtins a mobile method body may name. Deliberately excludes anything
#: that reaches the interpreter's internals (``getattr``/``setattr``,
#: ``vars``, ``type``, ``eval``...) or the host machine (``open``,
#: ``__import__``). ``print`` is allowed for didactic examples.
ALLOWED_BUILTINS: dict[str, Any] = {
    "abs": abs,
    "all": all,
    "any": any,
    "bool": bool,
    "bytes": bytes,
    "chr": chr,
    "dict": dict,
    "divmod": divmod,
    "enumerate": enumerate,
    "filter": filter,
    "float": float,
    "format": format,
    "frozenset": frozenset,
    "hash": hash,
    "int": int,
    "isinstance": isinstance,
    "iter": iter,
    "len": len,
    "list": list,
    "map": map,
    "max": max,
    "min": min,
    "next": next,
    "ord": ord,
    "pow": pow,
    "print": print,
    "range": range,
    "repr": repr,
    "reversed": reversed,
    "round": round,
    "set": set,
    "sorted": sorted,
    "str": str,
    "sum": sum,
    "tuple": tuple,
    "zip": zip,
    # exceptions portable code may raise/catch
    "ArithmeticError": ArithmeticError,
    "AssertionError": AssertionError,
    "Exception": Exception,
    "IndexError": IndexError,
    "KeyError": KeyError,
    "LookupError": LookupError,
    "RuntimeError": RuntimeError,
    "StopIteration": StopIteration,
    "TypeError": TypeError,
    "ValueError": ValueError,
    "ZeroDivisionError": ZeroDivisionError,
    "True": True,
    "False": False,
    "None": None,
}

_FORBIDDEN_NAMES = frozenset(
    {
        "eval", "exec", "compile", "open", "input", "__import__",
        "getattr", "setattr", "delattr", "hasattr", "globals", "locals",
        "vars", "dir", "type", "super", "object", "classmethod",
        "staticmethod", "property", "memoryview", "breakpoint", "exit",
        "quit", "help", "id", "callable",
    }
)


class _Verifier(ast.NodeVisitor):
    """Walk the AST, rejecting anything outside the whitelist."""

    def __init__(self, source_name: str):
        self.source_name = source_name

    def _violation(self, node: ast.AST, construct: str, detail: str = "") -> None:
        line = getattr(node, "lineno", 0)
        where = f"{self.source_name}:{line}"
        raise SandboxViolation(construct, f"{detail or 'not permitted'} at {where}")

    def generic_visit(self, node: ast.AST) -> None:
        if not isinstance(node, _ALLOWED_NODES):
            self._violation(node, type(node).__name__, "AST node type not whitelisted")
        super().generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith("_"):
            self._violation(node, f".{node.attr}", "underscore attribute access")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in _FORBIDDEN_NAMES:
            self._violation(node, node.id, "forbidden builtin")
        if node.id.startswith("__"):
            self._violation(node, node.id, "dunder name")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.decorator_list:
            self._violation(node, "decorator", "decorators not permitted")
        if node.name.startswith("_"):
            self._violation(node, node.name, "underscore function name")
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.arg.startswith("__"):
            self._violation(node, node.arg, "dunder parameter name")
        self.generic_visit(node)


def validate_source(source: str, source_name: str = "<portable>") -> ast.Module:
    """Parse and verify mobile source text; returns the parsed module.

    Raises :class:`SandboxViolation` for forbidden constructs and for
    source that does not parse at all.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise SandboxViolation("syntax", f"{exc.msg} (line {exc.lineno})") from exc
    _Verifier(source_name).visit(tree)
    return tree


def compile_restricted(source: str, source_name: str = "<portable>"):
    """Validate then compile mobile source text to a code object."""
    validate_source(source, source_name)
    return compile(source, source_name, "exec")


def build_function(
    body_source: str,
    parameters: Iterable[str],
    function_name: str = "portable",
    source_name: str = "<portable>",
    extra_bindings: Mapping[str, Any] | None = None,
):
    """Compile a *function body* given as mobile source text.

    The contract for portable method code in this reproduction: the
    migrating artifact is the body text of a function whose parameter list
    the runtime fixes (``self, args, ctx`` for bodies and pre-procedures,
    ``self, args, result, ctx`` for post-procedures). This function wraps
    the body in a ``def``, verifies it, executes the definition inside a
    restricted namespace, and returns the resulting function object.

    The returned function's globals contain *only* the whitelisted
    builtins plus *extra_bindings* supplied by the host (the installation
    context); there is no module, no filesystem, no import machinery.
    """
    params = ", ".join(parameters)
    lines = body_source.splitlines() or ["pass"]
    indented = "\n".join("    " + line for line in lines)
    wrapped = f"def {function_name}({params}):\n{indented}\n"
    code = compile_restricted(wrapped, source_name)
    namespace: dict[str, Any] = {"__builtins__": dict(ALLOWED_BUILTINS)}
    if extra_bindings:
        for name, value in extra_bindings.items():
            if name.startswith("_"):
                raise SandboxViolation(name, "underscore binding injected by host")
            namespace[name] = value
    exec(code, namespace)  # noqa: S102 - executing *verified* code is the point
    return namespace[function_name]
