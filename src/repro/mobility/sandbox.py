"""AST-whitelist sandbox for portable (mobile) method code.

The paper's substrate was the JVM: method bodies travelled as verified
bytecode. Our substitution carries method bodies as *source text* and
verifies them here before compilation — the analog of JVM bytecode
verification (see DESIGN.md, Substitutions).

The verifier is a whitelist, not a blacklist: only explicitly permitted
AST node types, builtins and attribute names are accepted. Anything else
raises :class:`SandboxViolation` at *install* time, so a hostile object is
rejected before any of its code runs.

What portable code may do:

* arithmetic, comparisons, boolean logic, string/collection literals;
* local variables, ``if``/``while``/``for``, ``try``/``except``,
  functions and lambdas, comprehensions;
* call whitelisted builtins and any object the host handed it (the
  ``self`` facade, the invocation context, installation-context bindings);
* read/write attributes whose names do not start with an underscore.

What it may not do:

* import anything, define classes, touch dunder attributes, use
  ``global``, ``yield``/``await``, or name any non-whitelisted builtin.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping

from ..analysis.diagnostics import Diagnostic, Severity
from ..core.errors import SandboxViolation

__all__ = [
    "ALLOWED_BUILTINS",
    "SANDBOX_RULES",
    "validate_source",
    "collect_violations",
    "audit_function_body",
    "compile_restricted",
    "build_function",
]

#: Every rule id the verifier can emit (all errors — the sandbox has no
#: warnings: a construct is either whitelisted or it is not).
SANDBOX_RULES: dict[str, str] = {
    "sandbox.syntax": "the portable source does not parse (error)",
    "sandbox.node-type": "an AST node type outside the whitelist (error)",
    "sandbox.underscore-attribute": "access to an underscore-prefixed attribute (error)",
    "sandbox.dunder-subscript": "a '__name__'-shaped mapping key (error)",
    "sandbox.forbidden-name": "a builtin outside the whitelist, e.g. eval/type (error)",
    "sandbox.dunder-name": "a dunder identifier, incl. except-aliases and nonlocals (error)",
    "sandbox.decorator": "a decorated function definition (error)",
    "sandbox.underscore-function": "an underscore-prefixed function name (error)",
    "sandbox.dunder-parameter": "a dunder parameter or keyword-argument name (error)",
}


_ALLOWED_NODES: tuple[type, ...] = (
    ast.Module,
    ast.Interactive,
    ast.Expression,
    ast.FunctionDef,
    ast.Lambda,
    ast.arguments,
    ast.arg,
    ast.Return,
    ast.Delete,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.For,
    ast.While,
    ast.If,
    ast.With,
    ast.withitem,
    ast.Raise,
    ast.Try,
    ast.ExceptHandler,
    ast.Assert,
    ast.Expr,
    ast.Pass,
    ast.Break,
    ast.Continue,
    ast.Nonlocal,
    ast.BoolOp,
    ast.NamedExpr,
    ast.BinOp,
    ast.UnaryOp,
    ast.IfExp,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.comprehension,
    ast.Compare,
    ast.Call,
    ast.keyword,
    ast.FormattedValue,
    ast.JoinedStr,
    ast.Constant,
    ast.Attribute,
    ast.Subscript,
    ast.Starred,
    ast.Name,
    ast.List,
    ast.Tuple,
    ast.Slice,
    # operator tokens
    ast.And, ast.Or,
    ast.Add, ast.Sub, ast.Mult, ast.MatMult, ast.Div, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.BitOr, ast.BitXor, ast.BitAnd,
    ast.FloorDiv,
    ast.Invert, ast.Not, ast.UAdd, ast.USub,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.Is, ast.IsNot, ast.In, ast.NotIn,
    ast.Load, ast.Store, ast.Del,
)

#: Builtins a mobile method body may name. Deliberately excludes anything
#: that reaches the interpreter's internals (``getattr``/``setattr``,
#: ``vars``, ``type``, ``eval``...) or the host machine (``open``,
#: ``__import__``). ``print`` is allowed for didactic examples.
ALLOWED_BUILTINS: dict[str, Any] = {
    "abs": abs,
    "all": all,
    "any": any,
    "bool": bool,
    "bytes": bytes,
    "chr": chr,
    "dict": dict,
    "divmod": divmod,
    "enumerate": enumerate,
    "filter": filter,
    "float": float,
    "format": format,
    "frozenset": frozenset,
    "hash": hash,
    "int": int,
    "isinstance": isinstance,
    "iter": iter,
    "len": len,
    "list": list,
    "map": map,
    "max": max,
    "min": min,
    "next": next,
    "ord": ord,
    "pow": pow,
    "print": print,
    "range": range,
    "repr": repr,
    "reversed": reversed,
    "round": round,
    "set": set,
    "sorted": sorted,
    "str": str,
    "sum": sum,
    "tuple": tuple,
    "zip": zip,
    # exceptions portable code may raise/catch
    "ArithmeticError": ArithmeticError,
    "AssertionError": AssertionError,
    "Exception": Exception,
    "IndexError": IndexError,
    "KeyError": KeyError,
    "LookupError": LookupError,
    "RuntimeError": RuntimeError,
    "StopIteration": StopIteration,
    "TypeError": TypeError,
    "ValueError": ValueError,
    "ZeroDivisionError": ZeroDivisionError,
    "True": True,
    "False": False,
    "None": None,
}

_FORBIDDEN_NAMES = frozenset(
    {
        "eval", "exec", "compile", "open", "input", "__import__",
        "getattr", "setattr", "delattr", "hasattr", "globals", "locals",
        "vars", "dir", "type", "super", "object", "classmethod",
        "staticmethod", "property", "memoryview", "breakpoint", "exit",
        "quit", "help", "id", "callable",
    }
)


class _Verifier(ast.NodeVisitor):
    """Walk the AST, rejecting anything outside the whitelist.

    In the default mode the first violation raises
    :class:`SandboxViolation` (install-time rejection). With *collect*
    set, every violation is recorded as a
    :class:`~repro.analysis.diagnostics.Diagnostic` and the walk
    continues — the mode the static-analysis front ends use to report a
    complete picture instead of the first offence.
    """

    def __init__(self, source_name: str, collect: list[Diagnostic] | None = None):
        self.source_name = source_name
        self.collect = collect

    def _violation(
        self, node: ast.AST, construct: str, detail: str = "", rule: str = "sandbox.construct"
    ) -> None:
        line = getattr(node, "lineno", 0)
        where = f"{self.source_name}:{line}"
        diagnostic = Diagnostic(
            rule=rule,
            severity=Severity.ERROR,
            message=f"forbidden construct {construct!r}: {detail or 'not permitted'}",
            source=self.source_name,
            line=line,
            column=getattr(node, "col_offset", 0) + 1 if line else 0,
        )
        if self.collect is not None:
            self.collect.append(diagnostic)
            return
        raise SandboxViolation(
            construct, f"{detail or 'not permitted'} at {where}",
            diagnostic=diagnostic,
        )

    def generic_visit(self, node: ast.AST) -> None:
        if not isinstance(node, _ALLOWED_NODES):
            self._violation(
                node, type(node).__name__, "AST node type not whitelisted",
                rule="sandbox.node-type",
            )
            if self.collect is not None:
                return  # do not descend into an already-rejected construct
        super().generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith("_"):
            self._violation(
                node, f".{node.attr}", "underscore attribute access",
                rule="sandbox.underscore-attribute",
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # the subscript analogue of dunder attribute access: mappings that
        # mirror object internals (install contexts, descriptions) must
        # not hand portable code a '__dict__'-shaped key as a side door
        key = node.slice
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and key.value.startswith("__")
            and key.value.endswith("__")
        ):
            self._violation(
                node, f"[{key.value!r}]", "dunder subscript key",
                rule="sandbox.dunder-subscript",
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in _FORBIDDEN_NAMES:
            self._violation(
                node, node.id, "forbidden builtin", rule="sandbox.forbidden-name"
            )
        if node.id.startswith("__"):
            self._violation(node, node.id, "dunder name", rule="sandbox.dunder-name")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.decorator_list:
            self._violation(
                node, "decorator", "decorators not permitted",
                rule="sandbox.decorator",
            )
        if node.name.startswith("_"):
            self._violation(
                node, node.name, "underscore function name",
                rule="sandbox.underscore-function",
            )
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.arg.startswith("__"):
            self._violation(
                node, node.arg, "dunder parameter name",
                rule="sandbox.dunder-parameter",
            )
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        # 'except E as __alias' binds without a Name node at the binding
        # site — an alias the Name rule alone would miss
        if node.name and node.name.startswith("__"):
            self._violation(
                node, node.name, "dunder exception alias",
                rule="sandbox.dunder-name",
            )
        self.generic_visit(node)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        # nonlocal lists raw strings, not Name nodes
        for name in node.names:
            if name.startswith("__") or name in _FORBIDDEN_NAMES:
                self._violation(
                    node, name, "forbidden nonlocal name",
                    rule="sandbox.dunder-name",
                )
        self.generic_visit(node)

    def visit_keyword(self, node: ast.keyword) -> None:
        if node.arg and node.arg.startswith("__"):
            self._violation(
                node, f"{node.arg}=", "dunder keyword argument",
                rule="sandbox.dunder-parameter",
            )
        self.generic_visit(node)


def validate_source(source: str, source_name: str = "<portable>") -> ast.Module:
    """Parse and verify mobile source text; returns the parsed module.

    Raises :class:`SandboxViolation` for forbidden constructs and for
    source that does not parse at all.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise SandboxViolation(
            "syntax",
            f"{exc.msg} (line {exc.lineno})",
            diagnostic=Diagnostic(
                rule="sandbox.syntax",
                severity=Severity.ERROR,
                message=f"does not parse: {exc.msg}",
                source=source_name,
                line=exc.lineno or 0,
            ),
        ) from exc
    _Verifier(source_name).visit(tree)
    return tree


def collect_violations(
    source: str, source_name: str = "<portable>"
) -> list[Diagnostic]:
    """Every violation in *source* as diagnostics (empty when clean).

    The collecting twin of :func:`validate_source`: nothing is raised, so
    analysis front ends (``repro lint``, the migration admission gate)
    can report the complete set of problems in one pass.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="sandbox.syntax",
                severity=Severity.ERROR,
                message=f"does not parse: {exc.msg}",
                source=source_name,
                line=exc.lineno or 0,
            )
        ]
    found: list[Diagnostic] = []
    _Verifier(source_name, collect=found).visit(tree)
    return found


def audit_function_body(
    body_source: str,
    parameters: Iterable[str],
    source_name: str = "<portable>",
) -> list[Diagnostic]:
    """Verify a *function body* exactly as :func:`build_function` would.

    Wraps the body in the same ``def`` scaffold, so the diagnostics
    predict precisely what the destination sandbox will reject — the
    linter's portability pass and the admission analyzer both rely on
    that equivalence. Reported line numbers are shifted back so they
    refer to the body text, not the wrapper.
    """
    params = ", ".join(parameters)
    lines = body_source.splitlines() or ["pass"]
    indented = "\n".join("    " + line for line in lines)
    wrapped = f"def {_AUDIT_NAME}({params}):\n{indented}\n"
    shifted: list[Diagnostic] = []
    for diagnostic in collect_violations(wrapped, source_name):
        line = max(diagnostic.line - 1, 0)
        column = max(diagnostic.column - 4, 0) if diagnostic.column else 0
        shifted.append(
            Diagnostic(
                rule=diagnostic.rule,
                severity=diagnostic.severity,
                message=diagnostic.message,
                source=diagnostic.source,
                line=line,
                column=column,
                hint=diagnostic.hint,
            )
        )
    return shifted


_AUDIT_NAME = "portable"


def compile_restricted(source: str, source_name: str = "<portable>"):
    """Validate then compile mobile source text to a code object."""
    validate_source(source, source_name)
    return compile(source, source_name, "exec")


def build_function(
    body_source: str,
    parameters: Iterable[str],
    function_name: str = "portable",
    source_name: str = "<portable>",
    extra_bindings: Mapping[str, Any] | None = None,
):
    """Compile a *function body* given as mobile source text.

    The contract for portable method code in this reproduction: the
    migrating artifact is the body text of a function whose parameter list
    the runtime fixes (``self, args, ctx`` for bodies and pre-procedures,
    ``self, args, result, ctx`` for post-procedures). This function wraps
    the body in a ``def``, verifies it, executes the definition inside a
    restricted namespace, and returns the resulting function object.

    The returned function's globals contain *only* the whitelisted
    builtins plus *extra_bindings* supplied by the host (the installation
    context); there is no module, no filesystem, no import machinery.
    """
    params = ", ".join(parameters)
    lines = body_source.splitlines() or ["pass"]
    indented = "\n".join("    " + line for line in lines)
    wrapped = f"def {function_name}({params}):\n{indented}\n"
    code = compile_restricted(wrapped, source_name)
    namespace: dict[str, Any] = {"__builtins__": dict(ALLOWED_BUILTINS)}
    if extra_bindings:
        for name, value in extra_bindings.items():
            if name.startswith("_"):
                raise SandboxViolation(name, "underscore binding injected by host")
            namespace[name] = value
    exec(code, namespace)  # noqa: S102 - executing *verified* code is the point
    return namespace[function_name]
