"""Packing: turning a live MROM object into transferable data and back.

"When the Ambassador arrives (as data) the importing IOO unpacks it ..."
(Section 5). A package is a plain weakly-typed mapping — structure,
portable code (as verified source text), data values, ACLs, the
meta-invoke tower — that survives the wire format byte-for-byte. The
receiving site rebuilds a *genuinely independent* object from it: the
bundled meta-methods are reinstalled fresh (they are behaviour every MROM
object carries by construction), portable code is re-verified by the
sandbox before it can run, and identity (the guid) travels with the
object — migration moves the object, it does not mint a new one.

An object containing native code cannot be packed:
:class:`~repro.core.errors.NotPortableError` lists the offending items,
so "make it portable" is an actionable error.
"""

from __future__ import annotations

import copy
from typing import Mapping

from ..core.acl import AccessControlList, Principal
from ..core.errors import MobilityError, NotPortableError
from ..core.items import DataItem, MROMMethod
from ..core.mobject import MROMObject
from ..core.values import Kind
from ..net.marshal import (
    LazyMapping,
    MarshalFrame,
    marshal,
    marshal_frame,
    materialize_deep,
    unmarshal,
    unmarshal_lazy,
)

__all__ = [
    "FORMAT",
    "pack",
    "pack_bytes",
    "pack_frame",
    "unpack",
    "unpack_bytes",
    "portability_report",
]

FORMAT = "mrom-object/1"

#: Environment keys that never travel: they are host-provided bindings
#: of the *current* installation, meaningless (or hostile) elsewhere.
_HOST_ONLY_ENV = frozenset({"site", "domain", "host", "install_context"})


def portability_report(
    obj: MROMObject, ignore_wrappers: bool = False
) -> list[str]:
    """Names of items that pin the object to this runtime (native code).

    With *ignore_wrappers*, native pre-/post-procedures do not count:
    they are host-side attachments (mediators, preparation hooks) that a
    host may legitimately strip when imaging the object — only a native
    *body* makes the behaviour itself unportable.
    """

    def pinned(method: MROMMethod) -> bool:
        if ignore_wrappers:
            return not method.body.portable
        return not method.portable

    offenders: list[str] = []
    for item, category, _section in obj.containers.iter_with_sections():
        if category != "method" or not isinstance(item, MROMMethod):
            continue
        if item.metadata.get("meta"):
            continue  # bundled meta-methods are reinstalled, never packed
        if pinned(item):
            offenders.append(item.name)
    for level, method in enumerate(obj.meta_invoke_chain(), start=1):
        if pinned(method):
            offenders.append(f"invoke@level{level}")
    return offenders


def _pack_data(item: DataItem) -> dict:
    # deep-copied: a package is a snapshot; in-process unpacking must not
    # alias mutable values with the original (the wire trip would have
    # broken the aliasing anyway — this keeps local and remote identical)
    return {
        "name": item.name,
        "value": copy.deepcopy(item.peek()),
        "kind": item.kind.value,
        "acl": item.acl.describe(),
        "metadata": dict(item.metadata),
    }


def _pack_method(method: MROMMethod, strip_native_wrappers: bool = False) -> dict:
    components = {"body": method.body.describe()}
    for role, carrier in (("pre", method.pre), ("post", method.post)):
        if carrier is None:
            continue
        if not carrier.portable and strip_native_wrappers:
            continue  # host-side wrapper: stays with the host
        components[role] = carrier.describe()
    return {
        "name": method.name,
        "components": components,
        "acl": method.acl.describe(),
        "metadata": dict(method.metadata),
    }


def pack(
    obj: MROMObject,
    include_environment: bool = True,
    strip_native_wrappers: bool = False,
    trace: Mapping | None = None,
) -> dict:
    """The transferable description of *obj*.

    Raises :class:`NotPortableError` when any non-meta method carries
    native code, and :class:`~repro.core.errors.MarshalError` later (at
    :func:`pack_bytes` time) if a data value has no wire representation.
    With *strip_native_wrappers*, native pre-/post-procedures (host-side
    mediators and hooks) are silently dropped from the image instead of
    blocking it — used by site checkpointing.

    *trace*, when given, is a wire-form telemetry trace context
    (:meth:`~repro.telemetry.context.TraceContext.to_wire`) recorded
    under the package's ``trace`` key: the journey stamp that lets a
    receiving host tie its install span to the trace the object left
    under. It is observability metadata only — :func:`unpack` ignores
    it, and packages without it are identical to pre-telemetry ones.
    """
    offenders = portability_report(obj, ignore_wrappers=strip_native_wrappers)
    if offenders:
        raise NotPortableError(obj.guid, tuple(offenders))

    def data_of(container) -> list[dict]:
        return [_pack_data(item) for item in container if isinstance(item, DataItem)]

    def methods_of(container) -> list[dict]:
        return [
            _pack_method(item, strip_native_wrappers)
            for item in container
            if isinstance(item, MROMMethod) and not item.metadata.get("meta")
        ]

    environment = {}
    if include_environment:
        environment = {
            key: value
            for key, value in obj.environment.items()
            if key not in _HOST_ONLY_ENV
        }
    package = {
        "format": FORMAT,
        "guid": obj.guid,
        "display_name": obj.principal.display_name,
        "domain": obj.principal.domain,
        "owner": {
            "guid": obj.owner.guid,
            "domain": obj.owner.domain,
            "name": obj.owner.display_name,
        },
        "extensible_meta": obj.extensible_meta,
        "meta_acl": obj._meta_acl.describe(),
        "fixed_data": data_of(obj.containers.fixed_data),
        "ext_data": data_of(obj.containers.ext_data),
        "fixed_methods": methods_of(obj.containers.fixed_methods),
        "ext_methods": methods_of(obj.containers.ext_methods),
        "tower": [
            _pack_method(level, strip_native_wrappers)
            for level in obj.meta_invoke_chain()
        ],
        "environment": environment,
    }
    if trace is not None:
        package["trace"] = dict(trace)
    return package


def pack_bytes(
    obj: MROMObject,
    include_environment: bool = True,
    strip_native_wrappers: bool = False,
    trace: Mapping | None = None,
) -> bytes:
    """Wire form of the package (this is what actually migrates)."""
    return marshal(
        pack(
            obj,
            include_environment=include_environment,
            strip_native_wrappers=strip_native_wrappers,
            trace=trace,
        )
    )


def _unpack_data(raw: Mapping) -> DataItem:
    if isinstance(raw, LazyMapping) and "value" in raw:
        # zero-copy unpack: hand the item its value as an undecoded wire
        # slice — DataItem materializes it on first read, so an item the
        # receiving site never touches is never decoded
        value = raw.lazy("value")
    else:
        value = raw.get("value")
    # everything except the value is structure: materialized now, so no
    # lazy container can leak into ACLs or metadata (they must survive a
    # later re-pack as plain data)
    return DataItem(
        str(raw["name"]),
        value,
        kind=Kind(raw.get("kind", "any")),
        acl=AccessControlList.from_description(
            dict(materialize_deep(raw.get("acl", {})))
        ),
        metadata=dict(materialize_deep(raw.get("metadata", {}))),
    )


def _unpack_method(raw: Mapping) -> MROMMethod:
    return MROMMethod.from_packed(
        str(raw["name"]),
        dict(materialize_deep(raw["components"])),
        acl=AccessControlList.from_description(
            dict(materialize_deep(raw.get("acl", {})))
        ),
        metadata=dict(materialize_deep(raw.get("metadata", {}))),
    )


def unpack(package: Mapping) -> MROMObject:
    """Rebuild a live object from a package.

    Portable code is *not* executed here — it is verified and compiled
    lazily on first invocation (or eagerly by a host policy that calls
    :meth:`~repro.core.code.PortableCode.compile_now` during admission).
    """
    if package.get("format") != FORMAT:
        raise MobilityError(
            f"unknown package format {package.get('format')!r}"
        )
    owner_raw = package.get("owner", {})
    owner = Principal(
        guid=str(owner_raw.get("guid", "mrom:anonymous")),
        domain=str(owner_raw.get("domain", "")),
        display_name=str(owner_raw.get("name", "")),
    )
    obj = MROMObject(
        guid=str(package["guid"]),
        domain=str(package.get("domain", "")),
        display_name=str(package.get("display_name", "")),
        owner=owner,
        extensible_meta=bool(package.get("extensible_meta", False)),
        meta_acl=AccessControlList.from_description(
            dict(materialize_deep(package.get("meta_acl", {})))
        ),
        environment=dict(materialize_deep(package.get("environment", {}))),
    )
    for raw in package.get("fixed_data", []):
        obj.containers.add_fixed(_unpack_data(raw))
    for raw in package.get("fixed_methods", []):
        obj.containers.add_fixed(_unpack_method(raw))
    obj.seal()
    for raw in package.get("ext_data", []):
        obj.containers.add_extensible(_unpack_data(raw))
    for raw in package.get("ext_methods", []):
        obj.containers.add_extensible(_unpack_method(raw))
    for raw in package.get("tower", []):
        obj._push_meta_invoke(_unpack_method(raw))
    return obj


def pack_frame(
    obj: MROMObject,
    include_environment: bool = True,
    strip_native_wrappers: bool = False,
    trace: Mapping | None = None,
) -> MarshalFrame:
    """The wire form as a zero-copy frame over a pooled buffer.

    Byte-identical to :func:`pack_bytes`; the caller owns the frame and
    must release it (context manager or :meth:`~repro.net.marshal.
    MarshalFrame.release`) once the view has been consumed.
    """
    return marshal_frame(
        pack(
            obj,
            include_environment=include_environment,
            strip_native_wrappers=strip_native_wrappers,
            trace=trace,
        )
    )


def unpack_bytes(wire: bytes, lazy: bool = True) -> MROMObject:
    """Rebuild an object from its wire form.

    With *lazy* (the default), the package is decoded by the skip-scan
    path: structure (names, kinds, ACLs, code) is materialized — the
    object must be whole and its code verifiable — but untouched data
    *values* stay as undecoded slices of the message until first read,
    so unpack cost scales with the state the receiver actually touches.
    Framing is validated identically either way, and a fully-touched
    lazy object is value-identical to an eager one (the package tests
    hold both paths to the same bytes and the same values).
    """
    package = unmarshal_lazy(wire) if lazy else unmarshal(wire)
    if not isinstance(package, Mapping):
        raise MobilityError("wire message is not an object package")
    return unpack(package)
