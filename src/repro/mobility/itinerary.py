"""Multi-hop agent itineraries built on the forward primitive.

The paper situates MROM in the mobile-agent lineage ("computational
objects known as 'agents', which exhibit some level of autonomy ... goals,
plans, itinerary"). An :class:`Itinerary` is the plan; :class:`AgentTour`
executes it: the agent object hops site to site, its ``visit`` method runs
at every stop with the stop's identity as argument, and whatever it
accumulates in its own data items travels with it — the state *is* the
object, which is exactly the self-containment requirement at work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core.errors import MobilityError
from ..core.mobject import MROMObject
from .transfer import MobilityManager

__all__ = ["Itinerary", "AgentTour", "make_collector_agent"]


@dataclass(frozen=True)
class Itinerary:
    """An ordered tour plan over site identifiers."""

    stops: tuple[str, ...]

    def __post_init__(self):
        if not self.stops:
            raise MobilityError("an itinerary needs at least one stop")

    @classmethod
    def through(cls, *stops: str) -> "Itinerary":
        return cls(tuple(stops))

    def __len__(self) -> int:
        return len(self.stops)

    def __iter__(self):
        return iter(self.stops)


@dataclass
class HopRecord:
    """One completed hop, for the tour report."""

    site: str
    visit_result: Any
    arrived_at: float


class AgentTour:
    """Drive an agent object around an itinerary and back home.

    The tour is orchestrated from the agent's home site (the pattern the
    paper's Ambassadors follow: the origin owns and steers its deployed
    objects), but the agent's code and accumulated state execute and
    travel entirely on the visited sites.
    """

    def __init__(self, home: MobilityManager, visit_method: str = "visit"):
        self.home = home
        self.visit_method = visit_method

    def run(
        self,
        agent: MROMObject,
        itinerary: Itinerary,
        visit_args: Sequence[Any] = (),
        return_home: bool = True,
    ) -> list[HopRecord]:
        """Execute the tour; returns one :class:`HopRecord` per stop.

        When *return_home* is set the agent ends up registered back at
        the home site (so its accumulated data can be read locally).
        """
        site = self.home.site
        records: list[HopRecord] = []
        first = itinerary.stops[0]
        ref = self.home.migrate(agent, first)
        current = first
        for stop in itinerary.stops:
            if stop != current:
                ref = self.home.forward(current, ref.guid, stop)
                current = stop
            result = ref.invoke(
                self.visit_method,
                [stop, *visit_args],
                caller=agent.owner,
            )
            records.append(
                HopRecord(site=stop, visit_result=result, arrived_at=site.network.now)
            )
        if return_home:
            self.home.forward(current, ref.guid, site.site_id)
        return records


class AutonomousTour:
    """A tour whose route the *agent* decides, hop by hop.

    The paper's agents "exhibit some level of autonomy and/or intelligence
    in the form of goals, plans, itinerary". :class:`AgentTour` executes a
    fixed plan; here the plan lives inside the agent: after each visit the
    home site asks the agent's ``next_stop`` method where it wants to go
    (``null``/empty = come home). The origin still *executes* the hops —
    it owns the agent and the forward right — but the *decisions* travel
    with the object, in its own portable code and state.

    A *leash* bounds the tour: an agent whose decision logic never
    terminates is dragged home after ``max_hops`` hops rather than
    wandering forever.
    """

    def __init__(
        self,
        home: MobilityManager,
        visit_method: str = "visit",
        decide_method: str = "next_stop",
        max_hops: int = 16,
    ):
        self.home = home
        self.visit_method = visit_method
        self.decide_method = decide_method
        self.max_hops = max_hops

    def run(
        self,
        agent: MROMObject,
        first_stop: str,
        visit_args: Sequence[Any] = (),
    ) -> list[HopRecord]:
        site = self.home.site
        records: list[HopRecord] = []
        ref = self.home.migrate(agent, first_stop)
        current = first_stop
        for _hop in range(self.max_hops):
            result = ref.invoke(
                self.visit_method, [current, *visit_args], caller=agent.owner
            )
            records.append(
                HopRecord(site=current, visit_result=result,
                          arrived_at=site.network.now)
            )
            decision = ref.invoke(self.decide_method, [], caller=agent.owner)
            if not decision:
                break
            next_stop = str(decision)
            if next_stop == current:
                break  # staying put ends the tour too
            ref = self.home.forward(current, ref.guid, next_stop)
            current = next_stop
        self.home.forward(current, ref.guid, site.site_id)
        return records


def make_collector_agent(
    home_site,
    display_name: str = "collector",
    probe_source: str = "return site",
) -> MROMObject:
    """A ready-made tour agent that accumulates per-stop observations.

    *probe_source* is the portable body of the per-stop probe; it sees
    ``site`` (the stop identifier) and ``args`` and returns the
    observation to record. The default just records the stop name.
    """
    agent = home_site.create_object(
        display_name=display_name,
        extensible_meta=False,
        owner=home_site.principal,  # the home site steers (and may forward) it
    )
    agent.define_fixed_data("observations", [])
    agent.define_fixed_method(
        "probe",
        f"site = args[0]\n{probe_source}",
    )
    agent.define_fixed_method(
        "visit",
        "finding = self.call('probe', *args)\n"
        "log = self.get('observations')\n"
        "log.append([args[0], finding])\n"
        "self.set('observations', log)\n"
        "return finding",
    )
    agent.define_fixed_method("report", "return self.get('observations')")
    agent.seal()
    return agent
