"""The migration protocol: ship an object to another site as data.

The sequence follows the paper's Import/Export narrative (Section 5):

1. the sender packs the object (portable code as verified source);
2. the package travels as an ordinary data message;
3. the receiving :class:`MobilityManager` runs its *admission policy*
   (the host restricting the guest — one half of the security duality);
4. the object is unpacked, registered, handed an **installation
   context** (host bindings in its environment), and — if it defines an
   ``install`` method — invoked "which in turn installs itself";
5. the sender receives a remote reference to the settled object.

Two modes:

* :meth:`MobilityManager.migrate` *moves* the object (unregisters the
  local original — there is exactly one of it afterwards);
* :meth:`MobilityManager.deploy_copy` ships an independent replica and
  keeps the original (how an APO deploys Ambassadors to many sites).

A ``forward`` request lets a remote party that is entitled to do so bounce
an object onward to a third site — the hop primitive multi-site agent
itineraries are built from.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..core.acl import Principal
from ..core.errors import MobilityError, PolicyViolationError
from ..core.mobject import MROMObject
from ..net.rmi import RemoteRef
from ..net.site import Site
from ..net.transport import Message
from .package import pack, unpack

__all__ = ["MobilityManager", "InstallReport"]

#: signature: policy(package, src_site_id) -> None or raise PolicyViolationError
AdmissionPolicy = Callable[[Mapping, str], None]


class InstallReport(dict):
    """What a completed transfer reports back (a plain mapping on the
    wire): the settled object's guid, site, and its ``install`` result."""


class MobilityManager:
    """Attaches the migration protocol to a :class:`~repro.net.site.Site`."""

    def __init__(self, site: Site, policy: AdmissionPolicy | None = None):
        self.site = site
        self.policy = policy
        self.arrivals = 0
        self.departures = 0
        self.rejections = 0
        site.add_handler("transfer", self._handle_transfer)
        site.add_handler("forward", self._handle_forward)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------

    def migrate(
        self,
        obj: MROMObject,
        dst: str,
        install_args: Sequence[Any] = (),
    ) -> RemoteRef:
        """Move *obj* to *dst*; the local original ceases to exist here.

        The local object is unregistered only after the destination
        acknowledged installation, so a rejected or failed transfer
        leaves the object where it was.
        """
        report = self._ship(obj, dst, install_args)
        if self.site.has_object(obj.guid):
            self.site.unregister_object(obj.guid)
        self.departures += 1
        return RemoteRef(self.site, dst, str(report["guid"]))

    def deploy_copy(
        self,
        obj: MROMObject,
        dst: str,
        install_args: Sequence[Any] = (),
    ) -> RemoteRef:
        """Ship an independent replica of *obj* to *dst*, keeping the
        original registered here (the APO → Ambassador pattern)."""
        report = self._ship(obj, dst, install_args)
        self.departures += 1
        return RemoteRef(self.site, dst, str(report["guid"]))

    def _ship(
        self, obj: MROMObject, dst: str, install_args: Sequence[Any]
    ) -> Mapping:
        package = pack(obj)
        result = self.site.request(
            dst,
            "transfer",
            {"package": package, "install_args": list(install_args)},
        )
        if not isinstance(result, Mapping):
            raise MobilityError(f"malformed transfer report from {dst!r}")
        return result

    def forward(
        self,
        via: str,
        guid: str,
        dst: str,
        install_args: Sequence[Any] = (),
        caller: Principal | None = None,
    ) -> RemoteRef:
        """Ask site *via* to move its local object *guid* on to *dst*."""
        report = self.site.request(
            via,
            "forward",
            {
                "target": guid,
                "dst": dst,
                "install_args": list(install_args),
                "caller": self.site._caller_payload(caller),
            },
        )
        if not isinstance(report, Mapping):
            raise MobilityError(f"malformed forward report from {via!r}")
        return RemoteRef(self.site, dst, str(report["guid"]))

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------

    def _handle_transfer(self, message: Message) -> dict:
        body = message.payload
        package = body.get("package")
        if not isinstance(package, Mapping):
            raise MobilityError("transfer message carries no package")
        install_args = self.site.import_value(body.get("install_args", []))
        return self.install_package(package, install_args, src=message.src)

    def install_package(
        self,
        package: Mapping,
        install_args: Sequence[Any] = (),
        src: str = "",
    ) -> dict:
        """Admit, unpack and install a package that arrived as data.

        Shared by the transfer handler and by protocols that carry
        packages inside their own replies (HADAS Link and Import/Export).
        Wire references inside the package become live remote proxies
        before the object is rebuilt.
        """
        if self.policy is not None:
            try:
                self.policy(package, src)
            except PolicyViolationError:
                self.rejections += 1
                raise
        obj = unpack(self.site.import_value(package))
        return self._install(obj, install_args)

    def _install(self, obj: MROMObject, install_args: Sequence[Any]) -> dict:
        self.site.register_object(obj)
        # the installation context: what the host tells the newcomer
        obj.environment["install_context"] = {
            "site": self.site.site_id,
            "domain": self.site.domain,
            "arrived_at": self.site.network.now,
        }
        self.arrivals += 1
        install_result = None
        if obj.containers.has_method("install"):
            # "passes to it an installation context and invokes the
            # Ambassador, which in turn installs itself"
            install_result = obj.invoke(
                "install", list(install_args), caller=self.site.principal
            )
        return InstallReport(
            guid=obj.guid,
            site=self.site.site_id,
            install_result=install_result,
        )

    def _handle_forward(self, message: Message) -> Mapping:
        body = message.payload
        guid = str(body.get("target", ""))
        dst = str(body.get("dst", ""))
        obj = self.site.local_object(guid)
        caller = self.site._caller_from(body.get("caller"))
        # only the object's owner (or this site itself) may bounce it on —
        # a hostile third party must not be able to teleport guests around
        if caller.guid not in (obj.owner.guid, self.site.principal.guid):
            raise PolicyViolationError(
                f"{caller.guid} may not forward {guid} (owner: {obj.owner.guid})"
            )
        report = self._ship(obj, dst, list(body.get("install_args", [])))
        self.site.unregister_object(guid)
        self.departures += 1
        return report
